//! Quickstart: characterize a server, train the model, predict error rates
//! for an unseen workload.
//!
//! This is the `# Quick start` doc-test of `src/lib.rs` with progress
//! output — the two are kept in step, and the doc-test keeps the path
//! compiling. Run with `cargo run --release --example quickstart`.

use wade::core::{train_error_model, Campaign, CampaignConfig, MlKind, SimulatedServer};
use wade::dram::OperatingPoint;
use wade::features::FeatureSet;
use wade::workloads::{paper_suite, Scale, WorkloadId};

fn main() {
    // A server whose 72 DRAM chips are "manufactured" from a seed: per-rank
    // weak-cell densities, true/anti-cell mixes, the lot.
    let server = SimulatedServer::with_seed(42);
    println!(
        "server ready: {} chips, rank-to-rank reliability spread {:.0}x",
        server.device().geometry().total_chips(),
        server.device().variation().spread()
    );

    // Collect a reduced characterization campaign (use
    // `CampaignConfig::paper_full()` and the whole `paper_suite` at
    // `Scale::Full` for the real grid; this example favours speed).
    // Populations are frozen once per (workload, temperature, voltage)
    // and replayed across set-points and repeats — byte-identical to the
    // uncached path.
    let suite = paper_suite(Scale::Test);
    let campaign = Campaign::new(server, CampaignConfig::quick());
    let data = campaign.collect(&suite[..3], 7);
    println!(
        "campaign collected: {} rows, {:.0} simulated hours compressed into this run",
        data.rows.len(),
        data.simulated_seconds / 3600.0
    );

    // Train the workload-aware error model (eq. 1): KNN on input set 1,
    // the paper's most accurate combination.
    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);
    println!("trained: {model:?}");

    // Predict for a workload the model knows nothing special about — only
    // its extracted program features are used.
    let server = SimulatedServer::with_seed(42);
    let unseen = WorkloadId::Srad.instantiate(8, Scale::Test);
    let profiled = server.profile_workload(unseen.as_ref(), 99);
    let op = OperatingPoint::relaxed(2.283, 60.0);
    let wer = model.predict_wer_total(&profiled.features, op);
    let pue = model.predict_pue(&profiled.features, OperatingPoint::relaxed(2.283, 70.0));
    println!("\nprediction for {} at {op}:", profiled.name);
    println!("  word error rate ≈ {wer:.2e}  (per 64-bit word, 2-hour run)");
    println!("  crash probability at 2.283 s / 70 °C ≈ {pue:.2}");
    println!("\n…computed in microseconds, versus a 2-hour characterization run.");
}
