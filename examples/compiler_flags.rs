//! The compiler-flag study (paper §VI-C, Fig. 13): do `-O2` vs aggressive
//! optimisations change DRAM reliability? The model answers without any
//! new characterization — the use case the paper motivates ("studying the
//! effect of compiler optimizations may take months with characterization
//! campaigns; our models predict within 300 ms").
//!
//! Run with `cargo run --release --example compiler_flags`.

use wade::core::{train_error_model, Campaign, CampaignConfig, MlKind, SimulatedServer};
use wade::dram::OperatingPoint;
use wade::features::{schema, FeatureSet};
use wade::workloads::{paper_suite, Scale, WorkloadId};

fn main() {
    // Train on the standard suite only — no lulesh in the training data.
    let server = SimulatedServer::with_seed(42);
    let data = Campaign::new(server, CampaignConfig::quick()).collect(&paper_suite(Scale::Test), 7);
    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);

    let server = SimulatedServer::with_seed(42);
    let op = OperatingPoint::relaxed(2.283, 60.0);
    println!("predicting DRAM reliability impact of compiler flags (lulesh, {op})\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>12}",
        "build", "instrs", "accesses/cyc", "Treuse (s)", "pred. WER"
    );

    let mut predictions = Vec::new();
    for id in [WorkloadId::LuleshO2, WorkloadId::LuleshF] {
        let wl = id.instantiate(8, Scale::Test);
        let p = server.profile_workload(wl.as_ref(), 5);
        let wer = model.predict_wer_total(&p.features, op);
        println!(
            "{:<12} {:>14} {:>14.4} {:>14.2} {:>12.2e}",
            p.name,
            p.soc.total_instructions(),
            p.features.get(schema::SOC_MEM_ACCESSES_PER_CYCLE),
            p.features.get(schema::TREUSE),
            wer
        );
        predictions.push((p.name.clone(), wer));
    }

    let (o2, f) = (&predictions[0], &predictions[1]);
    let delta = 100.0 * (f.1 - o2.1) / o2.1.max(1e-300);
    println!(
        "\nthe aggressive build changes the predicted WER by {delta:+.0}% \
         (paper measured ≈29% between builds)"
    );
    println!(
        "mechanism: fewer instructions per access -> more memory accesses per cycle \
         -> stronger cell-to-cell disturbance under relaxed refresh"
    );
}
