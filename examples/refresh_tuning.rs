//! Energy-aware refresh tuning (the paper's motivation iv: "guiding the
//! adjustment of DRAM circuit parameters for saving energy").
//!
//! Auto-refresh at the nominal 64 ms burns power; every relaxation step
//! saves refresh energy but risks errors. This example uses the trained
//! model to pick, per workload, the longest refresh period whose predicted
//! WER stays under a reliability budget.
//!
//! Run with `cargo run --release --example refresh_tuning`.

use wade::core::{train_error_model, Campaign, CampaignConfig, MlKind, SimulatedServer};
use wade::dram::OperatingPoint;
use wade::features::FeatureSet;
use wade::workloads::{paper_suite, Scale};

/// Reliability budget: at most one erroneous word per 10⁸ (ECC-correctable
/// load well inside scrubbing capacity).
const WER_BUDGET: f64 = 1e-8;

fn main() {
    let server = SimulatedServer::with_seed(42);
    let suite = paper_suite(Scale::Test);
    let data = Campaign::new(server, CampaignConfig::quick()).collect(&suite, 7);
    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);

    let candidates = [0.064, 0.256, 0.618, 1.173, 1.727, 2.283];
    println!("per-workload refresh tuning at 60 °C, WER budget {WER_BUDGET:.0e}\n");
    println!("{:<18} {:>12} {:>14} {:>18}", "workload", "max TREFP", "pred. WER", "refresh energy");

    let server = SimulatedServer::with_seed(42);
    for wl in suite.iter() {
        let p = server.profile_workload(wl.as_ref(), 11);
        let mut chosen = candidates[0];
        let mut chosen_wer = 0.0;
        for &t in &candidates {
            let wer = model.predict_wer_total(&p.features, OperatingPoint::relaxed(t, 60.0));
            if wer <= WER_BUDGET {
                chosen = t;
                chosen_wer = wer;
            } else {
                break;
            }
        }
        // Refresh energy scales ~1/TREFP (refreshes per second).
        let energy_vs_nominal = 0.064 / chosen;
        println!(
            "{:<18} {:>11.3}s {:>14.2e} {:>17.1}%",
            p.name,
            chosen,
            chosen_wer,
            100.0 * energy_vs_nominal
        );
    }
    println!(
        "\nworkloads with fast implicit refresh (short Treuse) tolerate far longer\n\
         refresh periods — the workload-aware win over one conservative setting."
    );
}
