//! Predictive maintenance screening (the paper's motivation iii:
//! "predicting maintenance cycles").
//!
//! Characterization under *relaxed* parameters is fast and exposes the
//! rank-to-rank reliability spread (188× in the paper) that nominal
//! operation would take years to reveal. This example ranks the server's
//! DIMM/ranks by predicted error rate and flags the replacement candidates.
//!
//! Run with `cargo run --release --example rank_screening`.

use wade::core::{train_error_model, Campaign, CampaignConfig, MlKind, SimulatedServer};
use wade::dram::{OperatingPoint, RankId};
use wade::features::FeatureSet;
use wade::workloads::{paper_suite, Scale};

fn main() {
    let server = SimulatedServer::with_seed(42);
    let suite = paper_suite(Scale::Test);
    let data = Campaign::new(server, CampaignConfig::quick()).collect(&suite, 7);
    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);

    // Screen with a representative stress mix: the most error-prone point
    // that does not crash (2.283 s at 60 °C).
    let op = OperatingPoint::relaxed(2.283, 60.0);
    let server = SimulatedServer::with_seed(42);
    let probe = server.profile_workload(suite[0].as_ref(), 3);

    let mut ranking: Vec<(RankId, f64)> = (0..8)
        .map(|r| (RankId::from_index(r), model.predict_wer(&probe.features, op, r)))
        .collect();
    ranking.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("DIMM/rank reliability screening under stress ({op}):\n");
    let worst = ranking[0].1.max(1e-300);
    for (rank, wer) in &ranking {
        let bar = "#".repeat(((wer / worst) * 40.0).ceil() as usize);
        let verdict = if *wer > worst * 0.3 {
            "REPLACE-FIRST"
        } else if *wer > worst * 0.01 {
            "watch"
        } else {
            "healthy"
        };
        println!("  {:<12} {:>10.2e}  {:<14} {}", rank.to_string(), wer, verdict, bar);
    }
    println!(
        "\nmanufacturing ground truth (weak-cell density factors): spread {:.0}x",
        server.device().variation().spread()
    );
    println!("screening agrees with the hidden manufacturing variation — without opening a single DIMM.");
}
