//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors exactly the API surface it uses: [`RngCore`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`), [`rngs::StdRng`], [`rngs::SmallRng`]
//! and [`seq::SliceRandom::shuffle`].
//!
//! Generator choices (documented because they differ from upstream `rand`,
//! which re-baselines every seeded expectation in this workspace):
//!
//! * [`rngs::StdRng`] is **xoshiro256++** — 256-bit state, sub-nanosecond
//!   output, passes BigCrush. Upstream's ChaCha12 `StdRng` spends most of
//!   its time providing cryptographic security that a simulator seeded for
//!   reproducibility does not need.
//! * [`rngs::SmallRng`] is **SplitMix64** — 64-bit state, one multiply +
//!   two xor-shifts per output. Its trivially cheap seeding is what makes
//!   the simulator's per-cell derived streams affordable (see
//!   `wade-dram::sim`).
//!
//! Integer `gen_range` uses the widening-multiply method (Lemire without
//! the rejection step); the bias is ≤ 2⁻⁶⁴ per draw, far below anything a
//! statistical test in this workspace can resolve.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit value (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step: the canonical 64-bit finalizer used both as
/// [`rngs::SmallRng`] and to expand seeds into larger states.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types sampleable uniformly from the full bit stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t; // full u64 domain
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        // Affine map; clamp guards the end against rounding at huge spans.
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start.max(self.end - self.end.abs() * f64::EPSILON)
        } else {
            v.max(self.start)
        }
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's general-purpose seeded generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, but guard regardless.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// SplitMix64 — 64-bit state, cheapest possible seeding; used for the
    /// simulator's per-cell derived streams.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::{Rng, RngCore, SampleRange};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }
    }

    #[allow(unused_imports)]
    use super::SeedableRng as _; // keep the prelude-ish surface coherent
    #[allow(unused_imports)]
    use Rng as _;
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..72u8);
            assert!(v < 72);
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
            let s: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&s));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
