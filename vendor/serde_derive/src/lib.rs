//! Vendored `#[derive(Serialize, Deserialize)]` for the minimal value-tree
//! serde in `vendor/serde`.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the macro walks
//! the raw `TokenStream` to extract just what code generation needs —
//! field *names* for structs, variant names and arities for enums — and
//! emits impl blocks as source strings. Field and payload *types* are never
//! parsed; the generated code leans on type inference through struct
//! literals and enum constructors, so arbitrarily complex field types cost
//! the parser nothing.
//!
//! Supported shapes (everything this workspace derives):
//! * structs with named fields, tuple structs, unit structs,
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching upstream serde's JSON layout).
//!
//! Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize` (value-tree lowering).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_serialize(&shape).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (value-tree rebuilding).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen_deserialize(&shape).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error token parses")
}

// ---- token-level parsing ----------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs_and_vis(&tokens, &mut pos);

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected struct/enum, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected type name, found {other:?}")),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde derive: generic type `{name}` is unsupported"));
    }

    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Shape::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::TupleStruct { name, arity: count_top_level_items(g.stream()) })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::UnitStruct { name }),
            None => Ok(Shape::UnitStruct { name }),
            other => Err(format!("serde derive: unexpected struct body {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Shape::Enum { name, variants })
            }
            other => Err(format!("serde derive: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde derive: cannot derive for `{other}`")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            // `#[attr]` / doc comments (which lower to `#[doc = "…"]`).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1;
                }
            }
            // `pub` optionally followed by `(crate)` / `(super)` / `(in …)`.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *pos += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a brace body into top-level comma-separated items, tracking both
/// group nesting (done by the tokenizer) and `<…>` angle depth (not).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut items: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    items.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        items.push(current);
    }
    items
}

fn count_top_level_items(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for item in split_top_level_commas(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&item, &mut pos);
        match item.get(pos) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("serde derive: expected field name, found {other:?}")),
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for item in split_top_level_commas(stream) {
        let mut pos = 0;
        skip_attrs_and_vis(&item, &mut pos);
        let name = match item.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde derive: expected variant, found {other:?}")),
        };
        pos += 1;
        let kind = match item.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            // Unit variant, possibly with `= discriminant` (ignored).
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- code generation --------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            let body = if *arity == 1 {
                entries.into_iter().next().expect("arity 1")
            } else {
                format!("::serde::Value::Seq(vec![{}])", entries.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?}))"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            let payload = if *n == 1 {
                                vals[0].clone()
                            } else {
                                format!("::serde::Value::Seq(vec![{}])", vals.join(", "))
                            };
                            format!(
                                "{name}::{v}({}) => ::serde::Value::Map(vec![(::std::string::String::from({v:?}), {payload})])",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{v} {{ {} }} => ::serde::Value::Map(vec![(::std::string::String::from({v:?}), ::serde::Value::Map(vec![{}]))])",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    }
}

/// Emits the streaming body that parses an object's named fields into
/// `Option` slots and builds `ctor { … }` — shared by named structs and
/// struct enum variants. Assumes a `cur: &mut JsonCursor` is in scope and
/// positioned at the object's `{`.
fn gen_named_from_json(fields: &[String], ctor: &str) -> String {
    if fields.is_empty() {
        // No fields to extract: accept any value, mirroring from_value.
        return format!("cur.skip_value()?;\n::std::result::Result::Ok({ctor} {{ }})");
    }
    let slots: Vec<String> = fields
        .iter()
        .map(|f| format!("let mut f_{f} = ::std::option::Option::None;"))
        .collect();
    let arms: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f:?} => {{ f_{f} = ::std::option::Option::Some(::serde::Deserialize::from_json(cur)?); }}"
            )
        })
        .collect();
    let inits: Vec<String> =
        fields.iter().map(|f| format!("{f}: ::serde::req(f_{f}, {f:?})?")).collect();
    format!(
        "cur.expect(b'{{')?;\n\
         {}\n\
         if !cur.consume_end(b'}}')? {{\n\
         loop {{\n\
         let key = cur.parse_string()?;\n\
         cur.expect(b':')?;\n\
         match key.as_str() {{\n\
         {}\n\
         _ => {{ cur.skip_value()?; }}\n\
         }}\n\
         if !cur.seq_next(b'}}')? {{ break; }}\n\
         }}\n\
         }}\n\
         ::std::result::Result::Ok({ctor} {{ {} }})",
        slots.join("\n"),
        arms.join("\n"),
        inits.join(", ")
    )
}

/// Emits the streaming body that parses an exact-arity JSON array into
/// `ctor(e0, …, eN)` — shared by tuple structs and tuple enum variants.
fn gen_tuple_from_json(arity: usize, ctor: &str) -> String {
    let mut steps = String::from("cur.expect(b'[')?;\n");
    let mut binds: Vec<String> = Vec::new();
    for i in 0..arity {
        if i > 0 {
            steps.push_str("cur.expect(b',')?;\n");
        }
        steps.push_str(&format!("let e{i} = ::serde::Deserialize::from_json(cur)?;\n"));
        binds.push(format!("e{i}"));
    }
    steps.push_str("cur.expect(b']')?;\n");
    format!("{steps}::std::result::Result::Ok({ctor}({}))", binds.join(", "))
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(v, {f:?})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {} }})\n}}\n\
                 fn from_json(cur: &mut ::serde::JsonCursor<'_>) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {}\n}}\n}}",
                inits.join(", "),
                gen_named_from_json(fields, name)
            )
        }
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let items: Vec<String> =
                    (0..*arity).map(|i| format!("::serde::idx(items, {i})?")).collect();
                format!(
                    "let items = ::serde::as_seq(v, {arity})?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            let json_body = if *arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_json(cur)?))"
                )
            } else {
                gen_tuple_from_json(*arity, name)
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n}}\n\
                 fn from_json(cur: &mut ::serde::JsonCursor<'_>) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {json_body}\n}}\n}}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name})\n}}\n\
             fn from_json(cur: &mut ::serde::JsonCursor<'_>) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             cur.skip_value()?;\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let v = &v.name;
                    format!("{v:?} => ::std::result::Result::Ok({name}::{v}),")
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => unreachable!("filtered above"),
                        VariantKind::Tuple(1) => format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> =
                                (0..*arity).map(|i| format!("::serde::idx(items, {i})?")).collect();
                            format!(
                                "{v:?} => {{ let items = ::serde::as_seq(payload, {arity})?;\n\
                                 ::std::result::Result::Ok({name}::{v}({})) }},",
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::field(payload, {f:?})?"))
                                .collect();
                            format!(
                                "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            let json_tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.kind, VariantKind::Unit))
                .map(|variant| {
                    let v = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => unreachable!("filtered above"),
                        VariantKind::Tuple(1) => format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_json(cur)?)),"
                        ),
                        VariantKind::Tuple(arity) => format!(
                            "{v:?} => {{ {} }},",
                            gen_tuple_from_json(*arity, &format!("{name}::{v}"))
                        ),
                        VariantKind::Struct(fields) => format!(
                            "{v:?} => {{ {} }},",
                            gen_named_from_json(fields, &format!("{name}::{v}"))
                        ),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected {name} variant\")),\n\
                 }}\n}}\n\
                 fn from_json(cur: &mut ::serde::JsonCursor<'_>) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match cur.peek()? {{\n\
                 b'\"' => {{\n\
                 let tag = cur.parse_string()?;\n\
                 match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 b'{{' => {{\n\
                 cur.expect(b'{{')?;\n\
                 let tag = cur.parse_string()?;\n\
                 cur.expect(b':')?;\n\
                 let value = match tag.as_str() {{\n\
                 {}\n\
                 other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}?;\n\
                 cur.expect(b'}}')?;\n\
                 ::std::result::Result::Ok(value)\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\"expected {name} variant\")),\n\
                 }}\n}}\n}}",
                unit_arms.join("\n"),
                tagged_arms.join("\n"),
                unit_arms.join("\n"),
                json_tagged_arms.join("\n")
            )
        }
    }
}
