//! Vendored minimal stand-in for `rand_distr`: the [`Poisson`] and
//! [`LogNormal`] distributions this workspace samples, plus the
//! [`Distribution`] trait.
//!
//! Poisson sampling uses Knuth's product-of-uniforms method for small means
//! and the normal approximation (Box–Muller) above `mean = 64`, where the
//! relative error of the approximation is far below the statistical noise
//! the simulator's tests can resolve.

use rand::{RngCore, Standard};

/// Types that sample values of `T` from a parameterised distribution.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameterisation failure (non-finite or out-of-domain parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// One standard-normal draw via Box–Muller (first coordinate only).
#[inline]
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite; u2 in [0, 1).
    let u1: f64 = 1.0 - <f64 as Standard>::sample_standard(rng);
    let u2: f64 = <f64 as Standard>::sample_standard(rng);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// The Poisson distribution; samples are returned as `f64` counts to match
/// the upstream crate's API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with the given mean.
    ///
    /// # Errors
    /// Returns [`Error`] if `mean` is not finite and positive.
    pub fn new(mean: f64) -> Result<Self, Error> {
        if mean.is_finite() && mean > 0.0 {
            Ok(Self { mean })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 64.0 {
            // Knuth: count uniforms until their product falls below e^-mean.
            let limit = (-self.mean).exp();
            let mut product: f64 = <f64 as Standard>::sample_standard(rng);
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= <f64 as Standard>::sample_standard(rng);
            }
            count as f64
        } else {
            // Normal approximation with continuity correction.
            let z = standard_normal(rng);
            (self.mean + self.mean.sqrt() * z + 0.5).floor().max(0.0)
        }
    }
}

/// The log-normal distribution `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's
    /// mean and standard deviation.
    ///
    /// # Errors
    /// Returns [`Error`] if `sigma` is negative or either parameter is
    /// non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if mu.is_finite() && sigma.is_finite() && sigma >= 0.0 {
            Ok(Self { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_matches_small_and_large() {
        let mut rng = StdRng::seed_from_u64(1);
        for &mean in &[0.5, 7.0, 40.0, 500.0, 2.0e6] {
            let d = Poisson::new(mean).unwrap();
            let n = 3_000;
            let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
            let got = total / n as f64;
            let tol = 4.0 * (mean / n as f64).sqrt() + 0.5;
            assert!((got - mean).abs() < tol, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn poisson_rejects_bad_mean() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0, 2.0).unwrap();
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median.ln()).abs() < 0.1, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }
}
