//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple but
//! honest measurement loop: a calibration pass sizes the iteration count to
//! a fixed wall-clock budget, then several timed samples are taken and the
//! median after MAD outlier rejection is reported (samples farther than
//! 3×MAD from the raw median — a scheduler hiccup, a page-cache miss — are
//! dropped; kept/total counts are recorded in the JSONL).
//!
//! Environment knobs:
//! * `WADE_BENCH_MS` — per-benchmark measurement budget in milliseconds
//!   (default 300).
//! * a CLI substring argument (as passed by `cargo bench -- <filter>`)
//!   restricts which benchmarks run.
//!
//! Results are printed to stdout (`<name> ... <time>/iter`) and appended as
//! JSON lines to `target/wade-bench/<bin>.jsonl` so tooling can scrape them.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self { name: format!("{}/{parameter}", function_name.into()) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Work-rate annotation (recorded, used to print a rate column).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    let ms = std::env::var("WADE_BENCH_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(10))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration: find an iteration count that fills ~1/4 of the budget.
    let budget = budget();
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed * 4 >= budget || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        // Grow toward the budget, at least doubling.
        let target = budget.as_secs_f64() / 4.0;
        let grow = if b.elapsed.is_zero() {
            iters * 8
        } else {
            ((target / b.elapsed.as_secs_f64()) * iters as f64).ceil() as u64
        };
        iters = grow.max(iters * 2);
    };
    // Measurement: several samples at the calibrated count, then median +
    // MAD outlier rejection so a single scheduler hiccup cannot swing
    // sub-5% comparisons. The shorter the per-sample window, the noisier a
    // sample is, so take more of them (the calibration already bounded the
    // per-sample cost to ~budget/4).
    let iters_per_sample = ((budget.as_secs_f64() / 4.0) / per_iter.max(1e-12))
        .ceil()
        .max(1.0) as u64;
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let mut b = Bencher { iters: iters_per_sample, elapsed: Duration::ZERO };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (median, kept, total) = median_mad_trim(&samples);

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {}/s", fmt_rate(n as f64 / median, "B")),
        Some(Throughput::Elements(n)) => {
            format!("  {}/s", fmt_rate(n as f64 / median, "elem"))
        }
        None => String::new(),
    };
    println!("{name:<50} {:>12}/iter{rate}", fmt_time(median));
    append_jsonl(name, median, kept, total);
}

/// Median with MAD (median absolute deviation) outlier rejection: samples
/// farther than 3×MAD from the raw median are dropped, and the median of
/// the survivors is reported. Returns `(median, kept, total)`. With MAD of
/// zero (perfectly repeatable samples) nothing is rejected. `samples` must
/// be sorted.
fn median_mad_trim(samples: &[f64]) -> (f64, usize, usize) {
    let total = samples.len();
    let raw_median = samples[total / 2];
    let mut deviations: Vec<f64> = samples.iter().map(|s| (s - raw_median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mad = deviations[total / 2];
    if mad <= 0.0 {
        return (raw_median, total, total);
    }
    let kept: Vec<f64> =
        samples.iter().copied().filter(|s| (s - raw_median).abs() <= 3.0 * mad).collect();
    // `samples` is sorted, so the filtered run is sorted too.
    (kept[kept.len() / 2], kept.len(), total)
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

fn append_jsonl(name: &str, seconds_per_iter: f64, samples_kept: usize, samples_total: usize) {
    // cargo runs bench binaries with CWD = the package dir, so a bare
    // relative "target" would scatter per-crate target dirs; resolve the
    // workspace target by walking up to the directory holding Cargo.lock.
    let target = std::env::var("CARGO_TARGET_DIR").map(std::path::PathBuf::from).unwrap_or_else(
        |_| {
            let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
            cwd.ancestors()
                .find(|dir| dir.join("Cargo.lock").is_file())
                .unwrap_or(&cwd)
                .join("target")
        },
    );
    let dir = target.join("wade-bench");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let bin = std::env::args()
        .next()
        .and_then(|p| {
            std::path::Path::new(&p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".into());
    // Strip the content hash cargo appends to bench binaries.
    let bin = bin.rsplit_once('-').map_or(bin.clone(), |(stem, hash)| {
        if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            stem.to_string()
        } else {
            bin.clone()
        }
    });
    let path = dir.join(format!("{bin}.jsonl"));
    if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(
            file,
            "{{\"benchmark\":{name:?},\"seconds_per_iter\":{seconds_per_iter},\"samples_kept\":{samples_kept},\"samples_total\":{samples_total}}}"
        );
    }
}

/// Benchmark registry/driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` plus any user filter after `--`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        if self.enabled(name) {
            run_benchmark(name, None, f);
        }
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count (accepted for API compatibility; the
    /// vendored harness sizes samples from the time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().name);
        if self.c.enabled(&full) {
            run_benchmark(&full, self.throughput, f);
        }
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        if self.c.enabled(&full) {
            run_benchmark(&full, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
