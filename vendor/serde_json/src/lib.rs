//! Vendored minimal stand-in for `serde_json`, mapping the value-tree model
//! of the vendored `serde` to and from JSON text.
//!
//! Emission notes:
//! * `f64` uses Rust's `Display`, which produces the shortest string that
//!   round-trips exactly — matching upstream serde_json's guarantee.
//! * Non-finite floats serialize as `null` (upstream behaviour); parsing
//!   `null` into an `f64` yields `NaN`.
//! * Map entries keep insertion order, so output is byte-stable.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.msg)
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
/// Never fails for the vendored value model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to human-readable JSON (two-space indent).
///
/// # Errors
/// Never fails for the vendored value model.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T` via the streaming cursor: typed data is
/// pulled straight off the text with no intermediate [`Value`] tree, which
/// is what makes warm `ArtifactStore` reads cheap for multi-MB payloads.
///
/// # Errors
/// Returns [`Error`] on malformed JSON, shape mismatch, or trailing input.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut cur = serde::JsonCursor::new(text);
    let value = T::from_json(&mut cur)?;
    cur.finish()?;
    Ok(value)
}

/// Parses JSON text into a `T` the pre-streaming way: build the full
/// [`Value`] tree, then convert with [`Deserialize::from_value`]. Kept as
/// the reference path that equivalence tests and `benches/store.rs` compare
/// the streaming [`from_str`] against.
///
/// # Errors
/// Returns [`Error`] on malformed JSON, shape mismatch, or trailing input.
pub fn from_str_value<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---- writer -----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => {
            out.push_str(&u.to_string());
        }
        Value::I64(i) => {
            out.push_str(&i.to_string());
        }
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, items.iter(), indent, depth, ('[', ']'), |o, item, ind, d| {
            write_value(o, item, ind, d);
        }),
        Value::Map(entries) => {
            write_block(out, entries.iter(), indent, depth, ('{', '}'), |o, (k, val), ind, d| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, d);
            });
        }
    }
}

fn write_block<I, F>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<&str>, usize),
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(ind) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(ind);
            }
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(ind) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(ind);
        }
    }
    out.push(brackets.1);
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Integral value: keep a ".0" so it reads back as a float-looking
        // number (matches upstream serde_json).
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&f.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}`, found `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes (UTF-8 safe:
                    // multi-byte sequences contain no ASCII specials).
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for case in ["0", "-17", "3.5", "1e300", "true", "null", "\"hi \\\"there\\\"\""] {
            let v: Value = {
                let mut p = Parser { bytes: case.as_bytes(), pos: 0 };
                p.parse_value().unwrap()
            };
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            let v2 = {
                let mut p = Parser { bytes: out.as_bytes(), pos: 0 };
                p.parse_value().unwrap()
            };
            assert_eq!(v, v2, "case {case} → {out}");
        }
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 2.283e-7, 6.02214076e23, -0.0, 123_456_789.123_456_79] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} → {s} → {back}");
        }
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let data: Vec<Option<u64>> = vec![Some(1), None, Some(u64::MAX)];
        let json = to_string(&data).unwrap();
        assert_eq!(json, "[1,null,18446744073709551615]");
        let back: Vec<Option<u64>> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let data = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&data).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("“").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<bool>("truth").is_err());
        // The tree-building reference path enforces the same contract.
        assert!(from_str_value::<u64>("12 34").is_err());
        assert!(from_str_value::<Vec<u64>>("[1,").is_err());
    }

    #[test]
    fn streaming_matches_tree_reference() {
        // Same text through both deserialization paths must yield the same
        // typed data — including float bit patterns, escapes and nulls.
        let json = r#"[[0.1,-7.25,1e300,null],[18446744073709551615.0],[]]"#;
        let streamed: Vec<Vec<f64>> = from_str(json).unwrap();
        let tree: Vec<Vec<f64>> = from_str_value(json).unwrap();
        assert_eq!(streamed.len(), tree.len());
        for (a, b) in streamed.iter().flatten().zip(tree.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let json = r#"{"a b":"x\n\"y\"","z":"Aç"}"#;
        let streamed: std::collections::BTreeMap<String, String> = from_str(json).unwrap();
        let tree: std::collections::BTreeMap<String, String> = from_str_value(json).unwrap();
        assert_eq!(streamed, tree);

        let json = "[1,null,18446744073709551615,[2,3]]";
        let streamed: (u64, Option<i32>, u64, Vec<u8>) = from_str(json).unwrap();
        let tree: (u64, Option<i32>, u64, Vec<u8>) = from_str_value(json).unwrap();
        assert_eq!(streamed, tree);
    }

    #[test]
    fn streaming_skips_unknown_fields() {
        // Unknown keys of arbitrary nested shape must be skipped without
        // derailing the cursor (the derive emits `skip_value` for them).
        #[derive(serde::Serialize, serde::Deserialize)]
        struct Slim {
            b: u64,
        }
        let json = r#"{"a":[true,{"k":[1,"s",null]}],"b":7,"c":"x\"y"}"#;
        let slim: Slim = from_str(json).unwrap();
        assert_eq!(slim.b, 7);
        let slim: Slim = from_str_value(json).unwrap();
        assert_eq!(slim.b, 7);
    }
}
