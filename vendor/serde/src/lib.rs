//! Vendored minimal stand-in for `serde`.
//!
//! Real serde is a zero-copy visitor framework; this workspace only needs
//! JSON round-tripping of plain data structs, so the vendored version uses
//! a much simpler **value-tree** model: [`Serialize`] lowers a type into a
//! [`Value`], [`Deserialize`] rebuilds it from one, and `serde_json` maps
//! [`Value`] to and from text. The derive macros (re-exported from the
//! companion `serde_derive` proc-macro crate) generate those two impls for
//! structs and enums using serde's externally-tagged conventions, so the
//! emitted JSON matches what upstream serde_json would produce for the
//! same types.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (JSON data model).
///
/// Maps preserve insertion order so emitted JSON is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: type mismatch, missing field, unknown variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description.
    pub msg: String,
}

impl DeError {
    /// Builds an error from any displayable message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that lower into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that rebuild from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating shape and types.
    ///
    /// # Errors
    /// Returns [`DeError`] when `v` does not describe a `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- derive-support helpers -------------------------------------------------

/// Extracts and deserializes a named field of a map value.
///
/// # Errors
/// Returns [`DeError`] if the field is missing or malformed.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| DeError::new(format!("field `{name}`: {}", e.msg))),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

/// Interprets `v` as a sequence of exactly `n` elements.
///
/// # Errors
/// Returns [`DeError`] on non-sequences or length mismatch.
pub fn as_seq(v: &Value, n: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(DeError::new(format!(
            "expected sequence of {n}, found {}",
            items.len()
        ))),
        _ => Err(DeError::new("expected sequence")),
    }
}

/// Deserializes element `i` of a sequence slice.
///
/// # Errors
/// Returns [`DeError`] if the element is malformed.
pub fn idx<T: Deserialize>(items: &[Value], i: usize) -> Result<T, DeError> {
    T::from_value(&items[i]).map_err(|e| DeError::new(format!("element {i}: {}", e.msg)))
}

// ---- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(DeError::new("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    _ => return Err(DeError::new("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            // JSON has no non-finite literals; serde_json writes null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::new("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = as_seq(v, N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

/// Types usable as JSON object keys (stringified, as upstream serde_json
/// does for integer-keyed maps).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed keys.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::new(format!("invalid integer key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort by key so emitted JSON is byte-stable across runs.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $index:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $index; 1 })+;
                let items = as_seq(v, LEN)?;
                Ok(($(idx::<$name>(items, $index)?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}
