//! Vendored minimal stand-in for `serde`.
//!
//! Real serde is a zero-copy visitor framework; this workspace only needs
//! JSON round-tripping of plain data structs, so the vendored version uses
//! a much simpler **value-tree** model: [`Serialize`] lowers a type into a
//! [`Value`], [`Deserialize`] rebuilds it from one, and `serde_json` maps
//! [`Value`] to and from text. The derive macros (re-exported from the
//! companion `serde_derive` proc-macro crate) generate those two impls for
//! structs and enums using serde's externally-tagged conventions, so the
//! emitted JSON matches what upstream serde_json would produce for the
//! same types.
//!
//! # Streaming reads
//!
//! Building a [`Value`] tree for a multi-megabyte artifact allocates a
//! boxed node per number before any typed data exists, which dominated
//! warm store-read cost. [`Deserialize::from_json`] is the streaming
//! alternative: it decodes `Self` directly from a [`JsonCursor`] over the
//! JSON text, token by token, with the exact same token-level semantics as
//! the tree path (number classification, escape handling, shape errors).
//! Primitive and container impls here — and everything the derive macro
//! generates — override it; the provided default parses a value tree and
//! delegates to [`Deserialize::from_value`], so hand-written impls remain
//! correct without opting in. `serde_json::from_str` drives the streaming
//! path; `serde_json::from_str_value` keeps the tree path as the reference
//! implementation the equivalence tests compare against.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically-typed serialization tree (JSON data model).
///
/// Maps preserve insertion order so emitted JSON is stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: type mismatch, missing field, unknown variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description.
    pub msg: String,
}

impl DeError {
    /// Builds an error from any displayable message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that lower into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Types that rebuild from a [`Value`] tree — and, for the streaming path,
/// directly from JSON text.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, validating shape and types.
    ///
    /// # Errors
    /// Returns [`DeError`] when `v` does not describe a `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Rebuilds `Self` directly from the JSON text behind `cur` without
    /// materializing an intermediate [`Value`] tree.
    ///
    /// The provided default parses one complete value tree and delegates
    /// to [`Deserialize::from_value`], so hand-written impls stay correct
    /// without opting in; every impl in this crate and everything the
    /// derive macro emits overrides it with true streaming. Overrides must
    /// consume exactly one JSON value and preserve the tree path's
    /// conversion semantics (the `serde_json` equivalence tests pin this).
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed JSON or shape mismatch.
    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        let v = cur.parse_value()?;
        Self::from_value(&v)
    }
}

// ---- streaming cursor -------------------------------------------------------

/// A parsed JSON number token, classified exactly as the tree parser does:
/// tokens without `.`/`e`/`E` prefer `u64`, then `i64`; everything else
/// parses as `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Integer token representable as `u64`.
    U64(u64),
    /// Negative integer token.
    I64(i64),
    /// Float token (or an integer too large for the integer types).
    F64(f64),
}

impl Number {
    /// The token as a `u64`, with the same acceptance rules as
    /// deserializing an unsigned integer from a [`Value`].
    ///
    /// # Errors
    /// Returns [`DeError`] for negative or non-integral tokens.
    pub fn as_unsigned(self) -> Result<u64, DeError> {
        match self {
            Number::U64(u) => Ok(u),
            Number::I64(i) if i >= 0 => Ok(i as u64),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Ok(f as u64)
            }
            _ => Err(DeError::new("expected unsigned integer")),
        }
    }

    /// The token as an `i64`, with the same acceptance rules as
    /// deserializing a signed integer from a [`Value`].
    ///
    /// # Errors
    /// Returns [`DeError`] for out-of-range or non-integral tokens.
    pub fn as_signed(self) -> Result<i64, DeError> {
        match self {
            Number::I64(i) => Ok(i),
            Number::U64(u) if u <= i64::MAX as u64 => Ok(u as i64),
            Number::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Ok(f as i64),
            _ => Err(DeError::new("expected integer")),
        }
    }

    /// The token as an `f64` (integers widen losslessly up to 2⁵³, matching
    /// the tree path's conversion).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        }
    }
}

/// Streaming JSON reader: a byte cursor over JSON text with the exact
/// token-level grammar of the vendored `serde_json` parser (whitespace,
/// escapes, number classification). [`Deserialize::from_json`] impls pull
/// typed data straight off the cursor, so no [`Value`] nodes are ever
/// allocated on the streaming path.
#[derive(Debug)]
pub struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    /// A cursor at the start of `text`.
    pub fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte, without consuming it.
    ///
    /// # Errors
    /// Returns [`DeError`] at end of input.
    pub fn peek(&mut self) -> Result<u8, DeError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| DeError::new("unexpected end of input"))
    }

    /// Consumes the next non-whitespace byte, which must be `b`.
    ///
    /// # Errors
    /// Returns [`DeError`] if the next byte differs.
    pub fn expect(&mut self, b: u8) -> Result<(), DeError> {
        let got = self.peek()?;
        if got == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )))
        }
    }

    /// Consumes `close` if it is the next byte (an empty container),
    /// returning whether it did.
    ///
    /// # Errors
    /// Returns [`DeError`] at end of input.
    pub fn consume_end(&mut self, close: u8) -> Result<bool, DeError> {
        if self.peek()? == close {
            self.pos += 1;
            return Ok(true);
        }
        Ok(false)
    }

    /// After a container element: consumes `,` (more elements, `true`) or
    /// `close` (container done, `false`).
    ///
    /// # Errors
    /// Returns [`DeError`] on any other byte.
    pub fn seq_next(&mut self, close: u8) -> Result<bool, DeError> {
        match self.peek()? {
            b',' => {
                self.pos += 1;
                Ok(true)
            }
            b if b == close => {
                self.pos += 1;
                Ok(false)
            }
            other => Err(DeError::new(format!(
                "expected `,` or `{}`, found `{}`",
                close as char, other as char
            ))),
        }
    }

    /// Consumes the keyword `word` (`null`, `true`, `false`).
    ///
    /// # Errors
    /// Returns [`DeError`] if the input does not continue with `word`.
    pub fn parse_keyword(&mut self, word: &str) -> Result<(), DeError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(DeError::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    /// Consumes a `null`.
    ///
    /// # Errors
    /// Returns [`DeError`] if the next value is not `null`.
    pub fn parse_null(&mut self) -> Result<(), DeError> {
        self.parse_keyword("null")
    }

    /// Consumes a JSON string and returns its unescaped contents.
    ///
    /// # Errors
    /// Returns [`DeError`] on unterminated strings or bad escapes.
    pub fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| DeError::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| DeError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| DeError::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| DeError::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| DeError::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(DeError::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the longest run of plain bytes (UTF-8 safe:
                    // multi-byte sequences contain no ASCII specials).
                    let start = self.pos - 1;
                    while let Some(&nb) = self.bytes.get(self.pos) {
                        if nb == b'"' || nb == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| DeError::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    /// Consumes a JSON number token and classifies it (see [`Number`]).
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed numbers.
    pub fn parse_number(&mut self) -> Result<Number, DeError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::new("invalid number"))?;
        if text.is_empty() {
            return Err(DeError::new(format!("expected value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Number::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Number::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Number::F64)
            .map_err(|_| DeError::new(format!("invalid number `{text}`")))
    }

    /// Skips one complete JSON value of any shape (used for unknown object
    /// keys) without allocating.
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed input.
    pub fn skip_value(&mut self) -> Result<(), DeError> {
        match self.peek()? {
            b'n' => self.parse_keyword("null"),
            b't' => self.parse_keyword("true"),
            b'f' => self.parse_keyword("false"),
            b'"' => self.skip_string(),
            b'[' => {
                self.pos += 1;
                if self.consume_end(b']')? {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if !self.seq_next(b']')? {
                        return Ok(());
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                if self.consume_end(b'}')? {
                    return Ok(());
                }
                loop {
                    self.skip_string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if !self.seq_next(b'}')? {
                        return Ok(());
                    }
                }
            }
            _ => self.parse_number().map(|_| ()),
        }
    }

    fn skip_string(&mut self) -> Result<(), DeError> {
        self.expect(b'"')?;
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    // Skip the escape introducer and its payload byte; \u
                    // payloads are hex digits, which contain no `"` or `\`,
                    // so the plain loop consumes them safely.
                    self.pos += 2;
                }
                Some(_) => self.pos += 1,
                None => return Err(DeError::new("unterminated string")),
            }
        }
    }

    /// Parses one complete value into a [`Value`] tree — the fallback for
    /// [`Deserialize::from_json`]'s provided default and for consumers that
    /// genuinely need the dynamic form.
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed input.
    pub fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek()? {
            b'n' => self.parse_keyword("null").map(|()| Value::Null),
            b't' => self.parse_keyword("true").map(|()| Value::Bool(true)),
            b'f' => self.parse_keyword("false").map(|()| Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.consume_end(b']')? {
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    if !self.seq_next(b']')? {
                        return Ok(Value::Seq(items));
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.consume_end(b'}')? {
                    return Ok(Value::Map(entries));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    if !self.seq_next(b'}')? {
                        return Ok(Value::Map(entries));
                    }
                }
            }
            _ => Ok(match self.parse_number()? {
                Number::U64(u) => Value::U64(u),
                Number::I64(i) => Value::I64(i),
                Number::F64(f) => Value::F64(f),
            }),
        }
    }

    /// Asserts the input is exhausted (only trailing whitespace remains).
    ///
    /// # Errors
    /// Returns [`DeError`] if unparsed input remains.
    pub fn finish(&mut self) -> Result<(), DeError> {
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(DeError::new(format!("trailing input at byte {}", self.pos)));
        }
        Ok(())
    }
}

// ---- derive-support helpers -------------------------------------------------

/// Extracts and deserializes a named field of a map value.
///
/// # Errors
/// Returns [`DeError`] if the field is missing or malformed.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| DeError::new(format!("field `{name}`: {}", e.msg))),
        None => Err(DeError::new(format!("missing field `{name}`"))),
    }
}

/// Unwraps a streaming field slot, reporting a missing field by name (the
/// streaming counterpart of [`field`], used by derived `from_json`).
///
/// # Errors
/// Returns [`DeError`] if the slot was never filled.
pub fn req<T>(slot: Option<T>, name: &str) -> Result<T, DeError> {
    slot.ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Interprets `v` as a sequence of exactly `n` elements.
///
/// # Errors
/// Returns [`DeError`] on non-sequences or length mismatch.
pub fn as_seq(v: &Value, n: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Seq(items) if items.len() == n => Ok(items),
        Value::Seq(items) => Err(DeError::new(format!(
            "expected sequence of {n}, found {}",
            items.len()
        ))),
        _ => Err(DeError::new("expected sequence")),
    }
}

/// Deserializes element `i` of a sequence slice.
///
/// # Errors
/// Returns [`DeError`] if the element is malformed.
pub fn idx<T: Deserialize>(items: &[Value], i: usize) -> Result<T, DeError> {
    T::from_value(&items[i]).map_err(|e| DeError::new(format!("element {i}: {}", e.msg)))
}

// ---- primitive impls --------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        match cur.peek()? {
            b't' => cur.parse_keyword("true").map(|()| true),
            b'f' => cur.parse_keyword("false").map(|()| false),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(DeError::new("expected unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }

            fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
                let raw = cur.parse_number()?.as_unsigned()?;
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    _ => return Err(DeError::new("expected integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }

            fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
                let raw = cur.parse_number()?.as_signed()?;
                <$t>::try_from(raw).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(u) => Ok(*u as f64),
            Value::I64(i) => Ok(*i as f64),
            // JSON has no non-finite literals; serde_json writes null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::new("expected number")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        if cur.peek()? == b'n' {
            cur.parse_null()?;
            return Ok(f64::NAN);
        }
        Ok(cur.parse_number()?.as_f64())
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        f64::from_json(cur).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        cur.parse_string()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected sequence")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        cur.expect(b'[')?;
        let mut out = Vec::new();
        if cur.consume_end(b']')? {
            return Ok(out);
        }
        loop {
            out.push(T::from_json(cur)?);
            if !cur.seq_next(b']')? {
                return Ok(out);
            }
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        if cur.peek()? == b'n' {
            cur.parse_null()?;
            return Ok(None);
        }
        T::from_json(cur).map(Some)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        T::from_json(cur).map(Box::new)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = as_seq(v, N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        cur.expect(b'[')?;
        let mut out = [T::default(); N];
        let mut filled = 0usize;
        if !cur.consume_end(b']')? {
            loop {
                if filled >= N {
                    return Err(DeError::new(format!("expected sequence of {N}")));
                }
                out[filled] = T::from_json(cur)?;
                filled += 1;
                if !cur.seq_next(b']')? {
                    break;
                }
            }
        }
        if filled != N {
            return Err(DeError::new(format!(
                "expected sequence of {N}, found {filled}"
            )));
        }
        Ok(out)
    }
}

/// Types usable as JSON object keys (stringified, as upstream serde_json
/// does for integer-keyed maps).
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    /// Returns [`DeError`] on malformed keys.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::new(format!("invalid integer key `{s}`")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Ord,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        // Sort by key so emitted JSON is byte-stable across runs.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(entries.into_iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        cur.expect(b'{')?;
        let mut out = Self::default();
        if cur.consume_end(b'}')? {
            return Ok(out);
        }
        loop {
            let key = cur.parse_string()?;
            cur.expect(b':')?;
            out.insert(K::from_key(&key)?, V::from_json(cur)?);
            if !cur.seq_next(b'}')? {
                return Ok(out);
            }
        }
    }
}

impl<K, V> Serialize for std::collections::BTreeMap<K, V>
where
    K: MapKey,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(DeError::new("expected map")),
        }
    }

    fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
        cur.expect(b'{')?;
        let mut out = Self::new();
        if cur.consume_end(b'}')? {
            return Ok(out);
        }
        loop {
            let key = cur.parse_string()?;
            cur.expect(b':')?;
            out.insert(K::from_key(&key)?, V::from_json(cur)?);
            if !cur.seq_next(b'}')? {
                return Ok(out);
            }
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $index:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $index; 1 })+;
                let items = as_seq(v, LEN)?;
                Ok(($(idx::<$name>(items, $index)?,)+))
            }

            fn from_json(cur: &mut JsonCursor<'_>) -> Result<Self, DeError> {
                cur.expect(b'[')?;
                let mut first = true;
                let out = ($(
                    {
                        let _ = $index;
                        if !std::mem::take(&mut first) {
                            cur.expect(b',')?;
                        }
                        <$name>::from_json(cur)?
                    },
                )+);
                cur.expect(b']')?;
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}
