//! Vendored minimal stand-in for `rayon`.
//!
//! Implements the slice of rayon's API this workspace uses — `into_par_iter`
//! / `par_iter`, `map`, `collect::<Vec<_>>`, [`ThreadPoolBuilder`] and
//! [`ThreadPool::install`] — on top of `std::thread::scope`. Work is
//! distributed dynamically (shared item queue, so an expensive item does not
//! stall a whole pre-assigned chunk) and results are **always merged back in
//! input order**, which is what lets callers guarantee that a computation is
//! byte-identical no matter how many worker threads run it.
//!
//! The thread count comes from, in order: the innermost active
//! [`ThreadPool::install`], the `WADE_THREADS` environment variable, and
//! finally [`std::thread::available_parallelism`]. A pool of size 1 runs
//! inline without spawning.

use std::cell::Cell;
use std::sync::{Mutex, OnceLock};

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel operations will currently use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("WADE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    physical_parallelism()
}

/// The machine's physical parallelism (cached `available_parallelism`).
fn physical_parallelism() -> usize {
    static PHYSICAL: OnceLock<usize> = OnceLock::new();
    *PHYSICAL.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The parallelism fan-outs will actually achieve right now: the configured
/// width ([`current_num_threads`]) capped at the machine's physical
/// parallelism. An 8-thread pool on a 1-core host reports 1 here — callers
/// (and the internal map dispatch) use this to skip spawn/queue overhead
/// that cannot buy any concurrency.
pub fn effective_parallelism() -> usize {
    current_num_threads().min(physical_parallelism())
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced; mirrors the
/// upstream signature).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fixes the worker-thread count (0 means "use the default").
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails; the `Result` mirrors the upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            }
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool: a thread-count scope for parallel operations.
///
/// Workers are spawned per operation (scoped threads), so the pool itself
/// holds no OS resources; what it provides is the deterministic *width*
/// configuration rayon callers rely on.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count governing all parallel
    /// operations it performs.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let previous = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        // Restore on unwind as well, so a panicking closure cannot leak the
        // override into unrelated work on this thread.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _guard = Restore(previous);
        op()
    }
}

/// Order-stable parallel map: applies `f` to every item, using up to
/// [`current_num_threads`] workers, and returns results in input order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let len = items.len();
    let width = current_num_threads();
    // Workers beyond the machine's physical parallelism cannot run
    // concurrently; they only add spawn + queue-contention cost (the
    // "8-thread pool on a 1-core container" regression). The *configured*
    // width still propagates to nested work below, so results remain
    // byte-identical — only the dispatch changes.
    let workers = width.min(len).min(physical_parallelism());
    if workers <= 1 {
        // Inline on the caller's thread: its install-scoped width is still
        // visible to nested parallel work, so results are unchanged.
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                // Freshly spawned threads have an empty thread-local, so an
                // installed pool width would silently stop applying to any
                // nested parallel work run by item closures; propagate it.
                INSTALLED_THREADS.with(|c| c.set(Some(width)));
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = queue.lock().expect("work queue poisoned").next();
                    match next {
                        Some((i, item)) => local.push((i, f(item))),
                        None => return local,
                    }
                }
            }));
        }
        for handle in handles {
            indexed.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// A materialized parallel iterator (items are known up front).
///
/// `map` executes eagerly across the current pool — unlike upstream rayon's
/// lazy pipelines — which is equivalent for the map→collect shapes this
/// workspace uses and keeps the vendored surface tiny.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter { items: par_map_vec(self.items, f) }
    }

    /// Collects the items in input order.
    pub fn collect<C: FromParallelResults<T>>(self) -> C {
        C::from_ordered_vec(self.items)
    }
}

/// Collection targets for parallel pipelines.
pub trait FromParallelResults<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered_vec(items: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_ordered_vec(items: Vec<R>) -> Self {
        items
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Builds the iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for core::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// Conversion into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a reference).
    type Item: Send;
    /// Builds the iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_identical_across_pool_sizes() {
        let work = |i: usize| -> u64 {
            // Uneven per-item cost to exercise the dynamic queue.
            (0..(i % 7) * 1000 + 1)
                .fold(i as u64, |acc, x| acc.wrapping_mul(31).wrapping_add(x as u64))
        };
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let a: Vec<u64> = one.install(|| (0..500usize).into_par_iter().map(work).collect());
        let b: Vec<u64> = many.install(|| (0..500usize).into_par_iter().map(work).collect());
        assert_eq!(a, b);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn par_iter_over_refs() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn worker_panic_propagates() {
        // A panicking item must abort the whole map, whether dispatch ran
        // workers or fell back to inline (worker count depends on the
        // machine's physical parallelism, so don't pin the message).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let outcome = std::panic::catch_unwind(|| {
            pool.install(|| {
                let _: Vec<usize> = (0..16usize)
                    .into_par_iter()
                    .map(|i| {
                        assert!(i != 7, "boom");
                        i
                    })
                    .collect();
            });
        });
        assert!(outcome.is_err(), "panic in item closure must propagate");
    }

    #[test]
    fn effective_parallelism_is_capped_by_hardware() {
        let physical = std::thread::available_parallelism().map_or(1, |n| n.get());
        let wide = ThreadPoolBuilder::new().num_threads(physical + 7).build().unwrap();
        // The configured width is still reported verbatim…
        assert_eq!(wide.install(current_num_threads), physical + 7);
        // …but the achievable fan-out is capped at the hardware.
        assert_eq!(wide.install(effective_parallelism), physical);
        let narrow = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(narrow.install(effective_parallelism), 1);
    }
}
