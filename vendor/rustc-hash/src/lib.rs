//! Vendored minimal stand-in for `rustc-hash`: the rustc-derived
//! multiply-xor hasher, reimplemented because the `rustc-hash`/`ahash`
//! crates are unavailable offline.
//!
//! Every hot-path map in this workspace is keyed by values the simulator or
//! the instrumentation layer generated itself (word indices, 32-bit store
//! values, cell keys), so HashDoS resistance — the point of SipHash, the
//! std default — buys nothing, while FxHash's two-instruction mix removes
//! the hasher from the profile entirely. Used by `wade-dram` (collision
//! maps), `wade-trace` (reuse/entropy tracking) and `wade-core` (profile
//! cache).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher (word-at-a-time rotate-xor-multiply).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip_and_distinct_hashes() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            map.insert(i * 8, i);
        }
        assert_eq!(map.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(map.get(&(i * 8)), Some(&i));
        }
        let mut a = FxHasher::default();
        a.write_u64(1);
        let mut b = FxHasher::default();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_writes_match_padding_semantics() {
        let mut a = FxHasher::default();
        a.write(b"abcdefgh");
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes(*b"abcdefgh"));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn set_deduplicates() {
        let mut set: FxHashSet<u32> = FxHashSet::default();
        for v in [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3] {
            set.insert(v);
        }
        assert_eq!(set.len(), 7);
    }
}
