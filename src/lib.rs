//! # WADE — Workload-Aware DRAM Error prediction
//!
//! A full Rust reproduction of *"Workload-Aware DRAM Error Prediction using
//! Machine Learning"* (Mukhanov et al., IISWC 2019): characterize DRAM
//! under relaxed refresh / lowered voltage / elevated temperature while
//! running instrumented workloads, extract 249 program features, and train
//! ML models that predict word error rates and crash probabilities per
//! DIMM/rank — in microseconds instead of 2-hour campaigns.
//!
//! This facade crate re-exports the workspace layers (`ARCHITECTURE.md` at
//! the repo root maps them in depth):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `wade-core` | campaigns, data collection, the error model `M` |
//! | [`dram`] | `wade-dram` | statistical DRAM device + error physics + `PreparedRun` cache |
//! | [`ecc`] | `wade-ecc` | SECDED (72,64) codec |
//! | [`memsys`] | `wade-memsys` | SoC substrate (caches, cores, MCUs) |
//! | [`trace`] | `wade-trace` | instrumentation (reuse time, data entropy) |
//! | [`workloads`] | `wade-workloads` | executable mini-benchmarks |
//! | [`features`] | `wade-features` | 249-feature schema + Spearman + Table III sets |
//! | [`ml`] | `wade-ml` | KNN / ε-SVR / random forests / LOWO-CV |
//! | [`store`] | `wade-store` | disk-backed, fingerprint-keyed artifact store |
//! | [`fault`] | `wade-fault` | deterministic fault injection (`StoreFs` seam, seeded schedules) |
//! | [`fleet`] | `wade-fleet` | fleet-scale scenario engine: device populations, sharded sweeps, field-style evaluation |
//! | [`serve`] | `wade-serve` | online inference server over store-backed models |
//!
//! # Quick start
//!
//! Collect a reduced characterization campaign, train the error model, and
//! predict for a workload the model never trained on. This block is
//! doc-tested (`cargo test --doc`), so it always compiles and runs against
//! the current API; `examples/quickstart.rs` is the same path with
//! progress output.
//!
//! ```
//! use wade::core::{train_error_model, Campaign, CampaignConfig, MlKind, SimulatedServer};
//! use wade::dram::OperatingPoint;
//! use wade::features::FeatureSet;
//! use wade::workloads::{paper_suite, Scale, WorkloadId};
//!
//! // 1. A server whose 72 simulated DRAM chips are "manufactured" from a
//! //    seed, and a reduced campaign grid (`paper_full()` is the real one).
//! let server = SimulatedServer::with_seed(42);
//! let suite = &paper_suite(Scale::Test)[..3];
//! let data = Campaign::new(server, CampaignConfig::quick()).collect(suite, 7);
//! assert_eq!(data.rows.len(), 3 * 6); // 3 workloads × (4 WER + 2 PUE ops)
//!
//! // 2. Train the error model (eq. 1): KNN on input set 1, the paper's
//! //    most accurate combination.
//! let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);
//!
//! // 3. Predict for an unseen workload from its program features alone.
//! let server = SimulatedServer::with_seed(42);
//! let unseen = WorkloadId::Srad.instantiate(8, Scale::Test);
//! let profiled = server.profile_workload(unseen.as_ref(), 99);
//! let wer = model.predict_wer_total(&profiled.features, OperatingPoint::relaxed(2.283, 60.0));
//! let pue = model.predict_pue(&profiled.features, OperatingPoint::relaxed(2.283, 70.0));
//! assert!(wer >= 0.0 && (0.0..=1.0).contains(&pue));
//! ```
//!
//! Campaign collection caches weak-cell populations across refresh-period
//! set-points and PUE repeats ([`dram::PreparedRun`]); the cached and
//! direct paths are byte-identical by contract — see `ARCHITECTURE.md` §3
//! and the normative seeding-contract docs in `wade-dram`'s `sim` module.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use wade_core as core;
pub use wade_dram as dram;
pub use wade_ecc as ecc;
pub use wade_fault as fault;
pub use wade_features as features;
pub use wade_fleet as fleet;
pub use wade_memsys as memsys;
pub use wade_ml as ml;
pub use wade_serve as serve;
pub use wade_store as store;
pub use wade_trace as trace;
pub use wade_workloads as workloads;
