//! # WADE — Workload-Aware DRAM Error prediction
//!
//! A full Rust reproduction of *"Workload-Aware DRAM Error Prediction using
//! Machine Learning"* (Mukhanov et al., IISWC 2019): characterize DRAM
//! under relaxed refresh / lowered voltage / elevated temperature while
//! running instrumented workloads, extract 249 program features, and train
//! ML models that predict word error rates and crash probabilities per
//! DIMM/rank — in microseconds instead of 2-hour campaigns.
//!
//! This facade crate re-exports the workspace layers:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `wade-core` | campaigns, data collection, the error model `M` |
//! | [`dram`] | `wade-dram` | statistical DRAM device + error physics |
//! | [`ecc`] | `wade-ecc` | SECDED (72,64) codec |
//! | [`memsys`] | `wade-memsys` | SoC substrate (caches, cores, MCUs) |
//! | [`trace`] | `wade-trace` | instrumentation (reuse time, data entropy) |
//! | [`workloads`] | `wade-workloads` | executable mini-benchmarks |
//! | [`features`] | `wade-features` | 249-feature schema + Spearman + Table III sets |
//! | [`ml`] | `wade-ml` | KNN / ε-SVR / random forests / LOWO-CV |
//!
//! ## Quickstart
//!
//! ```
//! use wade::core::{Campaign, CampaignConfig, MlKind, SimulatedServer};
//! use wade::features::FeatureSet;
//! use wade::workloads::{paper_suite, Scale};
//!
//! // 1. A server with 72 simulated DRAM chips.
//! let server = SimulatedServer::with_seed(42);
//! // 2. Collect a (reduced) characterization campaign.
//! let data = Campaign::new(server, CampaignConfig::quick())
//!     .collect(&paper_suite(Scale::Test), 7);
//! // 3. Train the error model and predict.
//! let model = wade::core::train_error_model(&data, MlKind::Knn, FeatureSet::Set1);
//! let row = &data.rows[0];
//! assert!(model.predict_wer_total(&row.features, row.op) >= 0.0);
//! ```

pub use wade_core as core;
pub use wade_dram as dram;
pub use wade_ecc as ecc;
pub use wade_features as features;
pub use wade_memsys as memsys;
pub use wade_ml as ml;
pub use wade_trace as trace;
pub use wade_workloads as workloads;
