//! Disk-backed, fingerprint-keyed artifact store — the durable tier behind
//! every caching layer in the workspace.
//!
//! Field-deployment studies of DRAM failure prediction treat extracted
//! feature sets and trained models as persistent, versioned artifacts
//! shared across runs; this crate is that store for WADE. The three
//! in-process caches (the profiling memo, the campaign-data disk cache and
//! the trained-fold-model memo) are thin views over one [`ArtifactStore`],
//! so repeated invocations, CI and figure binaries pay ~0 for work another
//! process already did. The contract (normative; ARCHITECTURE.md §11
//! documents the layout, §12 the failure semantics):
//!
//! * **Content is pure.** Every artifact is a pure function of its key; a
//!   warm read is *byte-identical* to recomputing (the vendored
//!   `serde_json` round-trips `f64` exactly), so the store is invisible to
//!   every consumer, including seeded golden tests.
//! * **Keys carry the determinism fingerprint.** Anything that would
//!   re-manufacture the artifact — seeds, grids, scales, SoC/device
//!   fingerprints, trainer configs — is folded into the canonical key
//!   string. A key mismatch is a miss, never a wrong answer.
//! * **Corruption is a miss.** Entries embed a schema version, the full
//!   key, the key fingerprint, and the payload's length and hash; a
//!   truncated, garbled or foreign-version file fails the checks, counts as
//!   [`ArtifactStore::corrupt`], and is atomically rewritten by the next
//!   [`ArtifactStore::put`].
//! * **Writes are atomic.** Payloads land in a temp file in the target
//!   directory and are renamed into place, so a crashed or concurrent
//!   writer can never publish a half-written entry.
//! * **Failure degrades, never aborts.** All disk access goes through the
//!   [`StoreFs`] seam. Transient faults get [`MAX_ATTEMPTS`] tries with
//!   deterministic backoff; persistent faults trip the store into a
//!   *degraded* mode where every consumer silently falls back to its
//!   in-memory path (a periodic probe rejoins the disk tier once it
//!   heals). Because the store is pure, results under any fault schedule
//!   are byte-identical to the healthy path — `tests/fault_injection.rs`
//!   asserts this end to end.
//!
//! # Entry format
//!
//! One artifact per file, `<root>/<kind>/<fingerprint as hex>.json`:
//!
//! ```text
//! {"schema":1,"kind":"profile","key":"…","fingerprint":…,"payload_len":…,"payload_hash":…}
//! <payload JSON, exactly payload_len bytes>
//! ```
//!
//! The header is the first line; the payload is everything after the first
//! newline. `payload_len` makes truncation detectable without parsing,
//! `payload_hash` (FxHash64) catches in-place garbling, and the embedded
//! `key` string guards against fingerprint collisions mapping two keys to
//! one file (the colliding entry reads as a miss and is overwritten).

#![deny(missing_docs)]

pub mod torture;

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize};

pub use wade_fault::{
    is_transient, mix64, DirEntryInfo, FaultCounters, FaultPlan, FaultRng, FaultyFs, RealFs,
    StoreFs,
};

/// On-disk schema version. Bump when the entry format changes; entries with
/// any other version read as misses (and `gc` removes them).
pub const SCHEMA_VERSION: u32 = 1;

/// Environment variable overriding the default store directory.
pub const STORE_DIR_ENV: &str = "WADE_STORE_DIR";

/// Attempts per filesystem operation: the first try plus bounded retries
/// of *transient* faults (`EINTR`/timeout/would-block — see
/// [`is_transient`]). Persistent faults (`ENOSPC`, `EACCES`, …) fail
/// immediately; retrying a full disk is noise.
pub const MAX_ATTEMPTS: u32 = 3;

/// Base backoff between retry attempts, doubled per attempt
/// (250 µs, 500 µs). Deterministic — no jitter — so fault-schedule replays
/// issue the same operation sequence every run.
pub const RETRY_BACKOFF: Duration = Duration::from_micros(250);

/// Consecutive hard operation failures (retries exhausted or persistent
/// kind) after which the store trips into degraded mode and consumers fall
/// back to their in-memory paths.
pub const DEGRADE_AFTER: u64 = 4;

/// While degraded, every `PROBE_EVERY`-th operation is allowed through to
/// the disk tier as a health probe; one success rejoins the tier.
pub const PROBE_EVERY: u64 = 32;

/// The default store directory when neither `--store-dir` nor
/// [`STORE_DIR_ENV`] is given: `<CARGO_TARGET_DIR|target>/wade-store`.
pub fn default_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("wade-store")
}

/// Resolves the store directory with the standard precedence:
/// explicit argument (e.g. `--store-dir`) > [`STORE_DIR_ENV`] >
/// [`default_dir`].
pub fn resolve_dir(explicit: Option<&str>) -> PathBuf {
    if let Some(dir) = explicit {
        return PathBuf::from(dir);
    }
    match std::env::var(STORE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => default_dir(),
    }
}

/// The process-wide store, if one has been installed (figure binaries
/// install one at startup; libraries and tests that never install one run
/// purely in-process, exactly as before the store existed).
pub fn global() -> Option<Arc<ArtifactStore>> {
    global_slot().get().cloned()
}

/// Installs `store` as the process-wide store consulted by [`global`].
/// The first installation wins (the registry is a `OnceLock`); the
/// installed store is returned either way.
pub fn install_global(store: Arc<ArtifactStore>) -> Arc<ArtifactStore> {
    let slot = global_slot();
    let _ = slot.set(store.clone());
    slot.get().cloned().unwrap_or(store)
}

fn global_slot() -> &'static OnceLock<Arc<ArtifactStore>> {
    static GLOBAL: OnceLock<Arc<ArtifactStore>> = OnceLock::new();
    &GLOBAL
}

/// Order-stable 64-bit fingerprint of a canonical key string (FxHash64).
pub fn fingerprint64(key: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = rustc_hash::FxHasher::default();
    hasher.write(key.as_bytes());
    hasher.finish()
}

/// [`fingerprint64`] domain-separated by `salt`, fed to the hasher
/// incrementally — no salted copy of a potentially multi-megabyte payload
/// is allocated.
pub fn fingerprint64_salted(salt: &str, payload: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = rustc_hash::FxHasher::default();
    hasher.write(salt.as_bytes());
    hasher.write(payload.as_bytes());
    hasher.finish()
}

/// Why an entry that physically exists failed to read as a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptReason {
    /// Header, schema version, payload length or payload hash failed — the
    /// file is truncated, garbled or from a foreign schema.
    Integrity,
    /// The entry passed every integrity check but its payload no longer
    /// deserializes into the requested type.
    Payload,
}

/// Structured failure taxonomy of the store (replaces panic-on-error
/// throughout the caching layers; ARCHITECTURE.md §12 is normative).
///
/// Consumers treating the store as a best-effort cache may discard these —
/// every error leaves the store in a state where recomputing is correct —
/// but the taxonomy keeps the *reason* observable for operators.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// A filesystem operation failed after retry handling. `retries` is
    /// how many re-attempts were burned before giving up (0 for persistent
    /// kinds, which fail fast).
    Io {
        /// Which operation failed (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The path the operation targeted.
        path: PathBuf,
        /// The final error kind.
        kind: io::ErrorKind,
        /// Retry attempts consumed before giving up.
        retries: u32,
    },
    /// The value (or entry header) failed to serialize — nothing touched
    /// the disk.
    Encode {
        /// Serializer error text.
        what: String,
    },
    /// An entry exists on disk but failed verification; the read counts as
    /// a miss and the next put heals the file.
    Corrupt {
        /// Artifact kind of the entry.
        kind: String,
        /// Path of the offending file.
        path: PathBuf,
        /// Which check failed.
        reason: CorruptReason,
    },
    /// The store is in degraded mode (the disk tier failed
    /// [`DEGRADE_AFTER`] consecutive operations) and skipped the disk;
    /// the caller should use its in-memory path.
    Degraded {
        /// Which operation was skipped.
        op: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { op, path, kind, retries } => {
                write!(f, "store {op} failed on {} ({kind:?}, {retries} retries)", path.display())
            }
            Self::Encode { what } => write!(f, "store encode failed: {what}"),
            Self::Corrupt { kind, path, reason } => {
                write!(f, "corrupt {kind} entry at {} ({reason:?})", path.display())
            }
            Self::Degraded { op } => write!(f, "store degraded: skipped {op}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Metadata of one store entry, as listed by [`ArtifactStore::ls`].
#[derive(Debug, Clone)]
pub struct ArtifactMeta {
    /// Artifact kind (the subdirectory).
    pub kind: String,
    /// Canonical key string, when the header parsed (`None` for corrupt
    /// entries).
    pub key: Option<String>,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whether the entry passes every integrity check (schema version,
    /// fingerprint, payload length and hash).
    pub ok: bool,
    /// Last access time, captured *before* the verification read (the
    /// read itself bumps atime, which would erase the LRU ordering
    /// [`ArtifactStore::gc_capped`] evicts by). `None` when unreadable.
    pub accessed: Option<SystemTime>,
    /// Full path of the entry.
    pub path: PathBuf,
}

/// Summary of an [`ArtifactStore::gc`] / [`ArtifactStore::gc_capped`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries that passed verification and were kept.
    pub kept: usize,
    /// Corrupt/foreign-version/stray entries removed.
    pub removed: usize,
    /// Valid entries evicted by the LRU size cap (oldest access first).
    pub evicted: usize,
    /// Bytes of valid entries remaining after the pass.
    pub bytes_kept: u64,
}

/// A content-addressed, versioned, disk-backed artifact store (see the
/// module docs for the entry format and the determinism contract).
///
/// All operations are `&self` and thread-safe: reads race benignly with the
/// atomic rename of writes (a reader sees either the old complete entry or
/// the new complete entry, never a torn one).
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    fs: Box<dyn StoreFs>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    retries: AtomicU64,
    io_errors: AtomicU64,
    degraded_ops: AtomicU64,
    consecutive_failures: AtomicU64,
    degraded: AtomicBool,
    probe_tick: AtomicU64,
}

impl ArtifactStore {
    /// Opens (without touching the filesystem) a store rooted at `root`,
    /// backed by the real filesystem. Directories are created lazily on
    /// the first write.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self::open_with_fs(root, RealFs)
    }

    /// [`ArtifactStore::open`] with an explicit [`StoreFs`] backend —
    /// the fault-injection seam ([`FaultyFs`] here subjects *every* store
    /// code path to a deterministic fault schedule).
    pub fn open_with_fs(root: impl Into<PathBuf>, fs: impl StoreFs + 'static) -> Self {
        Self {
            root: root.into(),
            fs: Box::new(fs),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            degraded_ops: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            probe_tick: AtomicU64::new(0),
        }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reads the artifact stored under `(kind, key)`, verifying schema
    /// version, key fingerprint, payload length and payload hash. Any
    /// failure — missing file, truncation, garbling, foreign version, a
    /// fingerprint-colliding foreign key, a payload that no longer
    /// deserializes, or an I/O error that survives the retry budget — is a
    /// miss (corruption additionally increments
    /// [`ArtifactStore::corrupt`]). The structured reason is available via
    /// [`ArtifactStore::try_get`].
    pub fn get<T: Deserialize>(&self, kind: &str, key: &str) -> Option<T> {
        self.try_get(kind, key).unwrap_or(None)
    }

    /// [`ArtifactStore::get`] with the failure reason kept: `Ok(None)` is
    /// a plain miss (absent entry or benign fingerprint collision),
    /// `Err(_)` carries the [`StoreError`] taxonomy. Every error path
    /// still maintains the hit/miss/corrupt counters, so `get` is exactly
    /// `try_get(..).unwrap_or(None)`.
    pub fn try_get<T: Deserialize>(&self, kind: &str, key: &str) -> Result<Option<T>, StoreError> {
        let path = self.entry_path(kind, key);
        if !self.disk_allowed() {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Degraded { op: "get" });
        }
        let bytes = match self.with_retry("read", &path, || self.fs.read(&path)) {
            Ok(b) => b,
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if matches!(e, StoreError::Io { kind: io::ErrorKind::NotFound, .. }) {
                    return Ok(None);
                }
                return Err(e);
            }
        };
        match verify_entry(&bytes, kind, key) {
            Ok(payload) => match serde_json::from_str::<T>(payload) {
                Ok(value) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Ok(Some(value))
                }
                Err(_) => Err(self.miss_corrupt(kind, path, CorruptReason::Payload)),
            },
            // A fingerprint collision with a *valid* foreign entry is a
            // plain miss, not corruption.
            Err(EntryError::ForeignKey) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok(None)
            }
            Err(_) => Err(self.miss_corrupt(kind, path, CorruptReason::Integrity)),
        }
    }

    fn miss_corrupt(&self, kind: &str, path: PathBuf, reason: CorruptReason) -> StoreError {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        StoreError::Corrupt { kind: kind.to_string(), path, reason }
    }

    /// Serializes `value` and atomically publishes it under `(kind, key)`,
    /// replacing any previous (or corrupt) entry.
    ///
    /// # Errors
    /// Returns the [`StoreError`] if serialization, the directory, the
    /// temp file or the rename fails after retry handling, or when the
    /// store is degraded and skipped the disk. Callers treating the store
    /// as a best-effort cache may ignore it — the next read recomputes.
    pub fn put<T: Serialize>(&self, kind: &str, key: &str, value: &T) -> Result<PathBuf, StoreError> {
        let payload = serde_json::to_string(value)
            .map_err(|e| StoreError::Encode { what: e.to_string() })?;
        let entry = encode_entry(kind, key, &payload)?;
        if !self.disk_allowed() {
            return Err(StoreError::Degraded { op: "put" });
        }
        let path = self.entry_path(kind, key);
        let Some(dir) = path.parent() else {
            return Err(StoreError::Encode { what: format!("no parent for {}", path.display()) });
        };
        self.with_retry("create_dir_all", dir, || self.fs.create_dir_all(dir))?;
        // Atomic publish: temp file in the same directory, then rename.
        // The nonce is drawn with fetch_add so concurrent same-key puts
        // (deterministically identical content, e.g. racing profile-cache
        // misses) can never share a temp path and truncate each other
        // mid-rename.
        static TMP_NONCE: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".tmp-{:016x}-{}-{}",
            fingerprint64(key),
            std::process::id(),
            TMP_NONCE.fetch_add(1, Ordering::Relaxed),
        ));
        if let Err(e) = self.with_retry("write", &tmp, || self.fs.write(&tmp, entry.as_bytes())) {
            let _ = self.fs.remove_file(&tmp);
            return Err(e);
        }
        if let Err(e) = self.with_retry("rename", &tmp, || self.fs.rename(&tmp, &path)) {
            let _ = self.fs.remove_file(&tmp);
            return Err(e);
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// [`ArtifactStore::get`] with a compute-and-store fallback: on a miss
    /// the artifact is produced by `make`, published (best effort — an
    /// unwritable or degraded store falls back to compute-every-time,
    /// never to failure) and returned.
    pub fn get_or_put<T: Serialize + Deserialize>(
        &self,
        kind: &str,
        key: &str,
        make: impl FnOnce() -> T,
    ) -> T {
        if let Some(value) = self.get(kind, key) {
            return value;
        }
        let value = make();
        let _ = self.put(kind, key, &value);
        value
    }

    /// Runs `f` with the retry/degradation state machine: transient faults
    /// ([`is_transient`]) get up to [`MAX_ATTEMPTS`] tries with
    /// deterministic doubling backoff; persistent faults fail fast. A hard
    /// failure feeds the consecutive-failure count that trips degraded
    /// mode; any success clears it. `NotFound` is exempt on both sides —
    /// an absent file is the disk tier *working*, not failing.
    fn with_retry<R>(
        &self,
        op: &'static str,
        path: &Path,
        mut f: impl FnMut() -> io::Result<R>,
    ) -> Result<R, StoreError> {
        let mut attempt = 0u32;
        loop {
            match f() {
                Ok(value) => {
                    self.note_ok();
                    return Ok(value);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    self.note_ok();
                    return Err(StoreError::Io {
                        op,
                        path: path.to_path_buf(),
                        kind: io::ErrorKind::NotFound,
                        retries: attempt,
                    });
                }
                Err(e) if is_transient(e.kind()) && attempt + 1 < MAX_ATTEMPTS => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(RETRY_BACKOFF * (1 << attempt));
                    attempt += 1;
                }
                Err(e) => {
                    self.io_errors.fetch_add(1, Ordering::Relaxed);
                    self.note_failure();
                    return Err(StoreError::Io {
                        op,
                        path: path.to_path_buf(),
                        kind: e.kind(),
                        retries: attempt,
                    });
                }
            }
        }
    }

    /// Degradation gate: healthy stores always pass; a degraded store lets
    /// every [`PROBE_EVERY`]-th operation through as a health probe and
    /// short-circuits the rest (counted in
    /// [`ArtifactStore::degraded_ops`]).
    fn disk_allowed(&self) -> bool {
        if !self.degraded.load(Ordering::Relaxed) {
            return true;
        }
        let tick = self.probe_tick.fetch_add(1, Ordering::Relaxed);
        if (tick + 1).is_multiple_of(PROBE_EVERY) {
            return true;
        }
        self.degraded_ops.fetch_add(1, Ordering::Relaxed);
        false
    }

    fn note_ok(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.degraded.store(false, Ordering::Relaxed);
    }

    fn note_failure(&self) {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= DEGRADE_AFTER {
            self.degraded.store(true, Ordering::Relaxed);
        }
    }

    /// Lists every entry in the store (including corrupt ones, flagged
    /// `ok: false`), sorted by (kind, path) for stable output.
    pub fn ls(&self) -> Vec<ArtifactMeta> {
        let mut out = Vec::new();
        let Ok(kinds) = self.fs.read_dir(&self.root) else {
            return out;
        };
        for kind_entry in kinds {
            if !kind_entry.is_dir {
                continue;
            }
            let kind = kind_entry.name;
            let kind_path = self.root.join(&kind);
            let Ok(entries) = self.fs.read_dir(&kind_path) else {
                continue;
            };
            for entry in entries {
                // Only files the store itself would have produced: a
                // mispointed root must never get foreign files listed —
                // or, through gc()/clear(), deleted.
                if !entry.is_file || !is_store_file_name(&entry.name) {
                    continue;
                }
                let path = kind_path.join(&entry.name);
                let accessed = self.fs.accessed(&path).ok();
                // Temp files are never valid entries, even when their
                // content is self-consistent (a crash-orphaned temp was
                // fully written but never renamed — `get` can't serve it,
                // so `ok: true` would leak it past `gc` forever).
                let (key, ok) = if entry.name.starts_with(".tmp-") {
                    (None, false)
                } else {
                    match self.fs.read(&path) {
                        Ok(bytes) => match inspect_entry(&bytes, &kind) {
                            Ok(key) => (Some(key), true),
                            Err(EntryError::Header(header)) => (header.map(|h| h.key), false),
                            Err(_) => (None, false),
                        },
                        Err(_) => (None, false),
                    }
                };
                out.push(ArtifactMeta {
                    kind: kind.clone(),
                    key,
                    file_bytes: entry.len,
                    ok,
                    accessed,
                    path,
                });
            }
        }
        out.sort_by(|a, b| (a.kind.as_str(), &a.path).cmp(&(b.kind.as_str(), &b.path)));
        out
    }

    /// The keys of every valid entry of `kind` whose key starts with
    /// `prefix`, sorted. Entry file names are key *fingerprints*, so
    /// prefix enumeration must open each entry and read the header key —
    /// this is a maintenance/introspection scan (like [`ArtifactStore::ls`]
    /// it bypasses the degradation gate), not a hot-path read. Corrupt,
    /// foreign and temp files are skipped, never surfaced.
    pub fn keys_with_prefix(&self, kind: &str, prefix: &str) -> Vec<String> {
        let mut out = Vec::new();
        let kind_path = self.root.join(kind);
        let Ok(entries) = self.fs.read_dir(&kind_path) else {
            return out;
        };
        for entry in entries {
            if !entry.is_file
                || !is_store_file_name(&entry.name)
                || entry.name.starts_with(".tmp-")
            {
                continue;
            }
            let Ok(bytes) = self.fs.read(&kind_path.join(&entry.name)) else {
                continue;
            };
            if let Ok(key) = inspect_entry(&bytes, kind) {
                if key.starts_with(prefix) {
                    out.push(key);
                }
            }
        }
        out.sort();
        out
    }

    /// Removes every store entry that fails verification (truncated,
    /// garbled, foreign schema version, crash-orphaned temp files); keeps
    /// valid entries. Files that do not match the store's own naming
    /// shapes are never touched (or listed), and temp files younger than
    /// [`TMP_GC_GRACE`] are kept — a concurrent writer may be about to
    /// rename them, and deleting an in-flight temp would make that rename
    /// fail and silently drop the artifact.
    pub fn gc(&self) -> GcReport {
        self.gc_capped(None)
    }

    /// [`ArtifactStore::gc`] with an optional size budget: after corrupt
    /// entries are dropped, valid entries are evicted **least-recently
    /// accessed first** (atime, falling back to mtime on `noatime`
    /// mounts; ties broken by path for determinism) until the store holds
    /// at most `max_bytes`. Evicting a valid entry is always safe — the
    /// next read is a miss that recomputes and republishes.
    pub fn gc_capped(&self, max_bytes: Option<u64>) -> GcReport {
        let mut report = GcReport::default();
        let mut live: Vec<ArtifactMeta> = Vec::new();
        for meta in self.ls() {
            if meta.ok {
                live.push(meta);
                continue;
            }
            let is_tmp = meta
                .path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with(".tmp-"));
            if is_tmp && !self.older_than(&meta.path, TMP_GC_GRACE) {
                report.kept += 1;
                continue;
            }
            if self.fs.remove_file(&meta.path).is_ok() {
                report.removed += 1;
            }
        }
        let mut total: u64 = live.iter().map(|m| m.file_bytes).sum();
        if let Some(cap) = max_bytes {
            if total > cap {
                let mut by_age: Vec<(SystemTime, ArtifactMeta)> = live
                    .drain(..)
                    .map(|m| (m.accessed.unwrap_or(SystemTime::UNIX_EPOCH), m))
                    .collect();
                by_age.sort_by(|a, b| (a.0, &a.1.path).cmp(&(b.0, &b.1.path)));
                for (_, meta) in by_age {
                    if total > cap && self.fs.remove_file(&meta.path).is_ok() {
                        total -= meta.file_bytes;
                        report.evicted += 1;
                    } else {
                        live.push(meta);
                    }
                }
            }
        }
        report.kept += live.len();
        report.bytes_kept = total;
        report
    }

    /// Total bytes of valid (verifiable) entries currently on disk — the
    /// number [`ArtifactStore::gc_capped`] bounds. Lets cap-enforcement
    /// smokes and fleet-footprint gates assert `live_bytes() <= cap`
    /// without re-deriving the sum from [`ArtifactStore::ls`].
    pub fn live_bytes(&self) -> u64 {
        self.ls().iter().filter(|m| m.ok).map(|m| m.file_bytes).sum()
    }

    /// Removes every store entry (valid or not) and any now-empty store
    /// directories. Returns the number of entries removed. Only files the
    /// store recognizes as entries are touched — a mispointed root (e.g. a
    /// typo'd `--store-dir` aimed at a directory holding other data) loses
    /// nothing but actual store files.
    pub fn clear(&self) -> u64 {
        let mut removed = 0u64;
        for meta in self.ls() {
            if self.fs.remove_file(&meta.path).is_ok() {
                removed += 1;
            }
            // Kind directories are dropped only once empty.
            if let Some(dir) = meta.path.parent() {
                let _ = self.fs.remove_dir(dir);
            }
        }
        let _ = self.fs.remove_dir(&self.root);
        removed
    }

    /// The last-modified time of the entry stored under `(kind, key)`,
    /// through the [`StoreFs`] seam — so fault schedules and the
    /// degradation gate apply to stamp probes exactly as to reads. `None`
    /// when the entry is absent, the probe failed after retry handling, or
    /// the store is degraded and skipped the disk; callers polling for
    /// change (the serving layer's hot-reload watcher) must treat `None`
    /// as "no change observed", never as "entry deleted".
    ///
    /// The stamp is a cheap *change hint*: a reload triggered by it still
    /// re-reads through [`ArtifactStore::get`], whose integrity checks are
    /// what actually guard the payload.
    pub fn entry_stamp(&self, kind: &str, key: &str) -> Option<SystemTime> {
        if !self.disk_allowed() {
            return None;
        }
        let path = self.entry_path(kind, key);
        self.with_retry("modified", &path, || self.fs.modified(&path)).ok()
    }

    /// Successful reads served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Failed reads (absent, corrupt, unreadable or degraded-skipped) so
    /// far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reads that found a file but failed an integrity check.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Entries published so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Transient-fault retry attempts burned so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Filesystem operations that failed after retry handling.
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    /// Operations short-circuited (disk skipped) while degraded.
    pub fn degraded_ops(&self) -> u64 {
        self.degraded_ops.load(Ordering::Relaxed)
    }

    /// Whether the store is currently in degraded mode (disk tier
    /// considered unavailable; consumers run on their in-memory paths).
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Per-class counts of faults the backend has injected (all zero for
    /// real backends) — surfaced next to hit/miss stats so torture runs
    /// can report schedule activity.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fs.fault_counters()
    }

    /// Total faults the backend has injected (0 on [`RealFs`]).
    pub fn faults_injected(&self) -> u64 {
        self.fs.fault_counters().total()
    }

    /// Whether `path` was last modified more than `age` ago (unknown
    /// mtimes count as old, so unreadable orphans still get collected).
    fn older_than(&self, path: &Path, age: Duration) -> bool {
        match self.fs.modified(path) {
            Ok(modified) => match modified.elapsed() {
                Ok(elapsed) => elapsed > age,
                Err(_) => false, // mtime in the future: a live writer's file
            },
            Err(_) => true,
        }
    }

    fn entry_path(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join(kind).join(format!("{:016x}.json", fingerprint64(key)))
    }
}

/// Grace period under which `gc` leaves temp files alone: any live writer
/// renames its temp within milliseconds, so a minute-old temp can only be
/// a crash orphan.
pub const TMP_GC_GRACE: Duration = Duration::from_secs(60);

/// Whether a file name matches the shapes the store writes: a
/// `<16-hex-digits>.json` entry or a `.tmp-…` scratch file. `ls`/`gc`/
/// `clear` touch nothing else, so a mispointed root loses no foreign
/// files.
fn is_store_file_name(name: &str) -> bool {
    if name.starts_with(".tmp-") {
        return true;
    }
    match name.strip_suffix(".json") {
        Some(stem) => stem.len() == 16 && stem.bytes().all(|b| b.is_ascii_hexdigit()),
        None => false,
    }
}

/// Parsed entry header (the first line of an entry file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Header {
    schema: u32,
    kind: String,
    key: String,
    fingerprint: u64,
    payload_len: u64,
    payload_hash: u64,
}

#[derive(Debug)]
enum EntryError {
    /// No parseable header (carries one if the header line parsed but the
    /// entry failed integrity anyway, so `ls` can still show the key).
    Header(Option<Header>),
    /// Valid entry for a different key with the same fingerprint.
    ForeignKey,
}

fn encode_entry(kind: &str, key: &str, payload: &str) -> Result<String, StoreError> {
    let header = Header {
        schema: SCHEMA_VERSION,
        kind: kind.to_string(),
        key: key.to_string(),
        fingerprint: fingerprint64(key),
        payload_len: payload.len() as u64,
        payload_hash: fingerprint64(payload),
    };
    let mut out = serde_json::to_string(&header)
        .map_err(|e| StoreError::Encode { what: e.to_string() })?;
    out.push('\n');
    out.push_str(payload);
    Ok(out)
}

/// Full verification against an expected `(kind, key)`: returns the payload
/// slice on success.
fn verify_entry<'a>(bytes: &'a [u8], kind: &str, key: &str) -> Result<&'a str, EntryError> {
    let (header, payload) = split_entry(bytes)?;
    if header.key != key {
        return Err(EntryError::ForeignKey);
    }
    if header.kind != kind || header.fingerprint != fingerprint64(key) {
        return Err(EntryError::Header(Some(header)));
    }
    Ok(payload)
}

/// Self-consistency verification (no expected key): used by `ls`/`gc`.
fn inspect_entry(bytes: &[u8], kind: &str) -> Result<String, EntryError> {
    let (header, _) = split_entry(bytes)?;
    if header.kind != kind || header.fingerprint != fingerprint64(&header.key) {
        return Err(EntryError::Header(Some(header)));
    }
    Ok(header.key)
}

/// Shared integrity core: header parse, schema version, payload length and
/// payload hash.
fn split_entry(bytes: &[u8]) -> Result<(Header, &str), EntryError> {
    let text = std::str::from_utf8(bytes).map_err(|_| EntryError::Header(None))?;
    let (header_line, payload) = text.split_once('\n').ok_or(EntryError::Header(None))?;
    let header: Header =
        serde_json::from_str(header_line).map_err(|_| EntryError::Header(None))?;
    if header.schema != SCHEMA_VERSION
        || header.payload_len != payload.len() as u64
        || header.payload_hash != fingerprint64(payload)
    {
        return Err(EntryError::Header(Some(header)));
    }
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// A scratch store in a unique temp directory, removed on drop.
    struct Scratch(ArtifactStore);

    impl Scratch {
        fn new(tag: &str) -> Self {
            Self(ArtifactStore::open(Self::dir(tag)))
        }

        fn with_fs(tag: &str, fs: impl StoreFs + 'static) -> Self {
            Self(ArtifactStore::open_with_fs(Self::dir(tag), fs))
        }

        fn dir(tag: &str) -> PathBuf {
            let dir = std::env::temp_dir()
                .join(format!("wade-store-unit-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            dir
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(self.0.root());
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let s = Scratch::new("roundtrip");
        let value: Vec<f64> = vec![0.1, 1.0 / 3.0, 2.283e-7, -0.0, f64::MIN_POSITIVE];
        s.0.put("vec", "k1", &value).unwrap();
        let back: Vec<f64> = s.0.get("vec", "k1").expect("hit");
        assert_eq!(value.len(), back.len());
        for (a, b) in value.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f64 must round-trip exactly");
        }
        assert_eq!(s.0.hits(), 1);
        assert_eq!(s.0.writes(), 1);
    }

    #[test]
    fn absent_entry_is_a_plain_miss() {
        let s = Scratch::new("absent");
        assert!(s.0.get::<u64>("kind", "nope").is_none());
        assert_eq!(s.0.misses(), 1);
        assert_eq!(s.0.corrupt(), 0);
        assert_eq!(s.0.io_errors(), 0, "an absent file is not an I/O failure");
        assert!(!s.0.degraded());
    }

    #[test]
    fn keys_and_kinds_are_separated() {
        let s = Scratch::new("keys");
        s.0.put("a", "k", &1u64).unwrap();
        s.0.put("b", "k", &2u64).unwrap();
        s.0.put("a", "k2", &3u64).unwrap();
        assert_eq!(s.0.get::<u64>("a", "k"), Some(1));
        assert_eq!(s.0.get::<u64>("b", "k"), Some(2));
        assert_eq!(s.0.get::<u64>("a", "k2"), Some(3));
    }

    #[test]
    fn prefix_enumeration_is_kind_scoped_sorted_and_skips_corruption() {
        let s = Scratch::new("prefix");
        s.0.put("slice", "run|shard=0|epoch=1", &1u64).unwrap();
        s.0.put("slice", "run|shard=0|epoch=0", &0u64).unwrap();
        s.0.put("slice", "run|shard=1|epoch=0", &2u64).unwrap();
        s.0.put("slice", "other|shard=0|epoch=0", &3u64).unwrap();
        s.0.put("model", "run|shard=0|epoch=9", &4u64).unwrap();
        assert_eq!(
            s.0.keys_with_prefix("slice", "run|shard=0|"),
            vec!["run|shard=0|epoch=0".to_string(), "run|shard=0|epoch=1".to_string()],
        );
        assert_eq!(s.0.keys_with_prefix("slice", "run|").len(), 3);
        assert_eq!(s.0.keys_with_prefix("slice", "absent|"), Vec::<String>::new());
        assert_eq!(s.0.keys_with_prefix("nokind", "run|"), Vec::<String>::new());
        // A corrupted entry falls out of the enumeration instead of
        // surfacing a half-readable key.
        let path = s.0.put("slice", "run|shard=2|epoch=0", &5u64).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert_eq!(s.0.keys_with_prefix("slice", "run|").len(), 3);
    }

    #[test]
    fn truncated_entry_is_corrupt_and_rewritable() {
        let s = Scratch::new("trunc");
        let path = s.0.put("k", "key", &vec![1u64, 2, 3]).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert!(s.0.get::<Vec<u64>>("k", "key").is_none(), "truncation must be a miss");
        assert_eq!(s.0.corrupt(), 1);
        // try_get surfaces the structured reason.
        match s.0.try_get::<Vec<u64>>("k", "key") {
            Err(StoreError::Corrupt { reason: CorruptReason::Integrity, .. }) => {}
            other => panic!("expected Corrupt/Integrity, got {other:?}"),
        }
        // The next put atomically replaces the poisoned file.
        s.0.put("k", "key", &vec![1u64, 2, 3]).unwrap();
        assert_eq!(s.0.get::<Vec<u64>>("k", "key"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn garbage_and_foreign_version_are_corrupt() {
        let s = Scratch::new("garbage");
        let path = s.0.put("k", "key", &7u64).unwrap();
        fs::write(&path, b"not an entry at all").unwrap();
        assert!(s.0.get::<u64>("k", "key").is_none());

        // Foreign schema version: rebuild a valid entry, then bump the
        // version field in place.
        s.0.put("k", "key", &7u64).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let foreign = text.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(text, foreign, "version must appear in the header");
        fs::write(&path, foreign).unwrap();
        assert!(s.0.get::<u64>("k", "key").is_none(), "foreign version must be a miss");
        assert!(s.0.corrupt() >= 2);
    }

    #[test]
    fn garbled_payload_same_length_is_corrupt() {
        let s = Scratch::new("garble");
        let path = s.0.put("k", "key", &vec![5u64; 4]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01; // same length, different content
        fs::write(&path, &bytes).unwrap();
        assert!(s.0.get::<Vec<u64>>("k", "key").is_none(), "payload hash must catch this");
        assert_eq!(s.0.corrupt(), 1);
    }

    #[test]
    fn colliding_fingerprint_reads_as_plain_miss() {
        let s = Scratch::new("collide");
        let path = s.0.put("k", "key-a", &1u64).unwrap();
        // Forge a fingerprint collision: a fully valid entry for a
        // different key placed at key-a's path.
        let forged = encode_entry("k", "key-b", "2").unwrap();
        fs::write(&path, forged).unwrap();
        assert!(s.0.get::<u64>("k", "key-a").is_none());
        assert_eq!(s.0.corrupt(), 0, "a valid foreign entry is not corruption");
    }

    #[test]
    fn get_or_put_computes_once() {
        let s = Scratch::new("get-or-put");
        let mut calls = 0;
        let a = s.0.get_or_put("k", "key", || {
            calls += 1;
            42u64
        });
        let b = s.0.get_or_put("k", "key", || {
            calls += 1;
            999u64
        });
        assert_eq!((a, b, calls), (42, 42, 1));
    }

    #[test]
    fn ls_gc_clear_lifecycle() {
        let s = Scratch::new("lifecycle");
        s.0.put("alpha", "k1", &1u64).unwrap();
        s.0.put("beta", "k2", &2u64).unwrap();
        let poisoned = s.0.put("beta", "k3", &3u64).unwrap();
        fs::write(&poisoned, b"junk").unwrap();
        // A foreign file inside a kind directory (a mispointed root):
        // never listed, never gc'd, never cleared.
        let foreign = s.0.root().join("beta").join("notes.txt");
        fs::write(&foreign, b"precious user data").unwrap();

        let ls = s.0.ls();
        assert_eq!(ls.len(), 3, "foreign file must not be listed");
        assert_eq!(ls.iter().filter(|m| m.ok).count(), 2);
        assert!(ls.iter().any(|m| m.key.as_deref() == Some("k1") && m.kind == "alpha"));

        let gc = s.0.gc();
        assert_eq!((gc.kept, gc.removed, gc.evicted), (2, 1, 0));
        assert!(gc.bytes_kept > 0);
        assert_eq!(s.0.ls().len(), 2);
        assert!(foreign.exists(), "gc must not touch foreign files");

        assert_eq!(s.0.clear(), 2);
        assert!(s.0.ls().is_empty());
        assert!(foreign.exists(), "clear must not touch foreign files");
        assert!(s.0.root().exists(), "root with foreign content must survive clear");
    }

    #[test]
    fn temp_files_are_never_ok_and_gc_respects_the_grace_period() {
        let s = Scratch::new("tmp-orphans");
        s.0.put("k", "key", &1u64).unwrap();
        // A crash-orphaned temp with fully valid entry content: written
        // but never renamed, so `get` can never serve it.
        let orphan = s.0.root().join("k").join(".tmp-deadbeef-1-0");
        fs::write(&orphan, encode_entry("k", "other-key", "2").unwrap()).unwrap();

        let ls = s.0.ls();
        assert_eq!(ls.len(), 2);
        assert!(
            ls.iter().all(|m| m.ok == (m.path != orphan)),
            "temp files must never be ok, however valid their content"
        );

        // Fresh temp: inside the grace period, a concurrent writer may be
        // about to rename it — gc must leave it alone.
        let gc = s.0.gc();
        assert_eq!((gc.kept, gc.removed), (2, 0));
        assert!(orphan.exists());

        // Age it past the grace period: now it is a crash orphan.
        let old = SystemTime::now() - (TMP_GC_GRACE + TMP_GC_GRACE);
        let file = fs::File::options().write(true).open(&orphan).unwrap();
        file.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
        drop(file);
        let gc = s.0.gc();
        assert_eq!((gc.kept, gc.removed), (1, 1));
        assert!(!orphan.exists());
        assert_eq!(s.0.get::<u64>("k", "key"), Some(1), "real entry untouched");
    }

    #[test]
    fn lru_cap_evicts_oldest_accessed_first() {
        let s = Scratch::new("lru");
        let old = s.0.put("k", "old", &vec![1u64; 64]).unwrap();
        let mid = s.0.put("k", "mid", &vec![2u64; 64]).unwrap();
        let new = s.0.put("k", "new", &vec![3u64; 64]).unwrap();
        // Sizes via metadata — an ls() here would *read* the entries and
        // bump the very atimes this test stamps next.
        let one = fs::metadata(&old).unwrap().len();
        let total: u64 = [&old, &mid, &new]
            .iter()
            .map(|p| fs::metadata(p).unwrap().len())
            .sum();
        // Stamp distinct access times so the LRU order is unambiguous.
        let now = SystemTime::now();
        for (path, age_s) in [(&old, 3000u64), (&mid, 2000), (&new, 1000)] {
            let f = fs::File::options().write(true).open(path).unwrap();
            f.set_times(fs::FileTimes::new().set_accessed(now - Duration::from_secs(age_s)))
                .unwrap();
        }

        // Cap that fits two entries: exactly the oldest-accessed goes.
        let gc = s.0.gc_capped(Some(total - 1));
        assert_eq!((gc.kept, gc.removed, gc.evicted), (2, 0, 1));
        assert!(!old.exists(), "oldest-accessed entry must be evicted first");
        assert!(mid.exists() && new.exists());
        assert_eq!(gc.bytes_kept, total - one);

        // Cap of zero: everything valid is evicted; the store still works.
        let gc = s.0.gc_capped(Some(0));
        assert_eq!((gc.kept, gc.evicted, gc.bytes_kept), (0, 2, 0));
        assert!(s.0.get::<Vec<u64>>("k", "new").is_none());
        s.0.put("k", "new", &vec![3u64; 64]).unwrap();
        assert_eq!(s.0.get::<Vec<u64>>("k", "new"), Some(vec![3; 64]));

        // No cap: pure corruption gc, nothing evicted.
        let gc = s.0.gc_capped(None);
        assert_eq!((gc.kept, gc.evicted), (1, 0));
    }

    #[test]
    fn transient_faults_are_retried_and_counted() {
        // Every injected fault is transient, so with a modest rate the
        // retry budget absorbs most of them; whatever still fails must
        // never corrupt a read (miss or exact value only).
        let s = Scratch::with_fs(
            "retry",
            FaultyFs::new(RealFs, FaultPlan::transient_only(17, 0.3)),
        );
        let mut stored = 0u32;
        for i in 0..30u64 {
            if s.0.put("k", &format!("key{i}"), &(i * 7)).is_ok() {
                stored += 1;
            }
        }
        assert!(stored > 0, "retries must save some puts at a 30% rate");
        assert!(s.0.retries() > 0, "a 30% transient schedule must trigger retries");
        for i in 0..30u64 {
            if let Some(v) = s.0.get::<u64>("k", &format!("key{i}")) {
                assert_eq!(v, i * 7, "a hit must be the exact value");
            }
        }
        assert!(s.0.faults_injected() > 0);
    }

    /// A backend whose first `fail_first` operations fail with `EACCES`,
    /// then heals — deterministic trip-and-recover.
    #[derive(Debug)]
    struct HealingFs {
        inner: RealFs,
        remaining: AtomicU64,
    }

    impl HealingFs {
        fn failing(n: u64) -> Self {
            Self { inner: RealFs, remaining: AtomicU64::new(n) }
        }

        /// Consumes one tick of sickness; `true` while the disk is down.
        fn sick(&self) -> bool {
            self.remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok()
        }

        fn down() -> io::Error {
            io::Error::new(io::ErrorKind::PermissionDenied, "sick disk")
        }
    }

    impl StoreFs for HealingFs {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            if self.sick() {
                return Err(Self::down());
            }
            self.inner.read(path)
        }

        fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            if self.sick() {
                return Err(Self::down());
            }
            self.inner.write(path, data)
        }

        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }

        fn remove_file(&self, path: &Path) -> io::Result<()> {
            self.inner.remove_file(path)
        }

        fn remove_dir(&self, path: &Path) -> io::Result<()> {
            self.inner.remove_dir(path)
        }

        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            if self.sick() {
                return Err(Self::down());
            }
            self.inner.create_dir_all(path)
        }

        fn read_dir(&self, path: &Path) -> io::Result<Vec<DirEntryInfo>> {
            self.inner.read_dir(path)
        }

        fn modified(&self, path: &Path) -> io::Result<SystemTime> {
            self.inner.modified(path)
        }

        fn accessed(&self, path: &Path) -> io::Result<SystemTime> {
            self.inner.accessed(path)
        }
    }

    #[test]
    fn degradation_trips_then_probe_recovers() {
        let s = Scratch::with_fs("degrade", HealingFs::failing(DEGRADE_AFTER));
        // Persistent failures fail fast (no retry burn) and trip the gate.
        for i in 0..DEGRADE_AFTER {
            assert!(s.0.get::<u64>("k", &format!("k{i}")).is_none());
        }
        assert!(s.0.degraded(), "DEGRADE_AFTER hard failures must trip degraded mode");
        assert_eq!(s.0.io_errors(), DEGRADE_AFTER);

        // While degraded most operations skip the disk entirely…
        let before = s.0.degraded_ops();
        let mut probes = 0;
        for i in 0..(2 * PROBE_EVERY) {
            match s.0.try_get::<u64>("k", &format!("skip{i}")) {
                Err(StoreError::Degraded { .. }) => {}
                Ok(None) => probes += 1, // a probe reached the healed disk
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(s.0.degraded_ops() > before, "skipped ops must be counted");
        assert!(probes >= 1, "the probe gate must let some operations through");
        // …and the first successful probe rejoined the tier.
        assert!(!s.0.degraded(), "a healed disk must clear degraded mode");
        s.0.put("k", "after", &9u64).unwrap();
        assert_eq!(s.0.get::<u64>("k", "after"), Some(9));
    }

    #[test]
    fn degraded_put_reports_structured_error() {
        let s = Scratch::with_fs("degraded-put", HealingFs::failing(u64::MAX / 2));
        for i in 0..DEGRADE_AFTER {
            let _ = s.0.put("k", &format!("k{i}"), &1u64);
        }
        assert!(s.0.degraded());
        let mut saw_degraded = false;
        for i in 0..PROBE_EVERY {
            if matches!(
                s.0.put("k", &format!("later{i}"), &1u64),
                Err(StoreError::Degraded { op: "put" })
            ) {
                saw_degraded = true;
            }
        }
        assert!(saw_degraded, "degraded puts must report StoreError::Degraded");
    }

    #[test]
    fn entry_stamp_tracks_rewrites_and_absence() {
        let s = Scratch::new("stamp");
        assert!(s.0.entry_stamp("k", "key").is_none(), "absent entry has no stamp");
        let path = s.0.put("k", "key", &1u64).unwrap();
        let first = s.0.entry_stamp("k", "key").expect("stamp after put");
        // Rewrites move the stamp (backdate the file rather than sleeping
        // across mtime granularity).
        let old = first - Duration::from_secs(10);
        let f = fs::File::options().write(true).open(&path).unwrap();
        f.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
        drop(f);
        let backdated = s.0.entry_stamp("k", "key").expect("stamp after backdate");
        assert!(backdated < first);
        s.0.put("k", "key", &2u64).unwrap();
        let rewritten = s.0.entry_stamp("k", "key").expect("stamp after rewrite");
        assert!(rewritten > backdated, "a rewrite must move the stamp forward");
    }

    #[test]
    fn entry_stamp_respects_the_degradation_gate() {
        let s = Scratch::with_fs("stamp-degraded", HealingFs::failing(u64::MAX / 2));
        for i in 0..DEGRADE_AFTER {
            let _ = s.0.get::<u64>("k", &format!("k{i}"));
        }
        assert!(s.0.degraded());
        let before = s.0.degraded_ops();
        for _ in 0..4 {
            assert!(s.0.entry_stamp("k", "key").is_none());
        }
        assert!(s.0.degraded_ops() > before, "degraded stamp probes must be gated");
    }

    #[test]
    fn salted_fingerprint_is_stable_and_domain_separated() {
        let a = fingerprint64_salted("salt|", "payload");
        assert_eq!(a, fingerprint64_salted("salt|", "payload"));
        assert_ne!(a, fingerprint64("payload"));
        assert_ne!(a, fingerprint64_salted("other|", "payload"));
    }

    #[test]
    fn resolve_dir_precedence() {
        // Explicit beats everything.
        assert_eq!(resolve_dir(Some("/x/y")), PathBuf::from("/x/y"));
        // Env/default branch, asserted against the documented expectation
        // computed from the same process state (env mutation in tests
        // would race other tests, so the two env cases share one assert).
        let expected = match std::env::var(STORE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
            _ => default_dir(),
        };
        assert_eq!(resolve_dir(None), expected);
    }
}
