//! Disk-backed, fingerprint-keyed artifact store — the durable tier behind
//! every caching layer in the workspace.
//!
//! Field-deployment studies of DRAM failure prediction treat extracted
//! feature sets and trained models as persistent, versioned artifacts
//! shared across runs; this crate is that store for WADE. The three
//! in-process caches (the profiling memo, the campaign-data disk cache and
//! the trained-fold-model memo) are thin views over one [`ArtifactStore`],
//! so repeated invocations, CI and figure binaries pay ~0 for work another
//! process already did. The contract (normative; ARCHITECTURE.md §11
//! documents the layout):
//!
//! * **Content is pure.** Every artifact is a pure function of its key; a
//!   warm read is *byte-identical* to recomputing (the vendored
//!   `serde_json` round-trips `f64` exactly), so the store is invisible to
//!   every consumer, including seeded golden tests.
//! * **Keys carry the determinism fingerprint.** Anything that would
//!   re-manufacture the artifact — seeds, grids, scales, SoC/device
//!   fingerprints, trainer configs — is folded into the canonical key
//!   string. A key mismatch is a miss, never a wrong answer.
//! * **Corruption is a miss.** Entries embed a schema version, the full
//!   key, the key fingerprint, and the payload's length and hash; a
//!   truncated, garbled or foreign-version file fails the checks, counts as
//!   [`ArtifactStore::corrupt`], and is atomically rewritten by the next
//!   [`ArtifactStore::put`].
//! * **Writes are atomic.** Payloads land in a temp file in the target
//!   directory and are renamed into place, so a crashed or concurrent
//!   writer can never publish a half-written entry.
//!
//! # Entry format
//!
//! One artifact per file, `<root>/<kind>/<fingerprint as hex>.json`:
//!
//! ```text
//! {"schema":1,"kind":"profile","key":"…","fingerprint":…,"payload_len":…,"payload_hash":…}
//! <payload JSON, exactly payload_len bytes>
//! ```
//!
//! The header is the first line; the payload is everything after the first
//! newline. `payload_len` makes truncation detectable without parsing,
//! `payload_hash` (FxHash64) catches in-place garbling, and the embedded
//! `key` string guards against fingerprint collisions mapping two keys to
//! one file (the colliding entry reads as a miss and is overwritten).

#![deny(missing_docs)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

/// On-disk schema version. Bump when the entry format changes; entries with
/// any other version read as misses (and `gc` removes them).
pub const SCHEMA_VERSION: u32 = 1;

/// Environment variable overriding the default store directory.
pub const STORE_DIR_ENV: &str = "WADE_STORE_DIR";

/// The default store directory when neither `--store-dir` nor
/// [`STORE_DIR_ENV`] is given: `<CARGO_TARGET_DIR|target>/wade-store`.
pub fn default_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("wade-store")
}

/// Resolves the store directory with the standard precedence:
/// explicit argument (e.g. `--store-dir`) > [`STORE_DIR_ENV`] >
/// [`default_dir`].
pub fn resolve_dir(explicit: Option<&str>) -> PathBuf {
    if let Some(dir) = explicit {
        return PathBuf::from(dir);
    }
    match std::env::var(STORE_DIR_ENV) {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => default_dir(),
    }
}

/// The process-wide store, if one has been installed (figure binaries
/// install one at startup; libraries and tests that never install one run
/// purely in-process, exactly as before the store existed).
pub fn global() -> Option<Arc<ArtifactStore>> {
    global_slot().get().cloned()
}

/// Installs `store` as the process-wide store consulted by [`global`].
/// The first installation wins (the registry is a `OnceLock`); the
/// installed store is returned either way.
pub fn install_global(store: Arc<ArtifactStore>) -> Arc<ArtifactStore> {
    let _ = global_slot().set(store);
    global_slot().get().expect("just installed").clone()
}

fn global_slot() -> &'static OnceLock<Arc<ArtifactStore>> {
    static GLOBAL: OnceLock<Arc<ArtifactStore>> = OnceLock::new();
    &GLOBAL
}

/// Order-stable 64-bit fingerprint of a canonical key string (FxHash64).
pub fn fingerprint64(key: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = rustc_hash::FxHasher::default();
    hasher.write(key.as_bytes());
    hasher.finish()
}

/// [`fingerprint64`] domain-separated by `salt`, fed to the hasher
/// incrementally — no salted copy of a potentially multi-megabyte payload
/// is allocated.
pub fn fingerprint64_salted(salt: &str, payload: &str) -> u64 {
    use std::hash::Hasher as _;
    let mut hasher = rustc_hash::FxHasher::default();
    hasher.write(salt.as_bytes());
    hasher.write(payload.as_bytes());
    hasher.finish()
}

/// Metadata of one store entry, as listed by [`ArtifactStore::ls`].
#[derive(Debug, Clone)]
pub struct ArtifactMeta {
    /// Artifact kind (the subdirectory).
    pub kind: String,
    /// Canonical key string, when the header parsed (`None` for corrupt
    /// entries).
    pub key: Option<String>,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Whether the entry passes every integrity check (schema version,
    /// fingerprint, payload length and hash).
    pub ok: bool,
    /// Full path of the entry.
    pub path: PathBuf,
}

/// Summary of an [`ArtifactStore::gc`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries that passed verification and were kept.
    pub kept: usize,
    /// Corrupt/foreign-version/stray entries removed.
    pub removed: usize,
}

/// A content-addressed, versioned, disk-backed artifact store (see the
/// module docs for the entry format and the determinism contract).
///
/// All operations are `&self` and thread-safe: reads race benignly with the
/// atomic rename of writes (a reader sees either the old complete entry or
/// the new complete entry, never a torn one).
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
}

impl ArtifactStore {
    /// Opens (without touching the filesystem) a store rooted at `root`.
    /// Directories are created lazily on the first write.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Reads the artifact stored under `(kind, key)`, verifying schema
    /// version, key fingerprint, payload length and payload hash. Any
    /// failure — missing file, truncation, garbling, foreign version, a
    /// fingerprint-colliding foreign key, or a payload that no longer
    /// deserializes — is a miss (corruption additionally increments
    /// [`ArtifactStore::corrupt`]).
    pub fn get<T: Deserialize>(&self, kind: &str, key: &str) -> Option<T> {
        let path = self.entry_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify_entry(&bytes, kind, key) {
            Ok(payload) => match serde_json::from_str::<T>(payload) {
                Ok(value) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Some(value)
                }
                Err(_) => self.miss_corrupt(),
            },
            // A fingerprint collision with a *valid* foreign entry is a
            // plain miss, not corruption.
            Err(EntryError::ForeignKey) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(_) => self.miss_corrupt(),
        }
    }

    fn miss_corrupt<T>(&self) -> Option<T> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Serializes `value` and atomically publishes it under `(kind, key)`,
    /// replacing any previous (or corrupt) entry.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the directory, temp file or
    /// rename fails. Callers treating the store as a best-effort cache may
    /// ignore it.
    pub fn put<T: Serialize>(&self, kind: &str, key: &str, value: &T) -> io::Result<PathBuf> {
        let payload = serde_json::to_string(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let entry = encode_entry(kind, key, &payload);
        let path = self.entry_path(kind, key);
        let dir = path.parent().expect("entry paths have a parent");
        fs::create_dir_all(dir)?;
        // Atomic publish: temp file in the same directory, then rename.
        // The nonce is drawn with fetch_add so concurrent same-key puts
        // (deterministically identical content, e.g. racing profile-cache
        // misses) can never share a temp path and truncate each other
        // mid-rename.
        static TMP_NONCE: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".tmp-{:016x}-{}-{}",
            fingerprint64(key),
            std::process::id(),
            TMP_NONCE.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp, entry.as_bytes())?;
        match fs::rename(&tmp, &path) {
            Ok(()) => {}
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }

    /// [`ArtifactStore::get`] with a compute-and-store fallback: on a miss
    /// the artifact is produced by `make`, published (best effort — an
    /// unwritable store degrades to compute-every-time, never to failure)
    /// and returned.
    pub fn get_or_put<T: Serialize + Deserialize>(
        &self,
        kind: &str,
        key: &str,
        make: impl FnOnce() -> T,
    ) -> T {
        if let Some(value) = self.get(kind, key) {
            return value;
        }
        let value = make();
        let _ = self.put(kind, key, &value);
        value
    }

    /// Lists every entry in the store (including corrupt ones, flagged
    /// `ok: false`), sorted by (kind, path) for stable output.
    pub fn ls(&self) -> Vec<ArtifactMeta> {
        let mut out = Vec::new();
        let Ok(kinds) = fs::read_dir(&self.root) else {
            return out;
        };
        for kind_entry in kinds.flatten() {
            let kind_path = kind_entry.path();
            if !kind_path.is_dir() {
                continue;
            }
            let kind = kind_entry.file_name().to_string_lossy().into_owned();
            let Ok(entries) = fs::read_dir(&kind_path) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                // Only files the store itself would have produced: a
                // mispointed root must never get foreign files listed —
                // or, through gc()/clear(), deleted.
                let name = entry.file_name().to_string_lossy().into_owned();
                if !path.is_file() || !is_store_file_name(&name) {
                    continue;
                }
                let file_bytes = entry.metadata().map(|m| m.len()).unwrap_or(0);
                // Temp files are never valid entries, even when their
                // content is self-consistent (a crash-orphaned temp was
                // fully written but never renamed — `get` can't serve it,
                // so `ok: true` would leak it past `gc` forever).
                let (key, ok) = if name.starts_with(".tmp-") {
                    (None, false)
                } else {
                    match fs::read(&path) {
                        Ok(bytes) => match inspect_entry(&bytes, &kind) {
                            Ok(key) => (Some(key), true),
                            Err(EntryError::Header(header)) => (header.map(|h| h.key), false),
                            Err(_) => (None, false),
                        },
                        Err(_) => (None, false),
                    }
                };
                out.push(ArtifactMeta { kind: kind.clone(), key, file_bytes, ok, path });
            }
        }
        out.sort_by(|a, b| (a.kind.as_str(), &a.path).cmp(&(b.kind.as_str(), &b.path)));
        out
    }

    /// Removes every store entry that fails verification (truncated,
    /// garbled, foreign schema version, crash-orphaned temp files); keeps
    /// valid entries. Files that do not match the store's own naming
    /// shapes are never touched (or listed), and temp files younger than
    /// [`TMP_GC_GRACE`] are kept — a concurrent writer may be about to
    /// rename them, and deleting an in-flight temp would make that rename
    /// fail and silently drop the artifact.
    pub fn gc(&self) -> GcReport {
        let mut report = GcReport::default();
        for meta in self.ls() {
            if meta.ok {
                report.kept += 1;
                continue;
            }
            let is_tmp = meta
                .path
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with(".tmp-"));
            if is_tmp && !older_than(&meta.path, TMP_GC_GRACE) {
                report.kept += 1;
                continue;
            }
            if fs::remove_file(&meta.path).is_ok() {
                report.removed += 1;
            }
        }
        report
    }

    /// Removes every store entry (valid or not) and any now-empty store
    /// directories. Returns the number of entries removed. Only files the
    /// store recognizes as entries are touched — a mispointed root (e.g. a
    /// typo'd `--store-dir` aimed at a directory holding other data) loses
    /// nothing but actual store files.
    pub fn clear(&self) -> u64 {
        let mut removed = 0u64;
        for meta in self.ls() {
            if fs::remove_file(&meta.path).is_ok() {
                removed += 1;
            }
            // Kind directories are dropped only once empty.
            if let Some(dir) = meta.path.parent() {
                let _ = fs::remove_dir(dir);
            }
        }
        let _ = fs::remove_dir(&self.root);
        removed
    }

    /// Successful reads served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Failed reads (absent or corrupt entries) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Reads that found a file but failed an integrity check.
    pub fn corrupt(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Entries published so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    fn entry_path(&self, kind: &str, key: &str) -> PathBuf {
        self.root.join(kind).join(format!("{:016x}.json", fingerprint64(key)))
    }
}

/// Grace period under which `gc` leaves temp files alone: any live writer
/// renames its temp within milliseconds, so a minute-old temp can only be
/// a crash orphan.
pub const TMP_GC_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

/// Whether `path` was last modified more than `age` ago (unknown mtimes
/// count as old, so unreadable orphans still get collected).
fn older_than(path: &Path, age: std::time::Duration) -> bool {
    match fs::metadata(path).and_then(|m| m.modified()) {
        Ok(modified) => match modified.elapsed() {
            Ok(elapsed) => elapsed > age,
            Err(_) => false, // mtime in the future: a live writer's file
        },
        Err(_) => true,
    }
}

/// Whether a file name matches the shapes the store writes: a
/// `<16-hex-digits>.json` entry or a `.tmp-…` scratch file. `ls`/`gc`/
/// `clear` touch nothing else, so a mispointed root loses no foreign
/// files.
fn is_store_file_name(name: &str) -> bool {
    if name.starts_with(".tmp-") {
        return true;
    }
    match name.strip_suffix(".json") {
        Some(stem) => stem.len() == 16 && stem.bytes().all(|b| b.is_ascii_hexdigit()),
        None => false,
    }
}

/// Parsed entry header (the first line of an entry file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Header {
    schema: u32,
    kind: String,
    key: String,
    fingerprint: u64,
    payload_len: u64,
    payload_hash: u64,
}

#[derive(Debug)]
enum EntryError {
    /// No parseable header (carries one if the header line parsed but the
    /// entry failed integrity anyway, so `ls` can still show the key).
    Header(Option<Header>),
    /// Valid entry for a different key with the same fingerprint.
    ForeignKey,
}

fn encode_entry(kind: &str, key: &str, payload: &str) -> String {
    let header = Header {
        schema: SCHEMA_VERSION,
        kind: kind.to_string(),
        key: key.to_string(),
        fingerprint: fingerprint64(key),
        payload_len: payload.len() as u64,
        payload_hash: fingerprint64(payload),
    };
    let mut out = serde_json::to_string(&header).expect("header serializes");
    out.push('\n');
    out.push_str(payload);
    out
}

/// Full verification against an expected `(kind, key)`: returns the payload
/// slice on success.
fn verify_entry<'a>(bytes: &'a [u8], kind: &str, key: &str) -> Result<&'a str, EntryError> {
    let (header, payload) = split_entry(bytes)?;
    if header.key != key {
        return Err(EntryError::ForeignKey);
    }
    if header.kind != kind || header.fingerprint != fingerprint64(key) {
        return Err(EntryError::Header(Some(header)));
    }
    Ok(payload)
}

/// Self-consistency verification (no expected key): used by `ls`/`gc`.
fn inspect_entry(bytes: &[u8], kind: &str) -> Result<String, EntryError> {
    let (header, _) = split_entry(bytes)?;
    if header.kind != kind || header.fingerprint != fingerprint64(&header.key) {
        return Err(EntryError::Header(Some(header)));
    }
    Ok(header.key)
}

/// Shared integrity core: header parse, schema version, payload length and
/// payload hash.
fn split_entry(bytes: &[u8]) -> Result<(Header, &str), EntryError> {
    let text = std::str::from_utf8(bytes).map_err(|_| EntryError::Header(None))?;
    let (header_line, payload) = text.split_once('\n').ok_or(EntryError::Header(None))?;
    let header: Header =
        serde_json::from_str(header_line).map_err(|_| EntryError::Header(None))?;
    if header.schema != SCHEMA_VERSION
        || header.payload_len != payload.len() as u64
        || header.payload_hash != fingerprint64(payload)
    {
        return Err(EntryError::Header(Some(header)));
    }
    Ok((header, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch store in a unique temp directory, removed on drop.
    struct Scratch(ArtifactStore);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("wade-store-unit-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            Self(ArtifactStore::open(dir))
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(self.0.root());
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let s = Scratch::new("roundtrip");
        let value: Vec<f64> = vec![0.1, 1.0 / 3.0, 2.283e-7, -0.0, f64::MIN_POSITIVE];
        s.0.put("vec", "k1", &value).unwrap();
        let back: Vec<f64> = s.0.get("vec", "k1").expect("hit");
        assert_eq!(value.len(), back.len());
        for (a, b) in value.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "f64 must round-trip exactly");
        }
        assert_eq!(s.0.hits(), 1);
        assert_eq!(s.0.writes(), 1);
    }

    #[test]
    fn absent_entry_is_a_plain_miss() {
        let s = Scratch::new("absent");
        assert!(s.0.get::<u64>("kind", "nope").is_none());
        assert_eq!(s.0.misses(), 1);
        assert_eq!(s.0.corrupt(), 0);
    }

    #[test]
    fn keys_and_kinds_are_separated() {
        let s = Scratch::new("keys");
        s.0.put("a", "k", &1u64).unwrap();
        s.0.put("b", "k", &2u64).unwrap();
        s.0.put("a", "k2", &3u64).unwrap();
        assert_eq!(s.0.get::<u64>("a", "k"), Some(1));
        assert_eq!(s.0.get::<u64>("b", "k"), Some(2));
        assert_eq!(s.0.get::<u64>("a", "k2"), Some(3));
    }

    #[test]
    fn truncated_entry_is_corrupt_and_rewritable() {
        let s = Scratch::new("trunc");
        let path = s.0.put("k", "key", &vec![1u64, 2, 3]).unwrap();
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 2]).unwrap();
        assert!(s.0.get::<Vec<u64>>("k", "key").is_none(), "truncation must be a miss");
        assert_eq!(s.0.corrupt(), 1);
        // The next put atomically replaces the poisoned file.
        s.0.put("k", "key", &vec![1u64, 2, 3]).unwrap();
        assert_eq!(s.0.get::<Vec<u64>>("k", "key"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn garbage_and_foreign_version_are_corrupt() {
        let s = Scratch::new("garbage");
        let path = s.0.put("k", "key", &7u64).unwrap();
        fs::write(&path, b"not an entry at all").unwrap();
        assert!(s.0.get::<u64>("k", "key").is_none());

        // Foreign schema version: rebuild a valid entry, then bump the
        // version field in place.
        s.0.put("k", "key", &7u64).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let foreign = text.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
            1,
        );
        assert_ne!(text, foreign, "version must appear in the header");
        fs::write(&path, foreign).unwrap();
        assert!(s.0.get::<u64>("k", "key").is_none(), "foreign version must be a miss");
        assert!(s.0.corrupt() >= 2);
    }

    #[test]
    fn garbled_payload_same_length_is_corrupt() {
        let s = Scratch::new("garble");
        let path = s.0.put("k", "key", &vec![5u64; 4]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01; // same length, different content
        fs::write(&path, &bytes).unwrap();
        assert!(s.0.get::<Vec<u64>>("k", "key").is_none(), "payload hash must catch this");
        assert_eq!(s.0.corrupt(), 1);
    }

    #[test]
    fn colliding_fingerprint_reads_as_plain_miss() {
        let s = Scratch::new("collide");
        let path = s.0.put("k", "key-a", &1u64).unwrap();
        // Forge a fingerprint collision: a fully valid entry for a
        // different key placed at key-a's path.
        let forged = encode_entry("k", "key-b", "2");
        fs::write(&path, forged).unwrap();
        assert!(s.0.get::<u64>("k", "key-a").is_none());
        assert_eq!(s.0.corrupt(), 0, "a valid foreign entry is not corruption");
    }

    #[test]
    fn get_or_put_computes_once() {
        let s = Scratch::new("get-or-put");
        let mut calls = 0;
        let a = s.0.get_or_put("k", "key", || {
            calls += 1;
            42u64
        });
        let b = s.0.get_or_put("k", "key", || {
            calls += 1;
            999u64
        });
        assert_eq!((a, b, calls), (42, 42, 1));
    }

    #[test]
    fn ls_gc_clear_lifecycle() {
        let s = Scratch::new("lifecycle");
        s.0.put("alpha", "k1", &1u64).unwrap();
        s.0.put("beta", "k2", &2u64).unwrap();
        let poisoned = s.0.put("beta", "k3", &3u64).unwrap();
        fs::write(&poisoned, b"junk").unwrap();
        // A foreign file inside a kind directory (a mispointed root):
        // never listed, never gc'd, never cleared.
        let foreign = s.0.root().join("beta").join("notes.txt");
        fs::write(&foreign, b"precious user data").unwrap();

        let ls = s.0.ls();
        assert_eq!(ls.len(), 3, "foreign file must not be listed");
        assert_eq!(ls.iter().filter(|m| m.ok).count(), 2);
        assert!(ls.iter().any(|m| m.key.as_deref() == Some("k1") && m.kind == "alpha"));

        let gc = s.0.gc();
        assert_eq!(gc, GcReport { kept: 2, removed: 1 });
        assert_eq!(s.0.ls().len(), 2);
        assert!(foreign.exists(), "gc must not touch foreign files");

        assert_eq!(s.0.clear(), 2);
        assert!(s.0.ls().is_empty());
        assert!(foreign.exists(), "clear must not touch foreign files");
        assert!(s.0.root().exists(), "root with foreign content must survive clear");
    }

    #[test]
    fn temp_files_are_never_ok_and_gc_respects_the_grace_period() {
        let s = Scratch::new("tmp-orphans");
        s.0.put("k", "key", &1u64).unwrap();
        // A crash-orphaned temp with fully valid entry content: written
        // but never renamed, so `get` can never serve it.
        let orphan = s.0.root().join("k").join(".tmp-deadbeef-1-0");
        fs::write(&orphan, encode_entry("k", "other-key", "2")).unwrap();

        let ls = s.0.ls();
        assert_eq!(ls.len(), 2);
        assert!(
            ls.iter().all(|m| m.ok == (m.path != orphan)),
            "temp files must never be ok, however valid their content"
        );

        // Fresh temp: inside the grace period, a concurrent writer may be
        // about to rename it — gc must leave it alone.
        assert_eq!(s.0.gc(), GcReport { kept: 2, removed: 0 });
        assert!(orphan.exists());

        // Age it past the grace period: now it is a crash orphan.
        let old = std::time::SystemTime::now() - (TMP_GC_GRACE + TMP_GC_GRACE);
        let file = fs::File::options().write(true).open(&orphan).unwrap();
        file.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
        drop(file);
        assert_eq!(s.0.gc(), GcReport { kept: 1, removed: 1 });
        assert!(!orphan.exists());
        assert_eq!(s.0.get::<u64>("k", "key"), Some(1), "real entry untouched");
    }

    #[test]
    fn salted_fingerprint_is_stable_and_domain_separated() {
        let a = fingerprint64_salted("salt|", "payload");
        assert_eq!(a, fingerprint64_salted("salt|", "payload"));
        assert_ne!(a, fingerprint64("payload"));
        assert_ne!(a, fingerprint64_salted("other|", "payload"));
    }

    #[test]
    fn resolve_dir_precedence() {
        // Explicit beats everything.
        assert_eq!(resolve_dir(Some("/x/y")), PathBuf::from("/x/y"));
        // Env/default branch, asserted against the documented expectation
        // computed from the same process state (env mutation in tests
        // would race other tests, so the two env cases share one assert).
        let expected = match std::env::var(STORE_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
            _ => default_dir(),
        };
        assert_eq!(resolve_dir(None), expected);
    }
}
