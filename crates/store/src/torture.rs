//! Randomized fault-schedule torture harness for the artifact store.
//!
//! Drives a live [`ArtifactStore`] (backed by [`FaultyFs`] at a chosen
//! fault rate) with a seed-derived mix of puts, reads, gc passes and
//! listings, and checks the **no-corruption invariant** on every read:
//! an artifact is either fully readable with exactly the bytes some
//! writer published, or a miss — never a wrong value. Payloads are
//! self-describing (the key index and a version are embedded, and the
//! payload body is a pure function of both), so any garbled-but-parseable
//! read is detected without tracking writer history.
//!
//! The harness backs `bench store torture --seed N --ops M` and the
//! `tests/fault_injection.rs` chaos suite; CI pins a seed so a regression
//! in the store's integrity checking fails reproducibly.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::{ArtifactStore, FaultCounters, FaultPlan, FaultRng, FaultyFs, RealFs, mix64};

/// Artifact kind used by torture runs (isolated from real artifacts).
pub const TORTURE_KIND: &str = "torture";

/// Number of distinct keys the op mix cycles over — small enough that
/// reads regularly race writes on the same key.
pub const TORTURE_KEYS: u64 = 64;

/// Parameters of one torture run.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Seed of both the op mix and the fault schedule.
    pub seed: u64,
    /// Total operations across all threads.
    pub ops: u64,
    /// Worker threads (1 = fully deterministic op order).
    pub threads: usize,
    /// Per-class fault probability fed to [`FaultPlan::uniform`]
    /// (0.0 = healthy run).
    pub fault_rate: f64,
}

impl Default for TortureConfig {
    fn default() -> Self {
        Self { seed: 1, ops: 2000, threads: 1, fault_rate: 0.10 }
    }
}

/// Outcome of a torture run. `wrong_reads == 0` is the invariant; every
/// other field is observability.
#[derive(Debug, Clone, Default)]
pub struct TortureReport {
    /// Operations actually issued.
    pub ops: u64,
    /// Put attempts (successful or rejected).
    pub puts: u64,
    /// Puts rejected with a [`crate::StoreError`].
    pub put_errors: u64,
    /// Get attempts.
    pub gets: u64,
    /// Gets that returned a value.
    pub hits: u64,
    /// Gets that returned a miss.
    pub misses: u64,
    /// **Invariant violations**: a get returned a value that no writer
    /// ever published for that key.
    pub wrong_reads: u64,
    /// gc passes issued.
    pub gcs: u64,
    /// ls passes issued.
    pub lss: u64,
    /// Entries found corrupt (and thus read as misses) by the store.
    pub corrupt: u64,
    /// Transient-fault retries burned by the store.
    pub retries: u64,
    /// Operations that failed after retry handling.
    pub io_errors: u64,
    /// Operations skipped while the store was degraded.
    pub degraded_ops: u64,
    /// Whether the store ended the run degraded.
    pub degraded: bool,
    /// Faults the schedule injected, by class.
    pub faults: FaultCounters,
}

impl TortureReport {
    /// Whether the run upheld the no-corruption invariant.
    pub fn ok(&self) -> bool {
        self.wrong_reads == 0
    }
}

/// A self-describing torture payload: `blob` is a pure function of
/// `(key_index, version)`, so a reader can validate any value it gets
/// without knowing which writer won.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TorturePayload {
    /// Which key this payload was written under.
    pub key_index: u64,
    /// Writer-chosen version (any u64).
    pub version: u64,
    /// Deterministic body derived from the two fields above.
    pub blob: Vec<u64>,
}

impl TorturePayload {
    /// The unique valid payload for `(key_index, version)`.
    pub fn expected(key_index: u64, version: u64) -> Self {
        let mut rng = FaultRng::seed_from_u64(mix64(key_index ^ 0x70AD, version));
        let blob = (0..16).map(|_| rng.next_u64()).collect();
        Self { key_index, version, blob }
    }

    /// Whether this value is internally consistent and belongs to
    /// `expected_key` — the wrong-read predicate.
    pub fn is_valid_for(&self, expected_key: u64) -> bool {
        self.key_index == expected_key && *self == Self::expected(self.key_index, self.version)
    }
}

/// The canonical key string of torture key `i`.
pub fn torture_key(i: u64) -> String {
    format!("torture-key-{i:03}")
}

/// Runs the torture mix against a store rooted at `root` with faults
/// injected at `config.fault_rate`, then re-verifies every surviving
/// entry through a healthy store on the same root. Panics never; the
/// caller checks [`TortureReport::ok`].
pub fn run(root: &Path, config: &TortureConfig) -> TortureReport {
    let store = ArtifactStore::open_with_fs(
        root,
        FaultyFs::new(RealFs, FaultPlan::uniform(config.seed, config.fault_rate)),
    );
    let threads = config.threads.max(1);
    let per_thread = config.ops.div_ceil(threads as u64);

    let puts = AtomicU64::new(0);
    let put_errors = AtomicU64::new(0);
    let gets = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let wrong_reads = AtomicU64::new(0);
    let gcs = AtomicU64::new(0);
    let lss = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = &store;
            let puts = &puts;
            let put_errors = &put_errors;
            let gets = &gets;
            let hits = &hits;
            let misses = &misses;
            let wrong_reads = &wrong_reads;
            let gcs = &gcs;
            let lss = &lss;
            scope.spawn(move || {
                let mut rng =
                    FaultRng::seed_from_u64(mix64(config.seed ^ 0xD1CE, t as u64));
                for _ in 0..per_thread {
                    let key_index = rng.next_below(TORTURE_KEYS);
                    let key = torture_key(key_index);
                    match rng.next_below(100) {
                        // 60% writers: publish a fresh version.
                        0..=59 => {
                            puts.fetch_add(1, Ordering::Relaxed);
                            let version = rng.next_below(1 << 16);
                            let value = TorturePayload::expected(key_index, version);
                            if store.put(TORTURE_KIND, &key, &value).is_err() {
                                put_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // 30% readers: every hit must be a published value.
                        60..=89 => {
                            gets.fetch_add(1, Ordering::Relaxed);
                            match store.get::<TorturePayload>(TORTURE_KIND, &key) {
                                Some(value) => {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                    if !value.is_valid_for(key_index) {
                                        wrong_reads.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                None => {
                                    misses.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        // 5% janitors: gc, occasionally size-capped.
                        90..=94 => {
                            gcs.fetch_add(1, Ordering::Relaxed);
                            let cap = if rng.next_u64() & 1 == 0 {
                                None
                            } else {
                                Some(rng.next_below(1 << 16))
                            };
                            let _ = store.gc_capped(cap);
                        }
                        // 5% auditors: ls must never panic mid-chaos.
                        _ => {
                            lss.fetch_add(1, Ordering::Relaxed);
                            let _ = store.ls();
                        }
                    }
                }
            });
        }
    });

    // Post-run audit through a *healthy* store on the same root: every
    // artifact the chaos run left behind is either fully readable with a
    // published value, or a miss. A wrong value here means the integrity
    // checks let silent corruption through.
    let healthy = ArtifactStore::open(root);
    for i in 0..TORTURE_KEYS {
        gets.fetch_add(1, Ordering::Relaxed);
        match healthy.get::<TorturePayload>(TORTURE_KIND, &torture_key(i)) {
            Some(value) => {
                hits.fetch_add(1, Ordering::Relaxed);
                if !value.is_valid_for(i) {
                    wrong_reads.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                misses.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    TortureReport {
        ops: per_thread * threads as u64,
        puts: puts.into_inner(),
        put_errors: put_errors.into_inner(),
        gets: gets.into_inner(),
        hits: hits.into_inner(),
        misses: misses.into_inner(),
        wrong_reads: wrong_reads.into_inner(),
        gcs: gcs.into_inner(),
        lss: lss.into_inner(),
        corrupt: store.corrupt() + healthy.corrupt(),
        retries: store.retries(),
        io_errors: store.io_errors(),
        degraded_ops: store.degraded_ops(),
        degraded: store.degraded(),
        faults: store.fault_counters(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("wade-torture-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn healthy_run_has_no_faults_and_no_wrong_reads() {
        let dir = scratch("healthy");
        let report =
            run(&dir, &TortureConfig { seed: 5, ops: 400, threads: 1, fault_rate: 0.0 });
        assert!(report.ok());
        assert_eq!(report.faults.total(), 0);
        assert_eq!(report.put_errors, 0);
        assert!(report.hits > 0, "a healthy run over 64 keys must hit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_run_injects_faults_but_never_corrupts_a_read() {
        let dir = scratch("faulty");
        let report =
            run(&dir, &TortureConfig { seed: 9, ops: 600, threads: 1, fault_rate: 0.15 });
        assert!(report.ok(), "wrong reads under faults: {report:?}");
        assert!(report.faults.total() > 0, "a 15% schedule over 600 ops must fire");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn payload_validation_rejects_mismatches() {
        let good = TorturePayload::expected(3, 77);
        assert!(good.is_valid_for(3));
        assert!(!good.is_valid_for(4), "key mismatch must be a wrong read");
        let mut bad = TorturePayload::expected(3, 77);
        bad.blob[0] ^= 1;
        assert!(!bad.is_valid_for(3), "garbled blob must be a wrong read");
    }
}
