//! Serving counters behind `GET /metrics`.
//!
//! All counters are relaxed atomics — observability must never serialize
//! the request path. The rendered body is hand-rolled JSON with a fixed
//! key order, so the `serving` bench section and CI schema gates can parse
//! it without schema drift.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (inclusive) of the batch-size histogram buckets; the last
/// bucket is unbounded. A batch of `n` rows lands in the first bucket with
/// `n <= bound`.
pub const BATCH_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

/// Request/error/batch/latency counters of one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    requests: AtomicU64,
    predict_requests: AtomicU64,
    rows_predicted: AtomicU64,
    errors_4xx: AtomicU64,
    errors_5xx: AtomicU64,
    batches: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS.len() + 1],
    latency_us_count: AtomicU64,
    latency_us_sum: AtomicU64,
    latency_us_max: AtomicU64,
    reloads: AtomicU64,
}

impl Metrics {
    /// A zeroed instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one answered HTTP exchange with its response status.
    pub fn record_request(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.errors_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.errors_5xx.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one served `POST /predict` (row count + handling latency).
    pub fn record_predict(&self, rows: u64, latency_us: u64) {
        self.predict_requests.fetch_add(1, Ordering::Relaxed);
        self.rows_predicted.fetch_add(rows, Ordering::Relaxed);
        self.latency_us_count.fetch_add(1, Ordering::Relaxed);
        self.latency_us_sum.fetch_add(latency_us, Ordering::Relaxed);
        self.latency_us_max.fetch_max(latency_us, Ordering::Relaxed);
    }

    /// Records one batched `predict_batch` dispatch of `rows` rows.
    pub fn record_batch(&self, rows: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = BATCH_BUCKETS
            .iter()
            .position(|&b| rows <= b)
            .unwrap_or(BATCH_BUCKETS.len());
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records hot-reloads of model snapshots.
    pub fn record_reloads(&self, n: u64) {
        self.reloads.fetch_add(n, Ordering::Relaxed);
    }

    /// HTTP exchanges answered so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// `4xx` responses so far.
    pub fn errors_4xx(&self) -> u64 {
        self.errors_4xx.load(Ordering::Relaxed)
    }

    /// `5xx` responses so far.
    pub fn errors_5xx(&self) -> u64 {
        self.errors_5xx.load(Ordering::Relaxed)
    }

    /// Batched dispatches so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Model hot-reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// The batch-size histogram: one count per [`BATCH_BUCKETS`] bound
    /// plus the final unbounded bucket.
    pub fn batch_histogram(&self) -> Vec<u64> {
        self.batch_hist.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Renders the `GET /metrics` body (fixed key order; `degraded` is the
    /// artifact store's degradation state, `false` without a store).
    pub fn render_json(&self, degraded: bool) -> String {
        let hist = self.batch_histogram();
        let mut hist_fields: Vec<String> = BATCH_BUCKETS
            .iter()
            .zip(hist.iter())
            .map(|(b, c)| format!("\"le_{b}\":{c}"))
            .collect();
        hist_fields.push(format!("\"inf\":{}", hist[BATCH_BUCKETS.len()]));
        format!(
            "{{\"requests\":{},\"predict_requests\":{},\"rows_predicted\":{},\"errors_4xx\":{},\"errors_5xx\":{},\"batches\":{},\"batch_size_hist\":{{{}}},\"latency_us\":{{\"count\":{},\"sum\":{},\"max\":{}}},\"reloads\":{},\"degraded\":{}}}",
            self.requests(),
            self.predict_requests.load(Ordering::Relaxed),
            self.rows_predicted.load(Ordering::Relaxed),
            self.errors_4xx(),
            self.errors_5xx(),
            self.batches(),
            hist_fields.join(","),
            self.latency_us_count.load(Ordering::Relaxed),
            self.latency_us_sum.load(Ordering::Relaxed),
            self.latency_us_max.load(Ordering::Relaxed),
            self.reloads(),
            degraded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_land_in_the_right_buckets() {
        let m = Metrics::new();
        for rows in [1, 2, 3, 8, 33, 1000] {
            m.record_batch(rows);
        }
        assert_eq!(m.batch_histogram(), vec![1, 1, 1, 1, 0, 0, 2]);
        assert_eq!(m.batches(), 6);
    }

    #[test]
    fn status_classes_are_counted() {
        let m = Metrics::new();
        for status in [200, 200, 404, 400, 413, 500] {
            m.record_request(status);
        }
        assert_eq!((m.requests(), m.errors_4xx(), m.errors_5xx()), (6, 3, 1));
    }

    #[test]
    fn rendered_metrics_carry_every_counter() {
        let m = Metrics::new();
        m.record_predict(5, 1200);
        m.record_batch(5);
        m.record_request(200);
        let json = m.render_json(false);
        for needle in [
            "\"requests\":1",
            "\"predict_requests\":1",
            "\"rows_predicted\":5",
            "\"batch_size_hist\":{\"le_1\":0,\"le_2\":0,\"le_4\":0,\"le_8\":1,",
            "\"latency_us\":{\"count\":1,\"sum\":1200,\"max\":1200}",
            "\"reloads\":0",
            "\"degraded\":false",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(m.render_json(true).contains("\"degraded\":true"));
    }
}
