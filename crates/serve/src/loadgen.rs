//! Deterministic load generator for the serving layer.
//!
//! Request `k` of a run is a pure function of `(seed, k)` — the SimRng
//! discipline the rest of the workspace uses: an [`FaultRng`] seeded with
//! `mix64(seed, k)` draws the model kind, the row count, the sampled
//! campaign rows and the operating points. Any request mix is replayable
//! from the seed alone, on any thread count, because threads partition
//! the index space instead of sharing an RNG.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

use wade_core::{CampaignData, MlKind};
use wade_dram::OperatingPoint;
use wade_store::{mix64, FaultRng};

use crate::http::read_response;
use crate::models::ModelRegistry;
use crate::protocol::{feature_set_label, PredictRequest, PredictResponse, PredictRow};

/// Temperatures the generator samples operating points from (°C).
const TEMPS_C: [f64; 3] = [50.0, 60.0, 70.0];

/// Shape of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadConfig {
    /// Concurrent client threads (each with its own keep-alive
    /// connection).
    pub threads: usize,
    /// Total requests across all threads.
    pub requests: u64,
    /// Seed of the request mix.
    pub seed: u64,
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests sent (== the configured count).
    pub requests: u64,
    /// Rows predicted across all requests.
    pub rows: u64,
    /// Non-200 responses and transport failures.
    pub errors: u64,
    /// Responses that differed from the golden registry's bytes (always
    /// zero without a golden registry).
    pub mismatches: u64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Requests per second over the whole run.
    pub throughput_rps: f64,
    /// Wall-clock of the whole run, milliseconds.
    pub elapsed_ms: f64,
}

/// The `k`-th request of a run seeded with `seed`: model kind, 1–4 rows
/// sampled from `data`, and operating points drawn from the paper's
/// sweep palette. Pure in `(data, seed, k)`.
pub fn request_for(data: &CampaignData, seed: u64, k: u64) -> PredictRequest {
    let mut rng = FaultRng::seed_from_u64(mix64(seed, k));
    let kind = MlKind::ALL[rng.next_below(MlKind::ALL.len() as u64) as usize];
    let n_rows = 1 + rng.next_below(4);
    let rows = (0..n_rows)
        .map(|_| {
            let row = &data.rows[rng.next_below(data.rows.len() as u64) as usize];
            let op = OperatingPoint {
                trefp_s: OperatingPoint::WER_TREFP_SWEEP
                    [rng.next_below(OperatingPoint::WER_TREFP_SWEEP.len() as u64) as usize],
                vdd_v: [OperatingPoint::VDD_NOMINAL, OperatingPoint::VDD_MIN]
                    [rng.next_below(2) as usize],
                temp_c: TEMPS_C[rng.next_below(TEMPS_C.len() as u64) as usize],
            };
            PredictRow::new(&row.features, op)
        })
        .collect();
    PredictRequest { model: kind.label().to_string(), rows }
}

/// Runs the load against a live server. With `golden`, every 200 body is
/// compared byte-for-byte against serializing the registry's own
/// [`wade_core::ErrorModel::predict_rows`] on the same rows.
///
/// # Errors
/// Transport errors while connecting (per-request failures count into
/// [`LoadReport::errors`] instead).
pub fn run_load(
    addr: SocketAddr,
    data: &CampaignData,
    golden: Option<&ModelRegistry>,
    config: LoadConfig,
) -> io::Result<LoadReport> {
    assert!(!data.rows.is_empty(), "load generation needs campaign rows");
    let threads = config.threads.max(1);
    let started = Instant::now();
    let mut outcomes: Vec<io::Result<ThreadTally>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || run_thread(addr, data, golden, config, t as u64))
            })
            .collect();
        outcomes.extend(handles.into_iter().map(|h| match h.join() {
            Ok(outcome) => outcome,
            Err(_) => Err(io::Error::other("load thread panicked")),
        }));
    });
    let elapsed = started.elapsed();

    let mut latencies_us: Vec<u64> = Vec::new();
    let (mut rows, mut errors, mut mismatches) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        let tally = outcome?;
        rows += tally.rows;
        errors += tally.errors;
        mismatches += tally.mismatches;
        latencies_us.extend(tally.latencies_us);
    }
    latencies_us.sort_unstable();
    let elapsed_s = elapsed.as_secs_f64().max(1e-9);
    Ok(LoadReport {
        requests: config.requests,
        rows,
        errors,
        mismatches,
        p50_ms: percentile_ms(&latencies_us, 50.0),
        p99_ms: percentile_ms(&latencies_us, 99.0),
        throughput_rps: config.requests as f64 / elapsed_s,
        elapsed_ms: elapsed_s * 1e3,
    })
}

struct ThreadTally {
    rows: u64,
    errors: u64,
    mismatches: u64,
    latencies_us: Vec<u64>,
}

/// One client thread: requests `k ≡ t (mod threads)` over a single
/// keep-alive connection.
fn run_thread(
    addr: SocketAddr,
    data: &CampaignData,
    golden: Option<&ModelRegistry>,
    config: LoadConfig,
    t: u64,
) -> io::Result<ThreadTally> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut tally = ThreadTally { rows: 0, errors: 0, mismatches: 0, latencies_us: Vec::new() };
    let mut k = t;
    while k < config.requests {
        let request = request_for(data, config.seed, k);
        tally.rows += request.rows.len() as u64;
        let body = serde_json::to_string(&request).expect("request serializes");
        let head = format!(
            "POST /predict HTTP/1.1\r\nHost: wade\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len(),
        );
        let sent = Instant::now();
        let exchange = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| read_response(&mut stream));
        match exchange {
            Ok((200, served)) => {
                tally.latencies_us.push(sent.elapsed().as_micros() as u64);
                if let Some(registry) = golden {
                    if golden_body(registry, &request) != served {
                        tally.mismatches += 1;
                    }
                }
            }
            Ok(_) => tally.errors += 1,
            Err(_) => {
                tally.errors += 1;
                // The connection is gone; reconnect for the next request.
                stream = TcpStream::connect(addr)?;
                let _ = stream.set_nodelay(true);
            }
        }
        k += config.threads.max(1) as u64;
    }
    Ok(tally)
}

/// The byte-exact body a correct server must answer for `request`.
fn golden_body(registry: &ModelRegistry, request: &PredictRequest) -> Vec<u8> {
    let kind = crate::protocol::parse_model_kind(&request.model).expect("generated label");
    let rows: Vec<_> = request
        .rows
        .iter()
        .map(|row| row.clone().into_input().expect("generated row is valid"))
        .collect();
    let response = PredictResponse {
        model: kind.label().to_string(),
        set: feature_set_label(registry.set()).to_string(),
        rows: registry.model(kind).predict_rows(&rows),
    };
    serde_json::to_string(&response).expect("response serializes").into_bytes()
}

/// Nearest-rank percentile of sorted microsecond latencies, in ms.
fn percentile_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)] as f64 / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> CampaignData {
        use wade_core::{Campaign, CampaignConfig, SimulatedServer};
        use wade_workloads::{paper_suite, Scale};
        Campaign::new(SimulatedServer::with_seed(39), CampaignConfig::quick())
            .collect(&paper_suite(Scale::Test), 7)
    }

    #[test]
    fn requests_are_pure_in_seed_and_index() {
        let data = tiny_data();
        for k in 0..16 {
            assert_eq!(request_for(&data, 11, k), request_for(&data, 11, k));
        }
        assert_ne!(request_for(&data, 11, 0), request_for(&data, 12, 0));
    }

    #[test]
    fn generated_requests_are_well_formed() {
        let data = tiny_data();
        for k in 0..32 {
            let request = request_for(&data, 5, k);
            assert!(crate::protocol::parse_model_kind(&request.model).is_some());
            assert!((1..=4).contains(&request.rows.len()));
            for row in request.rows {
                assert!(row.clone().into_input().is_ok());
                assert!(OperatingPoint::WER_TREFP_SWEEP.contains(&row.trefp_s));
            }
        }
    }

    #[test]
    fn percentiles_hit_the_expected_ranks() {
        let us: Vec<u64> = (1..=100).map(|v| v * 1000).collect();
        assert!((percentile_ms(&us, 50.0) - 50.0).abs() < 2.0);
        assert!((percentile_ms(&us, 99.0) - 99.0).abs() < 2.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }
}
