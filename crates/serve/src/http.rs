//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 9112 for the serving layer: request-line + header
//! parsing with bounded buffers, `Content-Length` bodies, keep-alive by
//! default, and a response writer. Partial reads are handled by looping —
//! a client trickling its request byte-by-byte parses identically to one
//! sending it in a single segment. Anything outside the supported subset
//! (chunked transfer encoding, HTTP/0.9/2 request lines) is a structured
//! [`RequestError`], never a panic.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers (a request whose header block
/// exceeds this reads as [`RequestError::TooLarge`]).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Request target (`/predict`), verbatim — no query parsing.
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection — cleanly between requests, or
    /// abruptly mid-request. Either way there is nobody to answer; the
    /// server just drops the connection.
    Closed,
    /// The bytes on the wire are not a request this stack accepts; answer
    /// `400 Bad Request` and close.
    Malformed(&'static str),
    /// The declared body (or the header block) exceeds the configured
    /// bound; answer `413 Content Too Large` and close.
    TooLarge,
    /// A transport error (read timeout on an idle keep-alive connection,
    /// reset, …); drop the connection.
    Io(io::Error),
}

/// Reads one request from `stream`, looping over partial reads until the
/// header terminator and the full declared body have arrived. Bodies are
/// bounded by `max_body` *before* any body byte is read, so an oversized
/// upload costs its headers, not its payload.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, RequestError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let header_end = loop {
        if let Some(end) = find_terminator(&buf) {
            break end;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Closed),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(RequestError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| RequestError::Malformed("header block is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(RequestError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed("unsupported HTTP version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(RequestError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(RequestError::Malformed("chunked transfer encoding not supported"));
    }
    let content_length = match request.header("content-length") {
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed("bad Content-Length"))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(RequestError::TooLarge);
    }

    // Body: whatever trailed the header terminator, then read to length.
    let mut body = buf[header_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes are outside the supported subset.
        return Err(RequestError::Malformed("body longer than Content-Length"));
    }
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want]) {
            Ok(0) => return Err(RequestError::Closed),
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(RequestError::Io(e)),
        }
    }
    Ok(Request { body, ..request })
}

/// The position of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one `HTTP/1.1` response with a JSON body.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Client-side counterpart of `write_response`: reads one response off
/// `stream` and returns `(status, body)`. Used by the load generator and
/// the serving test suite; loops over partial reads like the server side.
pub fn read_response(stream: &mut impl Read) -> io::Result<(u16, Vec<u8>)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let header_end = loop {
        if let Some(end) = find_terminator(&buf) {
            break end;
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => return Err(bad("connection closed before response head")),
            n => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length =
                    value.trim().parse().map_err(|_| bad("bad Content-Length"))?;
            }
        }
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let want = (content_length - body.len()).min(chunk.len());
        match stream.read(&mut chunk[..want])? {
            0 => return Err(bad("connection closed mid-body")),
            n => body.extend_from_slice(&chunk[..n]),
        }
    }
    body.truncate(content_length);
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_request() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nabcd";
        let req = read_request(&mut &raw[..], 1024).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn connection_close_is_honoured() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).expect("parse");
        assert!(req.wants_close());
    }

    #[test]
    fn oversized_declared_body_is_too_large_without_reading_it() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10000\r\n\r\n";
        match read_request(&mut &raw[..], 1024) {
            Err(RequestError::TooLarge) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_reads_as_closed() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 8\r\n\r\nabc";
        match read_request(&mut &raw[..], 1024) {
            Err(RequestError::Closed) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed_not_panic() {
        for raw in [
            &b"\xff\xfe\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            match read_request(&mut &raw[..], 1024) {
                Err(RequestError::Malformed(_)) => {}
                other => panic!("expected Malformed for {raw:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "OK", "{\"ok\":true}", true).unwrap();
        let (status, body) = read_response(&mut &wire[..]).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"{\"ok\":true}");
    }

    /// A reader handing out one byte per call: the partial-read loop must
    /// assemble the request regardless of segmentation.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || out.is_empty() {
                return Ok(0);
            }
            out[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn byte_at_a_time_reads_parse_identically() {
        let raw = b"POST /predict HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut Trickle(raw), 1024).expect("parse");
        assert_eq!((req.method.as_str(), req.body.as_slice()), ("POST", &b"abcd"[..]));
    }
}
