//! The long-running server: accept loop, worker pool, routes, shutdown.
//!
//! Topology: one accept thread feeds connections to a fixed worker pool
//! through a channel; each worker runs a keep-alive loop per connection.
//! `POST /predict` handlers enqueue into the [`BatchQueue`] and block on
//! their reply channel; one batcher thread owns all model dispatch. An
//! optional watcher thread polls the store for artifact changes and
//! hot-swaps the in-memory models. Every handler path is panic-isolated:
//! a panicking connection kills that connection, never the server.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wade_core::CampaignData;
use wade_features::FeatureSet;
use wade_store::ArtifactStore;

use crate::batch::{run_batcher, BatchQueue, Job};
use crate::http::{read_request, write_response, Request, RequestError};
use crate::metrics::Metrics;
use crate::models::ModelRegistry;
use crate::protocol::{feature_set_label, parse_model_kind, PredictRequest, PredictResponse};

/// Tunables of one [`Server`] instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (read it back from
    /// [`Server::addr`]).
    pub addr: String,
    /// Feature set the served models are trained on.
    pub set: FeatureSet,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Request-body bound; larger declared bodies answer `413`.
    pub max_body_bytes: usize,
    /// Per-read socket timeout; an idle keep-alive connection is dropped
    /// after this long.
    pub read_timeout: Duration,
    /// Most jobs one batcher wake-up drains into a single model call.
    pub max_batch_jobs: usize,
    /// Hot-reload poll interval; `None` disables the watcher thread
    /// ([`ModelRegistry::poll_reload`] can still be driven manually).
    pub reload_poll: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            set: FeatureSet::Set1,
            workers: 8,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(5),
            max_batch_jobs: 32,
            reload_poll: None,
        }
    }
}

/// A running inference server; dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    queue: Arc<BatchQueue>,
    stop: Arc<AtomicBool>,
    watcher_gate: Arc<(Mutex<bool>, Condvar)>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, boots the models (loading from `store` or training cold)
    /// and starts serving.
    ///
    /// # Errors
    /// The bind error when `config.addr` is unavailable.
    pub fn start(
        config: ServeConfig,
        data: CampaignData,
        store: Option<Arc<ArtifactStore>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(ModelRegistry::new(data, config.set, store));
        let metrics = Arc::new(Metrics::new());
        let queue = Arc::new(BatchQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let watcher_gate = Arc::new((Mutex::new(false), Condvar::new()));

        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // conn_tx drops here; workers drain and exit.
            })
        };

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let queue = Arc::clone(&queue);
                let config = config.clone();
                std::thread::spawn(move || loop {
                    let stream = {
                        let rx = conn_rx.lock().expect("connection channel poisoned");
                        rx.recv()
                    };
                    let Ok(stream) = stream else { break };
                    // A panicking connection (bad model invariant, …)
                    // must not take the worker down with it.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        handle_connection(stream, &config, &registry, &metrics, &queue);
                    }));
                })
            })
            .collect();

        let batcher = {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let max_jobs = config.max_batch_jobs;
            std::thread::spawn(move || run_batcher(&queue, &registry, &metrics, max_jobs))
        };

        let watcher = config.reload_poll.map(|period| {
            let gate = Arc::clone(&watcher_gate);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || loop {
                let (lock, cond) = &*gate;
                let stopped = lock.lock().expect("watcher gate poisoned");
                let (stopped, _) =
                    cond.wait_timeout(stopped, period).expect("watcher gate poisoned");
                if *stopped {
                    break;
                }
                drop(stopped);
                metrics.record_reloads(registry.poll_reload());
            })
        });

        Ok(Self {
            addr,
            registry,
            metrics,
            queue,
            stop,
            watcher_gate,
            accept: Some(accept),
            workers,
            batcher: Some(batcher),
            watcher,
        })
    }

    /// The bound address (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The served model snapshots (e.g. to compute golden expectations or
    /// drive [`ModelRegistry::poll_reload`] manually in tests).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.queue.close();
        if let Some(batcher) = self.batcher.take() {
            let _ = batcher.join();
        }
        let (lock, cond) = &*self.watcher_gate;
        if let Ok(mut stopped) = lock.lock() {
            *stopped = true;
            cond.notify_all();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Keep-alive loop over one connection: read, route, answer, repeat.
fn handle_connection(
    mut stream: TcpStream,
    config: &ServeConfig,
    registry: &ModelRegistry,
    metrics: &Metrics,
    queue: &BatchQueue,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        let request = match read_request(&mut stream, config.max_body_bytes) {
            Ok(request) => request,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Malformed(reason)) => {
                metrics.record_request(400);
                let _ = write_response(&mut stream, 400, "Bad Request", &error_body(reason), false);
                return;
            }
            Err(RequestError::TooLarge) => {
                metrics.record_request(413);
                let body = error_body("body exceeds the configured bound");
                let _ = write_response(&mut stream, 413, "Content Too Large", &body, false);
                return;
            }
        };
        let keep_alive = !request.wants_close();
        let (status, reason, body) = route(&request, registry, metrics, queue);
        metrics.record_request(status);
        if write_response(&mut stream, status, reason, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Dispatches one parsed request to `(status, reason, body)`.
fn route(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    queue: &BatchQueue,
) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"set\":\"{}\",\"degraded\":{}}}",
                feature_set_label(registry.set()),
                registry.degraded(),
            );
            (200, "OK", body)
        }
        ("GET", "/metrics") => (200, "OK", metrics.render_json(registry.degraded())),
        ("POST", "/predict") => predict(request, registry, metrics, queue),
        _ => (404, "Not Found", error_body("no such route")),
    }
}

/// The `POST /predict` handler: validate, enqueue, await the batcher.
fn predict(
    request: &Request,
    registry: &ModelRegistry,
    metrics: &Metrics,
    queue: &BatchQueue,
) -> (u16, &'static str, String) {
    let started = Instant::now();
    let bad = |reason: &'static str| (400, "Bad Request", error_body(reason));
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return bad("body is not UTF-8");
    };
    let Ok(parsed) = serde_json::from_str::<PredictRequest>(text) else {
        return bad("body is not a predict request");
    };
    let Some(kind) = parse_model_kind(&parsed.model) else {
        return bad("unknown model label");
    };
    let mut rows = Vec::with_capacity(parsed.rows.len());
    for row in parsed.rows {
        match row.into_input() {
            Ok(input) => rows.push(input),
            Err(reason) => return bad(reason),
        }
    }
    let n_rows = rows.len() as u64;
    let (reply_tx, reply_rx) = mpsc::channel();
    if !queue.push(Job { kind, rows, reply: reply_tx }) {
        return (503, "Service Unavailable", error_body("server shutting down"));
    }
    let Ok(predictions) = reply_rx.recv() else {
        // Batcher panicked on this batch; the queue itself survives.
        return (500, "Internal Server Error", error_body("prediction failed"));
    };
    let response = PredictResponse {
        model: kind.label().to_string(),
        set: feature_set_label(registry.set()).to_string(),
        rows: predictions,
    };
    let body = serde_json::to_string(&response).expect("response serializes");
    metrics.record_predict(n_rows, started.elapsed().as_micros() as u64);
    (200, "OK", body)
}

fn error_body(reason: &str) -> String {
    format!("{{\"error\":\"{reason}\"}}")
}
