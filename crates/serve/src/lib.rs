//! # wade-serve — prediction-as-a-service
//!
//! The paper's end product is a trained predictor that answers in
//! microseconds what a characterization campaign answers in hours; this
//! crate puts that predictor behind a long-running HTTP/JSON server, the
//! layer field deployments place between telemetry and mitigation. The
//! stack is deliberately dependency-free — a minimal vendored-style
//! HTTP/1.1 implementation over `std::net::TcpListener`, the same
//! no-crates.io discipline as the rest of the workspace.
//!
//! The serving contract (normative; ARCHITECTURE.md §13):
//!
//! * **Byte-identity.** A `POST /predict` response is byte-identical to
//!   serializing [`wade_core::ErrorModel::predict_rows`] on the same rows:
//!   rows are predicted independently, so the micro-batching queue (which
//!   concatenates rows from concurrent requests into one
//!   `predict_batch` call per model) is invisible in the output —
//!   `tests/serving.rs` asserts this at 1 and 8 client threads, cold and
//!   warm store, for all three model kinds.
//! * **Store-backed models.** On boot, models load from the artifact
//!   store (kind `model`, keyed by trainer config + dataset fingerprint,
//!   fold `""`) and are trained and published on a cold store. The
//!   registry is indifferent to where the campaign came from: a
//!   fleet-swept population lowered through `wade-fleet`'s
//!   `fleet_campaign_data` trains and serves identically to a
//!   single-server characterization campaign (`tests/fleet_scale.rs`). A watcher
//!   polls the entries' mtimes through the [`wade_store::StoreFs`] seam
//!   (fault schedules apply to serving too) and hot-swaps the in-memory
//!   models when an artifact changes; in-flight requests finish on the
//!   model snapshot they started with.
//! * **Failure degrades, never aborts.** Store faults fall back to the
//!   in-memory models (no 5xx from the disk tier); malformed requests get
//!   400, oversized bodies 413, unknown routes 404 — and the server keeps
//!   serving after every one of them, including abrupt client disconnects.
//! * **Observability.** `GET /healthz` reports liveness and
//!   degraded-mode state; `GET /metrics` exposes request/error counters,
//!   the batch-size histogram, latency aggregates and reload counts.
//!
//! ```no_run
//! use wade_core::{Campaign, CampaignConfig, SimulatedServer};
//! use wade_serve::{ServeConfig, Server};
//! use wade_workloads::{paper_suite, Scale};
//!
//! let data = Campaign::new(SimulatedServer::with_seed(39), CampaignConfig::quick())
//!     .collect(&paper_suite(Scale::Test), 7);
//! let server = Server::start(ServeConfig::default(), data, None).expect("bind");
//! println!("serving on http://{}", server.addr());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod batch;
mod http;
mod loadgen;
mod metrics;
mod models;
mod protocol;
mod server;

pub use http::{read_response, Request, RequestError, MAX_HEADER_BYTES};
pub use loadgen::{request_for, run_load, LoadConfig, LoadReport};
pub use metrics::{Metrics, BATCH_BUCKETS};
pub use models::ModelRegistry;
pub use protocol::{
    feature_set_label, parse_feature_set, parse_model_kind, PredictRequest, PredictResponse,
    PredictRow,
};
pub use server::{ServeConfig, Server};
