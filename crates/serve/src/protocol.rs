//! The `POST /predict` wire protocol.
//!
//! Request and response are plain JSON through the vendored serde derive,
//! so the response body is — byte for byte — the serialization the golden
//! tests compute directly from [`wade_core::ErrorModel::predict_rows`]
//! (the vendored `serde_json` round-trips `f64` exactly and emits map keys
//! in declaration order).

use serde::{Deserialize, Serialize};
use wade_core::{MlKind, Prediction};
use wade_dram::OperatingPoint;
use wade_features::{schema, FeatureSet, FeatureVector};

/// A `POST /predict` body: which model family to use and the rows to
/// predict. The feature set is fixed per server (it is part of the trained
/// models), so rows carry only features and operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Model family label: `"SVM"`, `"KNN"` or `"RDF"`.
    pub model: String,
    /// The rows to predict, in order.
    pub rows: Vec<PredictRow>,
}

/// One row of a [`PredictRequest`]: the workload's program features plus
/// the operating point of eq. 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictRow {
    /// All [`schema::FEATURE_COUNT`] program features, in schema order.
    pub features: Vec<f64>,
    /// Refresh period in seconds (`TREFP`).
    pub trefp_s: f64,
    /// DIMM temperature in °C (`TEMP_DRAM`).
    pub temp_c: f64,
    /// Supply voltage in volts (`VDD`).
    pub vdd_v: f64,
}

impl PredictRow {
    /// Builds a row from a feature vector and an operating point.
    pub fn new(features: &FeatureVector, op: OperatingPoint) -> Self {
        Self {
            features: features.values().to_vec(),
            trefp_s: op.trefp_s,
            temp_c: op.temp_c,
            vdd_v: op.vdd_v,
        }
    }

    /// Validates and converts into the model layer's input pair.
    ///
    /// # Errors
    /// A static reason when the feature count is wrong or any value is
    /// non-finite — surfaced as a `400`, never a panic (the
    /// [`FeatureVector`] constructor asserts; this is the boundary that
    /// keeps untrusted input away from those asserts).
    pub fn into_input(self) -> Result<(FeatureVector, OperatingPoint), &'static str> {
        if self.features.len() != schema::FEATURE_COUNT {
            return Err("wrong feature count");
        }
        if !self.features.iter().all(|v| v.is_finite()) {
            return Err("non-finite feature value");
        }
        if ![self.trefp_s, self.temp_c, self.vdd_v].iter().all(|v| v.is_finite()) {
            return Err("non-finite operating point");
        }
        let op = OperatingPoint { trefp_s: self.trefp_s, vdd_v: self.vdd_v, temp_c: self.temp_c };
        Ok((FeatureVector::from_values(self.features), op))
    }
}

/// A `POST /predict` response: the echoed model/set labels and one
/// [`Prediction`] per request row, in request order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Model family that served the rows.
    pub model: String,
    /// Feature-set label of the trained models (`"Set1"`/`"Set2"`/`"Set3"`).
    pub set: String,
    /// Per-row predictions, in request order.
    pub rows: Vec<Prediction>,
}

/// Parses a model family label (`"SVM"`, `"KNN"`, `"RDF"`).
pub fn parse_model_kind(label: &str) -> Option<MlKind> {
    MlKind::ALL.into_iter().find(|k| k.label() == label)
}

/// The wire label of a feature set (`"Set1"`/`"Set2"`/`"Set3"`).
pub fn feature_set_label(set: FeatureSet) -> &'static str {
    match set {
        FeatureSet::Set1 => "Set1",
        FeatureSet::Set2 => "Set2",
        FeatureSet::Set3 => "Set3",
    }
}

/// Parses a [`feature_set_label`] back into its set.
pub fn parse_feature_set(label: &str) -> Option<FeatureSet> {
    FeatureSet::ALL.into_iter().find(|&s| feature_set_label(s) == label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = PredictRequest {
            model: "KNN".into(),
            rows: vec![PredictRow {
                features: vec![0.5; schema::FEATURE_COUNT],
                trefp_s: 2.283,
                temp_c: 70.0,
                vdd_v: 1.428,
            }],
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn labels_roundtrip() {
        for kind in MlKind::ALL {
            assert_eq!(parse_model_kind(kind.label()), Some(kind));
        }
        for set in FeatureSet::ALL {
            assert_eq!(parse_feature_set(feature_set_label(set)), Some(set));
        }
        assert_eq!(parse_model_kind("GPT"), None);
        assert_eq!(parse_feature_set("Set9"), None);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let short = PredictRow { features: vec![1.0; 3], trefp_s: 1.0, temp_c: 60.0, vdd_v: 1.5 };
        assert!(short.into_input().is_err());
        let nan = PredictRow {
            features: vec![f64::NAN; schema::FEATURE_COUNT],
            trefp_s: 1.0,
            temp_c: 60.0,
            vdd_v: 1.5,
        };
        assert!(nan.into_input().is_err());
        let bad_op = PredictRow {
            features: vec![0.0; schema::FEATURE_COUNT],
            trefp_s: f64::INFINITY,
            temp_c: 60.0,
            vdd_v: 1.5,
        };
        assert!(bad_op.into_input().is_err());
    }
}
