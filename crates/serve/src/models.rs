//! The served model snapshots and their hot-reload watcher state.
//!
//! The registry holds one [`ErrorModel`] per model family, each behind an
//! `RwLock<Arc<…>>`: handlers grab an `Arc` snapshot and keep predicting
//! on it even if a reload swaps the slot mid-request — in-flight work
//! finishes on the model it started with. Reload detection polls the
//! store entries' mtimes through [`ArtifactStore::entry_stamp`], which
//! goes through the `StoreFs` seam, so fault schedules and degraded mode
//! apply to serving exactly as they do to campaign caching.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::SystemTime;

use wade_core::{
    serving_model_keys, train_error_model_stored, CampaignData, ErrorModel, MlKind, MODEL_KIND,
};
use wade_features::FeatureSet;
use wade_store::ArtifactStore;

/// The per-family model snapshots a server serves from.
pub struct ModelRegistry {
    store: Option<Arc<ArtifactStore>>,
    set: FeatureSet,
    data: CampaignData,
    /// One slot per entry of [`MlKind::ALL`], same order.
    models: Vec<RwLock<Arc<ErrorModel>>>,
    /// Store keys backing each family's models, same order as `models`.
    keys: Vec<Vec<String>>,
    /// Last seen mtime per store key; absent entries never had a stamp.
    stamps: Mutex<HashMap<String, SystemTime>>,
}

impl ModelRegistry {
    /// Boots the registry: loads every family's models from `store`
    /// (training and publishing them when the store is cold or absent)
    /// and records the artifacts' initial mtimes.
    pub fn new(data: CampaignData, set: FeatureSet, store: Option<Arc<ArtifactStore>>) -> Self {
        let mut models = Vec::new();
        let mut keys = Vec::new();
        for kind in MlKind::ALL {
            let model = train_error_model_stored(store.as_deref(), &data, kind, set);
            models.push(RwLock::new(Arc::new(model)));
            keys.push(serving_model_keys(&data, kind, set));
        }
        let registry = Self { store, set, data, models, keys, stamps: Mutex::new(HashMap::new()) };
        registry.refresh_stamps();
        registry
    }

    /// The feature set the registry's models were trained on.
    pub fn set(&self) -> FeatureSet {
        self.set
    }

    /// The current model snapshot for `kind`. The returned `Arc` stays
    /// valid across hot-reloads.
    pub fn model(&self, kind: MlKind) -> Arc<ErrorModel> {
        let idx = kind_index(kind);
        Arc::clone(&self.models[idx].read().expect("model slot poisoned"))
    }

    /// Whether the backing store has tripped into degraded (in-memory)
    /// mode; `false` without a store.
    pub fn degraded(&self) -> bool {
        self.store.as_deref().is_some_and(ArtifactStore::degraded)
    }

    /// One reload poll: compares every backing artifact's mtime against
    /// the last seen value and rebuilds the families whose artifacts
    /// changed. Returns the number of families reloaded.
    ///
    /// A stamp that reads as `None` (entry unreadable, store degraded,
    /// fault injected) never triggers a reload and never forgets the last
    /// good stamp — the in-memory snapshot keeps serving, which is the
    /// "failure degrades, never aborts" contract.
    pub fn poll_reload(&self) -> u64 {
        let Some(store) = self.store.as_deref() else {
            return 0;
        };
        let mut reloaded = 0;
        for (idx, kind) in MlKind::ALL.into_iter().enumerate() {
            let mut dirty = false;
            {
                let mut stamps = self.stamps.lock().expect("stamp map poisoned");
                for key in &self.keys[idx] {
                    if let Some(stamp) = store.entry_stamp(MODEL_KIND, key) {
                        if stamps.get(key) != Some(&stamp) {
                            stamps.insert(key.clone(), stamp);
                            dirty = true;
                        }
                    }
                }
            }
            if dirty {
                let model =
                    train_error_model_stored(self.store.as_deref(), &self.data, kind, self.set);
                *self.models[idx].write().expect("model slot poisoned") = Arc::new(model);
                reloaded += 1;
            }
        }
        reloaded
    }

    /// Records the current mtimes of every backing artifact without
    /// reloading — the boot-time baseline [`Self::poll_reload`] diffs
    /// against.
    fn refresh_stamps(&self) {
        let Some(store) = self.store.as_deref() else {
            return;
        };
        let mut stamps = self.stamps.lock().expect("stamp map poisoned");
        for key in self.keys.iter().flatten() {
            if let Some(stamp) = store.entry_stamp(MODEL_KIND, key) {
                stamps.insert(key.clone(), stamp);
            }
        }
    }
}

fn kind_index(kind: MlKind) -> usize {
    MlKind::ALL.into_iter().position(|k| k == kind).expect("kind in ALL")
}
