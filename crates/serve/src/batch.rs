//! Micro-batching between request handlers and the model.
//!
//! Handlers enqueue [`Job`]s; a single batcher thread drains whatever is
//! queued at each wake-up (natural batching — no artificial delay),
//! groups the drained jobs by model kind, concatenates their rows into
//! one [`wade_core::ErrorModel::predict_rows`] call per kind, and splits
//! the predictions back per job. Rows are predicted independently, so
//! batching is invisible in the output — the byte-identity contract of
//! the crate docs rests on that.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};

use wade_core::{MlKind, Prediction};
use wade_dram::OperatingPoint;
use wade_features::FeatureVector;

use crate::metrics::Metrics;
use crate::models::ModelRegistry;

/// One handler's rows waiting for a prediction.
pub(crate) struct Job {
    /// Which model family to predict with.
    pub kind: MlKind,
    /// The validated rows, in request order.
    pub rows: Vec<(FeatureVector, OperatingPoint)>,
    /// Where the per-row predictions go; dropped on batcher panic, which
    /// the handler observes as a `RecvError` and answers with a 500.
    pub reply: mpsc::Sender<Vec<Prediction>>,
}

struct State {
    jobs: VecDeque<Job>,
    open: bool,
}

/// A condvar-backed FIFO shared by handlers and the batcher thread.
pub(crate) struct BatchQueue {
    state: Mutex<State>,
    ready: Condvar,
}

impl BatchQueue {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(State { jobs: VecDeque::new(), open: true }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job; returns `false` when the queue is already closed
    /// (server shutting down), in which case the job is dropped.
    pub(crate) fn push(&self, job: Job) -> bool {
        let mut state = self.state.lock().expect("batch queue poisoned");
        if !state.open {
            return false;
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        true
    }

    /// Blocks for work, then drains up to `max_jobs` queued jobs. Returns
    /// `None` once the queue is closed and empty — the batcher's exit
    /// signal (pending jobs are still served first).
    pub(crate) fn take_batch(&self, max_jobs: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().expect("batch queue poisoned");
        loop {
            if !state.jobs.is_empty() {
                let n = state.jobs.len().min(max_jobs.max(1));
                return Some(state.jobs.drain(..n).collect());
            }
            if !state.open {
                return None;
            }
            state = self.ready.wait(state).expect("batch queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, and the batcher exits after
    /// draining what is already queued.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("batch queue poisoned");
        state.open = false;
        self.ready.notify_all();
    }
}

/// The batcher loop: drain, group by kind, predict, split, reply.
/// Runs until [`BatchQueue::close`]; a panic inside one batch (e.g. a
/// poisoned model invariant) is caught so the batcher keeps serving.
pub(crate) fn run_batcher(
    queue: &BatchQueue,
    registry: &Arc<ModelRegistry>,
    metrics: &Arc<Metrics>,
    max_jobs: usize,
) {
    while let Some(jobs) = queue.take_batch(max_jobs) {
        let registry = Arc::clone(registry);
        let metrics = Arc::clone(metrics);
        // On panic the jobs' reply senders are dropped, so every waiting
        // handler sees a RecvError and answers 500; the batcher survives.
        let _ = catch_unwind(AssertUnwindSafe(move || serve_jobs(jobs, &registry, &metrics)));
    }
}

fn serve_jobs(mut jobs: Vec<Job>, registry: &ModelRegistry, metrics: &Metrics) {
    for kind in MlKind::ALL {
        let group: Vec<Job> = {
            let mut group = Vec::new();
            let mut rest = Vec::new();
            for job in jobs {
                if job.kind == kind {
                    group.push(job);
                } else {
                    rest.push(job);
                }
            }
            jobs = rest;
            group
        };
        if group.is_empty() {
            continue;
        }
        let mut all_rows: Vec<(FeatureVector, OperatingPoint)> = Vec::new();
        let mut splits: Vec<(usize, mpsc::Sender<Vec<Prediction>>)> = Vec::new();
        for job in group {
            splits.push((job.rows.len(), job.reply));
            all_rows.extend(job.rows);
        }
        let model = registry.model(kind);
        let predictions = model.predict_rows(&all_rows);
        metrics.record_batch(all_rows.len() as u64);
        let mut it = predictions.into_iter();
        for (n, reply) in splits {
            let chunk: Vec<Prediction> = it.by_ref().take(n).collect();
            // A handler that timed out and went away is not an error.
            let _ = reply.send(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_queue_rejects_pushes_and_wakes_the_batcher() {
        let queue = BatchQueue::new();
        queue.close();
        let (tx, _rx) = mpsc::channel();
        assert!(!queue.push(Job { kind: MlKind::Knn, rows: Vec::new(), reply: tx }));
        assert!(queue.take_batch(8).is_none());
    }

    #[test]
    fn pending_jobs_drain_before_the_close_signal() {
        let queue = BatchQueue::new();
        let (tx, _rx) = mpsc::channel();
        assert!(queue.push(Job { kind: MlKind::Svm, rows: Vec::new(), reply: tx }));
        queue.close();
        let batch = queue.take_batch(8).expect("queued job survives close");
        assert_eq!(batch.len(), 1);
        assert!(queue.take_batch(8).is_none());
    }

    #[test]
    fn take_batch_caps_at_max_jobs() {
        let queue = BatchQueue::new();
        for _ in 0..5 {
            let (tx, _rx) = mpsc::channel();
            queue.push(Job { kind: MlKind::Rdf, rows: Vec::new(), reply: tx });
        }
        assert_eq!(queue.take_batch(2).expect("batch").len(), 2);
        assert_eq!(queue.take_batch(99).expect("batch").len(), 3);
    }
}
