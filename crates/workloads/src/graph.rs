//! Analytics kernels: PageRank, BFS and betweenness centrality over a
//! shared CSR graph substrate (the paper runs these via Ligra/GraphGrind).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use wade_trace::AccessSink;

/// A synthetic power-law graph in compressed-sparse-row form, stored in
/// traced buffers (offsets + edge targets), as a graph framework would lay
/// it out in memory.
#[derive(Debug)]
pub struct CsrGraph {
    /// Number of vertices.
    pub nodes: usize,
    offsets: TracedBuffer,
    edges: TracedBuffer,
    edge_count: usize,
}

impl CsrGraph {
    /// Generates a power-law graph with `nodes` vertices and ~`edges_per_node`
    /// out-edges per vertex, preferentially attached to low-id hubs.
    pub fn power_law(
        space: &mut AddressSpace,
        sink: &mut dyn AccessSink,
        nodes: usize,
        edges_per_node: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); nodes];
        for (v, targets) in adj.iter_mut().enumerate() {
            for _ in 0..edges_per_node {
                // Zipf-ish target: low ids are hubs.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                let t = ((nodes as f64).powf(u) - 1.0) as usize % nodes;
                if t != v {
                    targets.push(t as u32);
                }
            }
            targets.sort_unstable();
            targets.dedup();
        }
        let edge_count: usize = adj.iter().map(Vec::len).sum();
        let mut offsets = TracedBuffer::zeroed(space, nodes + 1);
        let mut edges = TracedBuffer::zeroed(space, edge_count.max(1));
        let mut cursor = 0usize;
        for (v, targets) in adj.iter().enumerate() {
            offsets.set(sink, v, cursor as u64, 0);
            for &t in targets {
                edges.set(sink, cursor, t as u64, 0);
                cursor += 1;
            }
            sink.on_instructions(2);
        }
        offsets.set(sink, nodes, cursor as u64, 0);
        Self { nodes, offsets, edges, edge_count }
    }

    /// Total directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Instrumented iteration bounds of `v`'s adjacency list.
    pub fn neighbors_range(&self, sink: &mut dyn AccessSink, v: usize, tid: u8) -> (usize, usize) {
        let start = self.offsets.get(sink, v, tid) as usize;
        let end = self.offsets.get(sink, v + 1, tid) as usize;
        (start, end)
    }

    /// Instrumented read of edge-slot `i`.
    pub fn edge_target(&self, sink: &mut dyn AccessSink, i: usize, tid: u8) -> usize {
        self.edges.get(sink, i, tid) as usize
    }
}

fn graph_size(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Full => (60_000, 10),
        Scale::Test => (400, 6),
    }
}

/// PageRank kernel (push-free, Jacobi iteration).
#[derive(Debug, Clone)]
pub struct Pagerank {
    threads: u8,
    scale: Scale,
    iterations: usize,
}

impl Pagerank {
    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        Self { threads, scale, iterations: 4 }
    }

    fn compute(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let (nodes, epn) = graph_size(self.scale);
        let mut space = AddressSpace::new();
        let graph = CsrGraph::power_law(&mut space, sink, nodes, epn, seed);
        let mut rank = TracedBuffer::zeroed(&mut space, nodes);
        let mut next = TracedBuffer::zeroed(&mut space, nodes);
        let mut out_deg = TracedBuffer::zeroed(&mut space, nodes);

        for v in 0..nodes {
            rank.set_f64(sink, v, 1.0 / nodes as f64, 0);
            let (s, e) = graph.neighbors_range(sink, v, 0);
            out_deg.set_f64(sink, v, (e - s).max(1) as f64, 0);
            sink.on_instructions(2);
        }

        let damping = 0.85;
        for _iter in 0..self.iterations {
            for v in 0..nodes {
                next.set_f64(sink, v, (1.0 - damping) / nodes as f64, 0);
                sink.on_instructions(1);
            }
            // Push contributions along out-edges.
            for v in 0..nodes {
                let tid = (v % self.threads as usize) as u8;
                let r = rank.get_f64(sink, v, tid);
                let d = out_deg.get_f64(sink, v, tid);
                let contrib = damping * r / d;
                let (s, e) = graph.neighbors_range(sink, v, tid);
                for i in s..e {
                    let t = graph.edge_target(sink, i, tid);
                    let cur = next.get_f64(sink, t, tid);
                    next.set_f64(sink, t, cur + contrib, tid);
                    sink.on_instructions(1);
                }
                sink.on_instructions(2);
            }
            std::mem::swap(&mut rank, &mut next);
        }

        let mut sum = 0.0;
        for v in 0..nodes {
            sum += rank.get_f64(sink, v, 0);
            sink.on_instructions(1);
        }
        sum
    }
}

impl Workload for Pagerank {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        "pagerank".to_string()
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.compute(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(0.76)
    }
}

/// Breadth-first search from several sources.
#[derive(Debug, Clone)]
pub struct Bfs {
    threads: u8,
    scale: Scale,
    sources: usize,
}

impl Bfs {
    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        Self { threads, scale, sources: 6 }
    }

    fn search(&self, sink: &mut dyn AccessSink, seed: u64) -> u64 {
        let (nodes, epn) = graph_size(self.scale);
        let mut space = AddressSpace::new();
        let graph = CsrGraph::power_law(&mut space, sink, nodes, epn, seed);
        let mut dist = TracedBuffer::zeroed(&mut space, nodes);
        let mut reached_total = 0u64;

        for src_i in 0..self.sources {
            let tid = (src_i % self.threads as usize) as u8;
            for v in 0..nodes {
                dist.set(sink, v, u64::MAX, tid);
                sink.on_instructions(1);
            }
            let source = (src_i * 97) % nodes;
            dist.set(sink, source, 0, tid);
            let mut queue = VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                let dv = dist.get(sink, v, tid);
                let (s, e) = graph.neighbors_range(sink, v, tid);
                for i in s..e {
                    let t = graph.edge_target(sink, i, tid);
                    if dist.get(sink, t, tid) == u64::MAX {
                        dist.set(sink, t, dv + 1, tid);
                        queue.push_back(t);
                        reached_total += 1;
                    }
                    sink.on_instructions(2);
                }
                sink.on_instructions(1);
            }
        }
        reached_total
    }
}

impl Workload for Bfs {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        "bfs".to_string()
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.search(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(0.76)
    }
}

/// Brandes-style betweenness centrality (unweighted).
#[derive(Debug, Clone)]
pub struct Bc {
    threads: u8,
    scale: Scale,
    sources: usize,
}

impl Bc {
    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        Self { threads, scale, sources: 4 }
    }

    fn centrality(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let (nodes, epn) = graph_size(self.scale);
        let (nodes, epn) = (nodes / 2, epn); // BC is O(V·E); halve V.
        let mut space = AddressSpace::new();
        let graph = CsrGraph::power_law(&mut space, sink, nodes, epn, seed);
        let mut sigma = TracedBuffer::zeroed(&mut space, nodes);
        let mut dist = TracedBuffer::zeroed(&mut space, nodes);
        let mut delta = TracedBuffer::zeroed(&mut space, nodes);
        let mut bc = TracedBuffer::zeroed(&mut space, nodes);

        for src_i in 0..self.sources {
            let tid = (src_i % self.threads as usize) as u8;
            let source = (src_i * 131) % nodes;
            for v in 0..nodes {
                sigma.set_f64(sink, v, 0.0, tid);
                dist.set(sink, v, u64::MAX, tid);
                delta.set_f64(sink, v, 0.0, tid);
                sink.on_instructions(1);
            }
            sigma.set_f64(sink, source, 1.0, tid);
            dist.set(sink, source, 0, tid);
            let mut order: Vec<usize> = Vec::new();
            let mut queue = VecDeque::from([source]);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                let dv = dist.get(sink, v, tid);
                let sv = sigma.get_f64(sink, v, tid);
                let (s, e) = graph.neighbors_range(sink, v, tid);
                for i in s..e {
                    let t = graph.edge_target(sink, i, tid);
                    let dt = dist.get(sink, t, tid);
                    if dt == u64::MAX {
                        dist.set(sink, t, dv + 1, tid);
                        queue.push_back(t);
                    }
                    if dist.get(sink, t, tid) == dv + 1 {
                        let st = sigma.get_f64(sink, t, tid);
                        sigma.set_f64(sink, t, st + sv, tid);
                    }
                    sink.on_instructions(3);
                }
            }
            // Dependency accumulation in reverse BFS order.
            for &v in order.iter().rev() {
                let dv = dist.get(sink, v, tid);
                let sv = sigma.get_f64(sink, v, tid);
                let (s, e) = graph.neighbors_range(sink, v, tid);
                let mut dv_acc = delta.get_f64(sink, v, tid);
                for i in s..e {
                    let t = graph.edge_target(sink, i, tid);
                    if dist.get(sink, t, tid) == dv + 1 {
                        let st = sigma.get_f64(sink, t, tid);
                        let dt = delta.get_f64(sink, t, tid);
                        if st > 0.0 {
                            dv_acc += sv / st * (1.0 + dt);
                        }
                    }
                    sink.on_instructions(3);
                }
                delta.set_f64(sink, v, dv_acc, tid);
                if v != source {
                    let cur = bc.get_f64(sink, v, tid);
                    bc.set_f64(sink, v, cur + dv_acc, tid);
                }
                sink.on_instructions(2);
            }
        }

        let mut max_bc: f64 = 0.0;
        for v in 0..nodes {
            max_bc = max_bc.max(bc.get_f64(sink, v, 0));
            sink.on_instructions(1);
        }
        max_bc
    }
}

impl Workload for Bc {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        "bc".to_string()
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.centrality(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(0.50)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn pagerank_mass_is_conserved() {
        let pr = Pagerank::new(1, Scale::Test);
        let total = pr.compute(&mut NullSink, 5);
        assert!((total - 1.0).abs() < 0.05, "rank mass {total}");
    }

    #[test]
    fn bfs_reaches_many_nodes() {
        let bfs = Bfs::new(1, Scale::Test);
        let reached = bfs.search(&mut NullSink, 5);
        assert!(reached > 100, "reached {reached}");
    }

    #[test]
    fn bc_hubs_score_highest() {
        let bc = Bc::new(1, Scale::Test);
        let max_bc = bc.centrality(&mut NullSink, 5);
        assert!(max_bc > 0.0);
    }

    #[test]
    fn graph_construction_is_consistent() {
        let mut space = AddressSpace::new();
        let mut sink = NullSink;
        let g = CsrGraph::power_law(&mut space, &mut sink, 200, 5, 1);
        let mut total = 0;
        for v in 0..200 {
            let (s, e) = g.neighbors_range(&mut sink, v, 0);
            assert!(s <= e);
            for i in s..e {
                assert!(g.edge_target(&mut sink, i, 0) < 200);
            }
            total += e - s;
        }
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn hubs_attract_more_edges() {
        let mut space = AddressSpace::new();
        let mut sink = NullSink;
        let g = CsrGraph::power_law(&mut space, &mut sink, 500, 8, 2);
        let mut in_deg = vec![0u32; 500];
        for v in 0..500 {
            let (s, e) = g.neighbors_range(&mut sink, v, 0);
            for i in s..e {
                in_deg[g.edge_target(&mut sink, i, 0)] += 1;
            }
        }
        let head: u32 = in_deg[..25].iter().sum();
        let tail: u32 = in_deg[475..].iter().sum();
        assert!(head > 5 * tail.max(1), "head {head} tail {tail}");
    }

    #[test]
    fn analytics_kernels_produce_traffic() {
        for wl in [
            Box::new(Pagerank::new(8, Scale::Test)) as Box<dyn Workload>,
            Box::new(Bfs::new(8, Scale::Test)),
            Box::new(Bc::new(8, Scale::Test)),
        ] {
            let mut tracer = Tracer::new();
            wl.run(&mut tracer, 3);
            assert!(tracer.report().mem_accesses > 1_000, "{}", wl.name());
        }
    }
}
