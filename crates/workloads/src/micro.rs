//! Data-pattern micro-benchmarks.
//!
//! Conventional retention-profiling studies stress DRAM with fixed data
//! patterns (random, zeros, checkerboard) swept at maximum rate. The paper
//! uses the random-pattern micro as the "conventional" comparison point in
//! Figs. 2 and 13 — and shows real workloads can both exceed and undercut
//! it, which is the motivating observation for workload-aware modelling.

use crate::spec::{DeployScale, Scale, Workload};
use wade_trace::synthetic::{StridedSweep, ValuePattern};
use wade_trace::AccessSink;

/// Which stored pattern the micro-benchmark writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroPattern {
    /// Uniformly random words (the paper's `random` micro).
    Random,
    /// All zeros.
    Zeros,
    /// 0xAA / 0x55 checkerboard.
    Checkerboard,
}

/// Data-pattern sweep micro-benchmark.
#[derive(Debug, Clone)]
pub struct DataPatternMicro {
    pattern: MicroPattern,
    scale: Scale,
    words: u64,
    passes: u32,
}

impl DataPatternMicro {
    /// Creates the micro-benchmark.
    pub fn new(pattern: MicroPattern, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { pattern, scale, words: 1 << 20, passes: 3 },
            Scale::Test => Self { pattern, scale, words: 1 << 10, passes: 2 },
        }
    }

    /// Idle instructions modelled between accesses: retention-profiling
    /// micros write the pattern, *wait out a refresh period*, then read it
    /// back ([39]'s methodology) — they deliberately avoid refreshing the
    /// array through their own accesses. The large gap keeps the projected
    /// reuse time beyond any candidate `TREFP`.
    const IDLE_GAP: u64 = 64;

    fn value_pattern(&self) -> ValuePattern {
        match self.pattern {
            MicroPattern::Random => ValuePattern::Random,
            MicroPattern::Zeros => ValuePattern::Zeros,
            MicroPattern::Checkerboard => ValuePattern::Checkerboard,
        }
    }
}

impl Workload for DataPatternMicro {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        match self.pattern {
            MicroPattern::Random => "data-pattern(random)".to_string(),
            MicroPattern::Zeros => "data-pattern(zeros)".to_string(),
            MicroPattern::Checkerboard => "data-pattern(checker)".to_string(),
        }
    }

    fn threads(&self) -> u8 {
        1
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        StridedSweep {
            words: self.words,
            passes: self.passes,
            stride: 1,
            pattern: self.value_pattern(),
            gap: Self::IDLE_GAP,
        }
        .run(&mut SinkAdapter(sink), seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(1.0)
    }
}

/// Adapts `&mut dyn AccessSink` to the generic generator API.
struct SinkAdapter<'a>(&'a mut dyn AccessSink);

impl AccessSink for SinkAdapter<'_> {
    fn on_access(&mut self, access: wade_trace::MemAccess) {
        self.0.on_access(access);
    }

    fn on_instructions(&mut self, count: u64) {
        self.0.on_instructions(count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::Tracer;

    #[test]
    fn random_micro_maximises_entropy() {
        let micro = DataPatternMicro::new(MicroPattern::Random, Scale::Test);
        let mut tracer = Tracer::new();
        micro.run(&mut tracer, 1);
        assert!(tracer.report().entropy_bits > 9.0);
    }

    #[test]
    fn zeros_micro_minimises_entropy() {
        let micro = DataPatternMicro::new(MicroPattern::Zeros, Scale::Test);
        let mut tracer = Tracer::new();
        micro.run(&mut tracer, 1);
        let r = tracer.report();
        assert_eq!(r.entropy_bits, 0.0);
        assert_eq!(r.one_density, 0.0);
    }

    #[test]
    fn sweep_reuse_equals_footprint_scale() {
        let micro = DataPatternMicro::new(MicroPattern::Checkerboard, Scale::Test);
        let mut tracer = Tracer::new();
        micro.run(&mut tracer, 1);
        let r = tracer.report();
        // Sweep: every word re-touched once per pass; reuse distance ≈
        // footprint × instructions-per-access.
        assert!(r.mean_reuse_distance > r.unique_words as f64);
    }
}
