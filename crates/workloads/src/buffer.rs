//! Instrumented data buffers: the kernels' view of memory.

use wade_trace::{AccessSink, MemAccess};

/// Bump allocator handing out disjoint simulated address ranges, so that
/// multiple buffers of one workload occupy a realistic flat address space.
#[derive(Debug, Default)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// A fresh, empty address space starting at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves `words` 64-bit words, returning the base byte address
    /// (4 KiB aligned, like a page-grained allocator).
    pub fn alloc(&mut self, words: u64) -> u64 {
        let base = self.next;
        let bytes = words * 8;
        self.next = (base + bytes + 4095) & !4095;
        base
    }

    /// Total bytes reserved so far.
    pub fn reserved_bytes(&self) -> u64 {
        self.next
    }
}

/// A `Vec<u64>` whose every access is reported to an [`AccessSink`] — the
/// moral equivalent of running the kernel under DynamoRIO.
///
/// Floating-point helpers store IEEE-754 bit patterns, so written *values*
/// carry the true entropy of the computation (the paper's `H_DP` is
/// computed from exactly these stores).
#[derive(Debug, Clone)]
pub struct TracedBuffer {
    base: u64,
    data: Vec<u64>,
}

impl TracedBuffer {
    /// Allocates `words` zeroed words inside `space`.
    pub fn zeroed(space: &mut AddressSpace, words: usize) -> Self {
        let base = space.alloc(words as u64);
        Self { base, data: vec![0; words] }
    }

    /// Number of 64-bit words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Base byte address in the simulated address space.
    pub fn base(&self) -> u64 {
        self.base
    }

    fn addr(&self, index: usize) -> u64 {
        debug_assert!(index < self.data.len(), "index {index} out of bounds");
        self.base + (index as u64) * 8
    }

    /// Instrumented load of word `index` on logical thread `tid`.
    pub fn get(&self, sink: &mut (impl AccessSink + ?Sized), index: usize, tid: u8) -> u64 {
        sink.on_access(MemAccess::read(self.addr(index), tid));
        self.data[index]
    }

    /// Instrumented store of `value` to word `index` on thread `tid`.
    pub fn set(&mut self, sink: &mut (impl AccessSink + ?Sized), index: usize, value: u64, tid: u8) {
        sink.on_access(MemAccess::write(self.addr(index), value, tid));
        self.data[index] = value;
    }

    /// Instrumented load interpreted as `f64`.
    pub fn get_f64(&self, sink: &mut (impl AccessSink + ?Sized), index: usize, tid: u8) -> f64 {
        f64::from_bits(self.get(sink, index, tid))
    }

    /// Instrumented store of an `f64` bit pattern.
    pub fn set_f64(&mut self, sink: &mut (impl AccessSink + ?Sized), index: usize, value: f64, tid: u8) {
        self.set(sink, index, value.to_bits(), tid);
    }

    /// Un-instrumented peek (for test assertions; does not touch the sink).
    pub fn peek(&self, index: usize) -> u64 {
        self.data[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::Tracer;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc(100);
        let b = space.alloc(100);
        assert_eq!(a, 0);
        assert!(b >= 800);
        assert_eq!(b % 4096, 0);
        assert!(space.reserved_bytes() >= 1600);
    }

    #[test]
    fn buffer_reads_and_writes_are_traced() {
        let mut space = AddressSpace::new();
        let mut buf = TracedBuffer::zeroed(&mut space, 16);
        let mut tracer = Tracer::new();
        buf.set(&mut tracer, 3, 99, 0);
        assert_eq!(buf.get(&mut tracer, 3, 0), 99);
        let report = tracer.report();
        assert_eq!(report.mem_accesses, 2);
        assert_eq!(report.writes, 1);
        assert_eq!(report.unique_words, 1);
    }

    #[test]
    fn float_roundtrip_preserves_bits() {
        let mut space = AddressSpace::new();
        let mut buf = TracedBuffer::zeroed(&mut space, 4);
        let mut tracer = Tracer::new();
        buf.set_f64(&mut tracer, 0, 1.234567, 0);
        assert_eq!(buf.get_f64(&mut tracer, 0, 0), 1.234567);
    }

    #[test]
    fn distinct_buffers_have_distinct_addresses() {
        let mut space = AddressSpace::new();
        let a = TracedBuffer::zeroed(&mut space, 64);
        let b = TracedBuffer::zeroed(&mut space, 64);
        let mut tracer = Tracer::new();
        a.get(&mut tracer, 0, 0);
        b.get(&mut tracer, 0, 0);
        assert_eq!(tracer.report().unique_words, 2);
    }
}
