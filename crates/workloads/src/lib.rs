//! # wade-workloads — the benchmark substrate
//!
//! The paper characterizes DRAM while running Rodinia/Parsec
//! compute-intensive kernels (`backprop`, `nw`, `srad`, `kmeans`, `fmm`,
//! each with 1 and 8 threads), a caching workload (`memcached`) and
//! analytics kernels (`pagerank`, `bfs`, `bc`), plus `lulesh` and a
//! random-data-pattern micro-benchmark for the model-vs-conventional study
//! (Fig. 13).
//!
//! None of those binaries can run here, so this crate implements **small
//! but real versions of each algorithm** — an actual back-propagation pass,
//! an actual Needleman-Wunsch table fill, an actual BFS, … — instrumented
//! through [`wade_trace::AccessSink`]. The kernels produce genuine access
//! streams and genuine written values, so reuse distances, data entropy and
//! cache behaviour all *emerge from execution* rather than being synthetic
//! constants. Per-kernel work-per-access parameters are calibrated so the
//! extrapolated 8 GB `Treuse` lands near the paper's Table II (see
//! [`spec::DeployScale`]).
//!
//! ```
//! use wade_trace::Tracer;
//! use wade_workloads::{Workload, WorkloadId};
//!
//! let wl = WorkloadId::Backprop.instantiate(1, wade_workloads::Scale::Test);
//! let mut tracer = Tracer::new();
//! wl.run(&mut tracer, 42);
//! assert!(tracer.report().mem_accesses > 0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod backprop;
mod buffer;
mod fmm;
mod graph;
mod kmeans;
mod lulesh;
mod memcached;
mod micro;
mod nw;
mod spec;
mod srad;
mod suite;

pub use buffer::{AddressSpace, TracedBuffer};
pub use graph::{Bc, Bfs, CsrGraph, Pagerank};
pub use micro::MicroPattern;
pub use spec::{BoxedWorkload, DeployScale, Scale, Workload, WorkloadId};
pub use suite::{paper_suite, full_suite, micro_suite};

pub use backprop::Backprop;
pub use fmm::Fmm;
pub use kmeans::Kmeans;
pub use lulesh::{Lulesh, LuleshOpt};
pub use memcached::Memcached;
pub use micro::DataPatternMicro;
pub use nw::NeedlemanWunsch;
pub use srad::Srad;
