//! Rodinia `nw`: Needleman-Wunsch global sequence alignment.
//!
//! Fills the full dynamic-programming table (the real recurrence with match
//! /mismatch/gap scores), then traces back the optimal alignment. The table
//! is re-filled for several sequence pairs, giving the long full-table
//! reuse distances behind the paper's largest `Treuse` (10.93 s, Table II).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{paper_label, DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

const MATCH: i64 = 3;
const MISMATCH: i64 = -1;
const GAP_PENALTY: i64 = -2;

/// Needleman-Wunsch alignment kernel.
#[derive(Debug, Clone)]
pub struct NeedlemanWunsch {
    threads: u8,
    scale: Scale,
    seq_len: usize,
    pairs: usize,
}

impl NeedlemanWunsch {
    const GAP: u64 = 3;

    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, seq_len: 700, pairs: 2 },
            Scale::Test => Self { threads, scale, seq_len: 48, pairs: 2 },
        }
    }

    /// Aligns `pairs` random sequence pairs; returns the final alignment
    /// score of the last pair.
    fn align(&self, sink: &mut dyn AccessSink, seed: u64) -> i64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.seq_len;
        let mut space = AddressSpace::new();
        let mut table = TracedBuffer::zeroed(&mut space, (n + 1) * (n + 1));
        let mut seq_a = TracedBuffer::zeroed(&mut space, n);
        let mut seq_b = TracedBuffer::zeroed(&mut space, n);

        let mut final_score = 0;
        for _pair in 0..self.pairs {
            for i in 0..n {
                seq_a.set(sink, i, rng.gen_range(0..4u64), 0);
                seq_b.set(sink, i, rng.gen_range(0..4u64), 0);
                sink.on_instructions(1);
            }
            // Boundary conditions.
            for i in 0..=n {
                table.set(sink, i, (i as i64 * GAP_PENALTY) as u64, 0);
                table.set(sink, i * (n + 1), (i as i64 * GAP_PENALTY) as u64, 0);
                sink.on_instructions(2);
            }
            // Fill. Rows are distributed across threads in the wavefront
            // style of the Rodinia OpenMP version (block-cyclic rows; the
            // dependence pattern is preserved because we model access
            // traffic, not lock timing).
            for i in 1..=n {
                let tid = ((i - 1) % self.threads as usize) as u8;
                for j in 1..=n {
                    let a = seq_a.get(sink, i - 1, tid) as i64;
                    let b = seq_b.get(sink, j - 1, tid) as i64;
                    let diag = table.get(sink, (i - 1) * (n + 1) + (j - 1), tid) as i64;
                    let up = table.get(sink, (i - 1) * (n + 1) + j, tid) as i64;
                    let left = table.get(sink, i * (n + 1) + (j - 1), tid) as i64;
                    let score = if a == b { MATCH } else { MISMATCH };
                    let best = (diag + score).max(up + GAP_PENALTY).max(left + GAP_PENALTY);
                    table.set(sink, i * (n + 1) + j, best as u64, tid);
                    sink.on_instructions(Self::GAP);
                }
            }
            final_score = table.get(sink, n * (n + 1) + n, 0) as i64;

            // Traceback.
            let (mut i, mut j) = (n, n);
            while i > 0 && j > 0 {
                let here = table.get(sink, i * (n + 1) + j, 0) as i64;
                let diag = table.get(sink, (i - 1) * (n + 1) + (j - 1), 0) as i64;
                let a = seq_a.get(sink, i - 1, 0) as i64;
                let b = seq_b.get(sink, j - 1, 0) as i64;
                let score = if a == b { MATCH } else { MISMATCH };
                sink.on_instructions(4);
                if here == diag + score {
                    i -= 1;
                    j -= 1;
                } else if here == table.get(sink, (i - 1) * (n + 1) + j, 0) as i64 + GAP_PENALTY {
                    i -= 1;
                } else {
                    j -= 1;
                }
            }
        }
        final_score
    }
}

impl Workload for NeedlemanWunsch {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        paper_label("nw", self.threads)
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.align(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(if self.threads > 1 { 51.4 } else { 19.6 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn identical_sequences_score_perfectly() {
        // Direct recurrence check on a tiny fixed case: aligning a sequence
        // with itself scores len × MATCH.
        let n = 8;
        let mut space = AddressSpace::new();
        let mut table = TracedBuffer::zeroed(&mut space, (n + 1) * (n + 1));
        let seq: Vec<i64> = (0..n as i64).map(|i| i % 4).collect();
        let mut sink = NullSink;
        for i in 0..=n {
            table.set(&mut sink, i, (i as i64 * GAP_PENALTY) as u64, 0);
            table.set(&mut sink, i * (n + 1), (i as i64 * GAP_PENALTY) as u64, 0);
        }
        for i in 1..=n {
            for j in 1..=n {
                let score = if seq[i - 1] == seq[j - 1] { MATCH } else { MISMATCH };
                let diag = table.peek((i - 1) * (n + 1) + (j - 1)) as i64;
                let up = table.peek((i - 1) * (n + 1) + j) as i64;
                let left = table.peek(i * (n + 1) + (j - 1)) as i64;
                let best = (diag + score).max(up + GAP_PENALTY).max(left + GAP_PENALTY);
                table.set(&mut sink, i * (n + 1) + j, best as u64, 0);
            }
        }
        assert_eq!(table.peek(n * (n + 1) + n) as i64, n as i64 * MATCH);
    }

    #[test]
    fn alignment_score_is_bounded() {
        let nw = NeedlemanWunsch::new(1, Scale::Test);
        let score = nw.align(&mut NullSink, 3);
        let n = 48i64;
        assert!(score <= n * MATCH);
        assert!(score >= 2 * n * GAP_PENALTY);
    }

    #[test]
    fn table_dominates_footprint_with_long_reuse() {
        let nw = NeedlemanWunsch::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        nw.run(&mut tracer, 1);
        let r = tracer.report();
        // With 2 pairs the table is re-filled once: the mean reuse distance
        // must be a large fraction of the per-pair work.
        assert!(r.mean_reuse_distance > r.instructions as f64 / 100.0);
        assert!(r.unique_words as usize >= 49 * 49);
    }

    #[test]
    fn low_entropy_integer_data() {
        let nw = NeedlemanWunsch::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        nw.run(&mut tracer, 1);
        // Scores and 2-bit bases: far lower value entropy than float kernels.
        assert!(tracer.report().entropy_bits < 12.0);
    }
}
