//! `memcached` stand-in: an open-addressing key-value cache under
//! zipfian traffic.
//!
//! Real hash-table semantics (linear probing, get/set/evict) under the
//! skewed popularity that characterizes caching tiers. The hot keys are
//! re-touched every few thousand instructions, producing the shortest
//! reuse time of the suite (Table II: 0.09 s) and the paper's lowest WER.

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// Slots are (key, value) word pairs; key 0 = empty.
const SLOT_WORDS: usize = 2;

/// Key-value cache kernel.
#[derive(Debug, Clone)]
pub struct Memcached {
    threads: u8,
    scale: Scale,
    capacity: usize,
    keys: usize,
    ops: usize,
    get_fraction: f64,
}

impl Memcached {
    const GAP: u64 = 2;
    /// Kernel network-stack instructions per request: real memcached spends
    /// the bulk of each operation in syscalls/TCP processing, not touching
    /// object memory (see Palit et al. [60]). This keeps its DRAM activity
    /// an order of magnitude below the compute-intensive kernels, as on
    /// the paper's server.
    const NET_GAP: u64 = 500;

    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self {
                threads,
                scale,
                capacity: 1 << 19, // 512k slots
                keys: 120_000,
                ops: 1_200_000,
                get_fraction: 0.9,
            },
            Scale::Test => Self {
                threads,
                scale,
                capacity: 1 << 10,
                keys: 600,
                ops: 5_000,
                get_fraction: 0.9,
            },
        }
    }

    fn hash(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize & (self.capacity - 1)
    }

    fn zipf_key(&self, rng: &mut StdRng) -> u64 {
        // Bounded-Pareto inversion with exponent ≈0.99.
        let n = self.keys as f64;
        let a = 1.0 - 0.99;
        let u: f64 = rng.gen_range(0.0..1.0);
        let rank = ((n.powf(a) - 1.0) * u + 1.0).powf(1.0 / a);
        (rank.floor() as u64).clamp(1, self.keys as u64)
    }

    /// Runs the traffic; returns the hit rate for correctness checks.
    fn serve(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut space = AddressSpace::new();
        let mut table = TracedBuffer::zeroed(&mut space, self.capacity * SLOT_WORDS);

        let mut hits = 0u64;
        let mut gets = 0u64;
        for op in 0..self.ops {
            let tid = (op % self.threads as usize) as u8;
            // Receive + parse the request (network stack).
            sink.on_instructions(Self::NET_GAP);
            let key = self.zipf_key(&mut rng);
            let is_get = rng.gen_bool(self.get_fraction);
            let mut slot = self.hash(key);
            sink.on_instructions(Self::GAP + 2);

            // Linear probe (bounded).
            let mut found = false;
            for _probe in 0..16 {
                let stored = table.get(sink, slot * SLOT_WORDS, tid);
                sink.on_instructions(Self::GAP);
                if stored == key {
                    found = true;
                    break;
                }
                if stored == 0 {
                    break;
                }
                slot = (slot + 1) & (self.capacity - 1);
            }

            if is_get {
                gets += 1;
                if found {
                    hits += 1;
                    let _value = table.get(sink, slot * SLOT_WORDS + 1, tid);
                    sink.on_instructions(1);
                }
            } else {
                // Set: install key and a payload derived from the key (mixed
                // bit patterns — realistic mid-range entropy).
                table.set(sink, slot * SLOT_WORDS, key, tid);
                let payload = key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (op as u64).rotate_left(32);
                table.set(sink, slot * SLOT_WORDS + 1, payload, tid);
                sink.on_instructions(2);
            }
        }
        if gets == 0 {
            0.0
        } else {
            hits as f64 / gets as f64
        }
    }
}

impl Workload for Memcached {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        // The paper runs memcached only with 8 worker threads; no "(par)"
        // suffix is used there.
        "memcached".to_string()
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.serve(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        // Zipf traffic: hot-key reuse distances do not stretch with the
        // footprint, so the linear projection is strongly damped.
        DeployScale::with_reuse_scale(0.0128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn cache_warms_up_to_high_hit_rate() {
        let mc = Memcached::new(1, Scale::Test);
        let hit_rate = mc.serve(&mut NullSink, 7);
        // 10% sets over zipf keys: the hot head is resident quickly.
        assert!(hit_rate > 0.5, "hit rate {hit_rate}");
    }

    #[test]
    fn hot_keys_have_short_reuse() {
        let mc = Memcached::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        mc.run(&mut tracer, 1);
        let r = tracer.report();
        // Mean reuse distance far below total instructions (hot head).
        assert!(r.mean_reuse_distance < r.instructions as f64 / 20.0);
    }

    #[test]
    fn footprint_stays_bounded_by_capacity() {
        let mc = Memcached::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        mc.run(&mut tracer, 1);
        assert!(tracer.report().unique_words <= (1 << 10) * 2);
    }

    #[test]
    fn zipf_head_is_heavy() {
        let mc = Memcached::new(1, Scale::Test);
        let mut rng = StdRng::seed_from_u64(1);
        let head = (0..10_000).filter(|_| mc.zipf_key(&mut rng) <= 30).count();
        assert!(head > 2_000, "zipf head draws: {head}");
    }
}
