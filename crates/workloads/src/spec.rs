//! Workload identities, the `Workload` trait and deployment scaling.

use wade_trace::{AccessSink, StagingSink};

/// Problem-size preset: full-size runs for campaigns/benches, reduced sizes
/// for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs: kernels finish in milliseconds (CI/unit tests).
    Test,
    /// Standard inputs used by the characterization campaigns.
    Full,
}

/// Deployment-scale extrapolation constants (see ARCHITECTURE.md §7 "two-scale
/// simulation note").
///
/// The paper runs every benchmark with an 8 GB allocation for 2 hours; the
/// mini-kernels here run megabyte-scale footprints. Reuse *structure* comes
/// from the real mini execution; this struct records how to project it to
/// deployment scale: reuse distances of sweep-structured kernels grow
/// linearly with footprint, so
/// `Treuse(8 GB) ≈ D_reuse(mini) × (W_deploy / W_mini) × seconds-per-instr`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeployScale {
    /// Deployment footprint in 64-bit words (8 GB = 2³⁰ words).
    pub footprint_words: u64,
    /// Multiplier applied on top of the linear footprint projection.
    /// Captures how much of the kernel's reuse scales with the data size
    /// (1.0 = fully footprint-proportional, the sweep case) and absorbs
    /// residual calibration versus the paper's Table II.
    pub reuse_scale: f64,
}

impl DeployScale {
    /// The paper's 8 GB allocation with neutral reuse scaling.
    pub fn paper_default() -> Self {
        Self { footprint_words: 1 << 30, reuse_scale: 1.0 }
    }

    /// Same footprint with an explicit reuse multiplier.
    pub fn with_reuse_scale(reuse_scale: f64) -> Self {
        Self { reuse_scale, ..Self::paper_default() }
    }
}

/// A runnable, instrumented benchmark.
///
/// Implementors must be `Send + Sync` plain data (all kernels here are):
/// the profiling front-end fans a suite out across the shared rayon pool,
/// sharing the boxed workloads by reference (see [`BoxedWorkload`]).
pub trait Workload: Send + Sync {
    /// Display name matching the paper's labels (`"backprop"`,
    /// `"backprop(par)"`, …).
    fn name(&self) -> String;

    /// Logical threads used (1 or 8 in the paper).
    fn threads(&self) -> u8;

    /// The problem-size preset this instance was built with. Together with
    /// [`Workload::name`], [`Workload::threads`], the run seed,
    /// [`Workload::deploy_scale`] and [`Workload::cache_token`] this
    /// identifies a profiling run exactly — the profile-cache key one layer
    /// up is built from these.
    fn scale(&self) -> Scale;

    /// Extra discriminant for the profile-cache key. The built-in kernels
    /// are fully identified by (name, threads, scale, deploy scale), so the
    /// default is 0; a custom [`Workload`] whose behaviour varies beyond
    /// those fields (e.g. two parameterizations sharing one label) **must**
    /// override this with a value derived from its parameters, or campaigns
    /// in one process may serve it another instance's cached profile.
    fn cache_token(&self) -> u64 {
        0
    }

    /// Executes the kernel, reporting every access to `sink`.
    fn run(&self, sink: &mut dyn AccessSink, seed: u64);

    /// Executes the kernel through a reusable staging buffer: accesses are
    /// batched and delivered to `sink` in slices via
    /// [`AccessSink::on_accesses`] — one virtual-boundary call per batch
    /// instead of one per access, observationally identical to
    /// [`Workload::run`] (the staging contract preserves program order and
    /// instruction indexing exactly).
    fn run_buffered(&self, sink: &mut dyn AccessSink, seed: u64) {
        let mut staged = StagingSink::new(sink);
        self.run(&mut staged, seed);
        // Dropping the staging sink flushes the final partial batch and any
        // trailing instruction gap.
    }

    /// Deployment-scale extrapolation constants for this kernel.
    fn deploy_scale(&self) -> DeployScale {
        DeployScale::paper_default()
    }
}

/// A boxed, shareable workload: the unit suites are made of. `Send + Sync`
/// so a suite can be profiled in parallel on the shared rayon pool.
pub type BoxedWorkload = Box<dyn Workload>;

/// Enumeration of every benchmark family in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// Rodinia back-propagation (neural-network training).
    Backprop,
    /// Rodinia k-means clustering.
    Kmeans,
    /// Rodinia Needleman-Wunsch sequence alignment.
    Nw,
    /// Rodinia SRAD speckle-reducing stencil.
    Srad,
    /// PARSEC/SPLASH fast-multipole-style n-body.
    Fmm,
    /// memcached-style key-value caching.
    Memcached,
    /// PageRank over a power-law graph.
    Pagerank,
    /// Breadth-first search.
    Bfs,
    /// Betweenness centrality.
    Bc,
    /// LULESH-like hydrodynamics proxy, default `-O2` build.
    LuleshO2,
    /// LULESH-like proxy, aggressive `-F` build (fewer instructions per
    /// access — the compiler study of Fig. 13).
    LuleshF,
    /// Random data-pattern micro-benchmark (conventional retention
    /// profiling stressor).
    MicroRandom,
    /// All-zeros data-pattern micro-benchmark.
    MicroZeros,
    /// Checkerboard data-pattern micro-benchmark.
    MicroChecker,
}

impl WorkloadId {
    /// The ids of the paper's 9 benchmark families (Table II / Fig. 4).
    pub fn paper_families() -> [WorkloadId; 9] {
        [
            WorkloadId::Backprop,
            WorkloadId::Kmeans,
            WorkloadId::Nw,
            WorkloadId::Srad,
            WorkloadId::Fmm,
            WorkloadId::Memcached,
            WorkloadId::Pagerank,
            WorkloadId::Bfs,
            WorkloadId::Bc,
        ]
    }

    /// Whether the paper runs this family with both 1 and 8 threads
    /// (compute-intensive Rodinia/Parsec kernels only).
    pub fn has_parallel_variant(&self) -> bool {
        matches!(
            self,
            WorkloadId::Backprop
                | WorkloadId::Kmeans
                | WorkloadId::Nw
                | WorkloadId::Srad
                | WorkloadId::Fmm
        )
    }

    /// Instantiates the workload with the given thread count and scale.
    ///
    /// # Panics
    /// Panics if `threads` is 0.
    pub fn instantiate(&self, threads: u8, scale: Scale) -> BoxedWorkload {
        assert!(threads > 0, "at least one thread required");
        match self {
            WorkloadId::Backprop => Box::new(crate::Backprop::new(threads, scale)),
            WorkloadId::Kmeans => Box::new(crate::Kmeans::new(threads, scale)),
            WorkloadId::Nw => Box::new(crate::NeedlemanWunsch::new(threads, scale)),
            WorkloadId::Srad => Box::new(crate::Srad::new(threads, scale)),
            WorkloadId::Fmm => Box::new(crate::Fmm::new(threads, scale)),
            WorkloadId::Memcached => Box::new(crate::Memcached::new(threads, scale)),
            WorkloadId::Pagerank => Box::new(crate::Pagerank::new(threads, scale)),
            WorkloadId::Bfs => Box::new(crate::Bfs::new(threads, scale)),
            WorkloadId::Bc => Box::new(crate::Bc::new(threads, scale)),
            WorkloadId::LuleshO2 => {
                Box::new(crate::Lulesh::new(threads, scale, crate::LuleshOpt::O2))
            }
            WorkloadId::LuleshF => {
                Box::new(crate::Lulesh::new(threads, scale, crate::LuleshOpt::Aggressive))
            }
            WorkloadId::MicroRandom => {
                Box::new(crate::DataPatternMicro::new(crate::MicroPattern::Random, scale))
            }
            WorkloadId::MicroZeros => {
                Box::new(crate::DataPatternMicro::new(crate::MicroPattern::Zeros, scale))
            }
            WorkloadId::MicroChecker => {
                Box::new(crate::DataPatternMicro::new(crate::MicroPattern::Checkerboard, scale))
            }
        }
    }
}

impl core::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            WorkloadId::Backprop => "backprop",
            WorkloadId::Kmeans => "kmeans",
            WorkloadId::Nw => "nw",
            WorkloadId::Srad => "srad",
            WorkloadId::Fmm => "fmm",
            WorkloadId::Memcached => "memcached",
            WorkloadId::Pagerank => "pagerank",
            WorkloadId::Bfs => "bfs",
            WorkloadId::Bc => "bc",
            WorkloadId::LuleshO2 => "lulesh(O2)",
            WorkloadId::LuleshF => "lulesh(F)",
            WorkloadId::MicroRandom => "data-pattern(random)",
            WorkloadId::MicroZeros => "data-pattern(zeros)",
            WorkloadId::MicroChecker => "data-pattern(checker)",
        };
        f.write_str(s)
    }
}

/// Formats a benchmark label in the paper's style: `name` for 1 thread,
/// `name(par)` for the 8-thread variant.
pub(crate) fn paper_label(base: &str, threads: u8) -> String {
    if threads > 1 {
        format!("{base}(par)")
    } else {
        base.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_families_count() {
        assert_eq!(WorkloadId::paper_families().len(), 9);
        let parallel: Vec<_> =
            WorkloadId::paper_families().iter().filter(|w| w.has_parallel_variant()).cloned().collect();
        assert_eq!(parallel.len(), 5, "5 compute-intensive kernels run 1 & 8 threads");
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(paper_label("srad", 1), "srad");
        assert_eq!(paper_label("srad", 8), "srad(par)");
        assert_eq!(WorkloadId::LuleshO2.to_string(), "lulesh(O2)");
    }

    #[test]
    fn every_id_instantiates_and_runs() {
        use wade_trace::Tracer;
        let all = [
            WorkloadId::Backprop,
            WorkloadId::Kmeans,
            WorkloadId::Nw,
            WorkloadId::Srad,
            WorkloadId::Fmm,
            WorkloadId::Memcached,
            WorkloadId::Pagerank,
            WorkloadId::Bfs,
            WorkloadId::Bc,
            WorkloadId::LuleshO2,
            WorkloadId::LuleshF,
            WorkloadId::MicroRandom,
            WorkloadId::MicroZeros,
            WorkloadId::MicroChecker,
        ];
        for id in all {
            let wl = id.instantiate(1, Scale::Test);
            let mut tracer = Tracer::new();
            wl.run(&mut tracer, 7);
            let r = tracer.report();
            assert!(r.mem_accesses > 0, "{id} produced no accesses");
            assert!(r.instructions >= r.mem_accesses, "{id} instruction accounting");
        }
    }

    #[test]
    fn deploy_scale_defaults_to_8gb() {
        assert_eq!(DeployScale::paper_default().footprint_words, 1 << 30);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        WorkloadId::Backprop.instantiate(0, Scale::Test);
    }
}
