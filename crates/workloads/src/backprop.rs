//! Rodinia `backprop`: neural-network training by back-propagation.
//!
//! A real two-layer perceptron trained with SGD on synthetic samples. The
//! dominant access pattern — repeated sweeps over the weight matrices with a
//! multiply-accumulate between touches — is exactly what gives the original
//! benchmark its `Treuse ≈ 1.6 s` at 8 GB (Table II).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{paper_label, DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// Back-propagation trainer.
#[derive(Debug, Clone)]
pub struct Backprop {
    threads: u8,
    scale: Scale,
    input: usize,
    hidden: usize,
    output: usize,
    samples: usize,
    epochs: usize,
}

impl Backprop {
    /// Non-memory instructions modelled per weight access (multiply-add,
    /// index arithmetic).
    const GAP: u64 = 2;

    /// Creates the kernel at the given thread count and scale.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, input: 128, hidden: 64, output: 16, samples: 48, epochs: 3 },
            Scale::Test => Self { threads, scale, input: 16, hidden: 8, output: 4, samples: 6, epochs: 2 },
        }
    }

    fn train(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut space = AddressSpace::new();
        let mut w1 = TracedBuffer::zeroed(&mut space, self.input * self.hidden);
        let mut w2 = TracedBuffer::zeroed(&mut space, self.hidden * self.output);
        let mut hidden_act = TracedBuffer::zeroed(&mut space, self.hidden);
        let mut out_act = TracedBuffer::zeroed(&mut space, self.output);
        let mut inputs = TracedBuffer::zeroed(&mut space, self.samples * self.input);

        // Xavier-ish init: real float bit patterns give realistic H_DP.
        for i in 0..w1.len() {
            w1.set_f64(sink, i, rng.gen_range(-0.5..0.5), 0);
            sink.on_instructions(1);
        }
        for i in 0..w2.len() {
            w2.set_f64(sink, i, rng.gen_range(-0.5..0.5), 0);
            sink.on_instructions(1);
        }
        for i in 0..inputs.len() {
            inputs.set_f64(sink, i, rng.gen_range(0.0..1.0), 0);
            sink.on_instructions(1);
        }

        let lr = 0.1;
        let mut last_err = 0.0;
        for epoch in 0..self.epochs {
            for s in 0..self.samples {
                // Threads split the sample stream (data parallelism over a
                // shared model, as the Rodinia OpenMP version does).
                let tid = ((epoch * self.samples + s) % self.threads as usize) as u8;
                let target = if s % 2 == 0 { 0.9 } else { 0.1 };

                // Forward: hidden = sigmoid(W1ᵀ x).
                for h in 0..self.hidden {
                    let mut acc = 0.0;
                    for i in 0..self.input {
                        let x = inputs.get_f64(sink, s * self.input + i, tid);
                        let w = w1.get_f64(sink, i * self.hidden + h, tid);
                        acc += x * w;
                        sink.on_instructions(Self::GAP);
                    }
                    hidden_act.set_f64(sink, h, sigmoid(acc), tid);
                    sink.on_instructions(4);
                }
                // Forward: out = sigmoid(W2ᵀ hidden).
                for o in 0..self.output {
                    let mut acc = 0.0;
                    for h in 0..self.hidden {
                        let a = hidden_act.get_f64(sink, h, tid);
                        let w = w2.get_f64(sink, h * self.output + o, tid);
                        acc += a * w;
                        sink.on_instructions(Self::GAP);
                    }
                    out_act.set_f64(sink, o, sigmoid(acc), tid);
                    sink.on_instructions(4);
                }

                // Backward: output deltas, then weight updates.
                let mut out_delta = vec![0.0; self.output];
                for (o, d) in out_delta.iter_mut().enumerate() {
                    let y = out_act.get_f64(sink, o, tid);
                    *d = y * (1.0 - y) * (target - y);
                    last_err = (target - y).abs();
                    sink.on_instructions(5);
                }
                for h in 0..self.hidden {
                    let a = hidden_act.get_f64(sink, h, tid);
                    let mut hidden_err = 0.0;
                    for (o, d) in out_delta.iter_mut().enumerate() {
                        let w = w2.get_f64(sink, h * self.output + o, tid);
                        hidden_err += *d * w;
                        w2.set_f64(sink, h * self.output + o, w + lr * *d * a, tid);
                        sink.on_instructions(Self::GAP + 1);
                    }
                    let hidden_delta = a * (1.0 - a) * hidden_err;
                    for i in 0..self.input {
                        let x = inputs.get_f64(sink, s * self.input + i, tid);
                        let w = w1.get_f64(sink, i * self.hidden + h, tid);
                        w1.set_f64(sink, i * self.hidden + h, w + lr * hidden_delta * x, tid);
                        sink.on_instructions(Self::GAP + 1);
                    }
                }
            }
        }
        last_err
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Workload for Backprop {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        paper_label("backprop", self.threads)
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.train(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(if self.threads > 1 { 2.95 } else { 0.54 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn training_reduces_error() {
        // The network must actually learn: error after training below the
        // untrained ~0.5 gap.
        let bp = Backprop::new(1, Scale::Test);
        let mut sink = NullSink;
        let err = bp.train(&mut sink, 3);
        assert!(err < 0.5, "final error {err}");
    }

    #[test]
    fn weights_are_swept_repeatedly() {
        let bp = Backprop::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        bp.run(&mut tracer, 1);
        let r = tracer.report();
        // Each weight is touched once per sample per epoch at least.
        assert!(r.mean_reuse_distance > 0.0);
        assert!(r.mem_accesses > 10 * r.unique_words);
    }

    #[test]
    fn float_writes_carry_entropy() {
        let bp = Backprop::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        bp.run(&mut tracer, 1);
        assert!(tracer.report().entropy_bits > 4.0);
    }

    #[test]
    fn parallel_variant_uses_all_threads() {
        let bp = Backprop::new(8, Scale::Test);
        assert_eq!(bp.threads(), 8);
        assert_eq!(bp.name(), "backprop(par)");
        let mut soc = wade_memsys_stub::CountingSink::default();
        bp.run(&mut soc, 2);
        assert!(soc.tids.iter().filter(|&&t| t).count() >= 4, "threads used: {:?}", soc.tids);
    }

    /// Minimal sink counting which tids appear (avoids a dev-dependency on
    /// wade-memsys).
    mod wade_memsys_stub {
        use wade_trace::{AccessSink, MemAccess};

        #[derive(Default)]
        pub struct CountingSink {
            pub tids: [bool; 8],
        }

        impl AccessSink for CountingSink {
            fn on_access(&mut self, access: MemAccess) {
                self.tids[(access.tid % 8) as usize] = true;
            }
            fn on_instructions(&mut self, _count: u64) {}
        }
    }
}
