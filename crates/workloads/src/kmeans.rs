//! Rodinia `kmeans`: Lloyd's algorithm on 2-D points.
//!
//! The serial version accumulates cluster sums in shared accumulators; the
//! parallel version privatizes per-thread partial sums and merges them at
//! the end of each iteration — the real OpenMP structure, and the cause of
//! the paper's Table II inversion (parallel kmeans has *better* locality
//! and therefore a *higher* DRAM reuse time than the serial version).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{paper_label, DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// K-means clustering kernel.
#[derive(Debug, Clone)]
pub struct Kmeans {
    threads: u8,
    scale: Scale,
    points: usize,
    clusters: usize,
    iterations: usize,
}

impl Kmeans {
    const GAP: u64 = 1;

    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, points: 60_000, clusters: 12, iterations: 4 },
            Scale::Test => Self { threads, scale, points: 600, clusters: 4, iterations: 3 },
        }
    }

    /// Runs clustering; returns the final assignments' inertia (sum of
    /// squared distances) for correctness checks.
    fn cluster(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut space = AddressSpace::new();
        // Interleaved x/y coordinates.
        let mut pts = TracedBuffer::zeroed(&mut space, self.points * 2);
        let mut centroids = TracedBuffer::zeroed(&mut space, self.clusters * 2);
        // Accumulators: [sum_x, sum_y, count] per cluster; the parallel
        // variant gets one private set per thread.
        let acc_sets = if self.threads > 1 { self.threads as usize } else { 1 };
        let mut accums = TracedBuffer::zeroed(&mut space, acc_sets * self.clusters * 3);

        // Three well-separated gaussian-ish blobs plus noise.
        for p in 0..self.points {
            let blob = p % 3;
            let (cx, cy) = [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)][blob];
            pts.set_f64(sink, p * 2, cx + rng.gen_range(-1.0..1.0), 0);
            pts.set_f64(sink, p * 2 + 1, cy + rng.gen_range(-1.0..1.0), 0);
            sink.on_instructions(2);
        }
        for c in 0..self.clusters {
            let p = rng.gen_range(0..self.points);
            let x = pts.get_f64(sink, p * 2, 0);
            let y = pts.get_f64(sink, p * 2 + 1, 0);
            centroids.set_f64(sink, c * 2, x, 0);
            centroids.set_f64(sink, c * 2 + 1, y, 0);
            sink.on_instructions(3);
        }

        let mut inertia = 0.0;
        for _iter in 0..self.iterations {
            // Reset accumulators.
            for i in 0..accums.len() {
                accums.set_f64(sink, i, 0.0, 0);
                sink.on_instructions(1);
            }
            inertia = 0.0;
            // Assignment + accumulation. Threads take contiguous chunks
            // (the OpenMP static schedule), which is what improves locality
            // for the parallel version.
            let chunk = self.points.div_ceil(self.threads as usize);
            for t in 0..self.threads as usize {
                let tid = t as u8;
                let acc_base = if self.threads > 1 { t * self.clusters * 3 } else { 0 };
                for p in (t * chunk)..((t + 1) * chunk).min(self.points) {
                    let x = pts.get_f64(sink, p * 2, tid);
                    let y = pts.get_f64(sink, p * 2 + 1, tid);
                    let mut best = 0usize;
                    let mut best_d = f64::MAX;
                    for c in 0..self.clusters {
                        let cx = centroids.get_f64(sink, c * 2, tid);
                        let cy = centroids.get_f64(sink, c * 2 + 1, tid);
                        let d = (x - cx).powi(2) + (y - cy).powi(2);
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                        sink.on_instructions(Self::GAP + 2);
                    }
                    inertia += best_d;
                    let b = acc_base + best * 3;
                    let sx = accums.get_f64(sink, b, tid);
                    accums.set_f64(sink, b, sx + x, tid);
                    let sy = accums.get_f64(sink, b + 1, tid);
                    accums.set_f64(sink, b + 1, sy + y, tid);
                    let n = accums.get_f64(sink, b + 2, tid);
                    accums.set_f64(sink, b + 2, n + 1.0, tid);
                    sink.on_instructions(3);
                }
            }
            // Merge (parallel) and recompute centroids.
            for c in 0..self.clusters {
                let mut sx = 0.0;
                let mut sy = 0.0;
                let mut n = 0.0;
                for t in 0..acc_sets {
                    let b = t * self.clusters * 3 + c * 3;
                    sx += accums.get_f64(sink, b, 0);
                    sy += accums.get_f64(sink, b + 1, 0);
                    n += accums.get_f64(sink, b + 2, 0);
                    sink.on_instructions(3);
                }
                if n > 0.0 {
                    centroids.set_f64(sink, c * 2, sx / n, 0);
                    centroids.set_f64(sink, c * 2 + 1, sy / n, 0);
                }
                sink.on_instructions(4);
            }
        }
        inertia / self.points as f64
    }
}

impl Workload for Kmeans {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        paper_label("kmeans", self.threads)
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.cluster(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        // Centroid accesses dominate the reuse mix with very short
        // distances; the residual calibration places the serial version near
        // Table II's 0.17 s.
        DeployScale::with_reuse_scale(if self.threads > 1 { 3.2 } else { 0.17 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn clustering_finds_tight_blobs() {
        let km = Kmeans::new(1, Scale::Test);
        let inertia = km.cluster(&mut NullSink, 11);
        // Three well-separated blobs (centres ≥8 apart): converged Lloyd's
        // must land far below the ~30 inertia of a single-cluster solution,
        // even when a local minimum splits one blob.
        assert!(inertia < 10.0, "inertia {inertia}");
    }

    #[test]
    fn centroids_are_the_hot_set() {
        let km = Kmeans::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        km.run(&mut tracer, 1);
        let r = tracer.report();
        // Centroid re-reads per point make accesses far exceed footprint.
        assert!(r.mem_accesses > 5 * r.unique_words);
        // And the mean reuse distance is much shorter than a full sweep.
        assert!(r.mean_reuse_distance < r.instructions as f64 / 4.0);
    }

    #[test]
    fn parallel_version_privatizes_accumulators() {
        let serial = Kmeans::new(1, Scale::Test);
        let par = Kmeans::new(8, Scale::Test);
        let mut ts = Tracer::new();
        serial.run(&mut ts, 5);
        let mut tp = Tracer::new();
        par.run(&mut tp, 5);
        // Private accumulators enlarge the footprint slightly…
        assert!(tp.report().unique_words > ts.report().unique_words);
    }

    #[test]
    fn deterministic_per_seed() {
        let km = Kmeans::new(2, Scale::Test);
        let mut a = Tracer::new();
        km.run(&mut a, 9);
        let mut b = Tracer::new();
        km.run(&mut b, 9);
        assert_eq!(a.report(), b.report());
    }
}
