//! LULESH-like hydrodynamics proxy for the compiler-flag study (Fig. 13).
//!
//! A 3-D staggered-grid kernel: per step, element pressures are computed
//! from nodal state, forces gathered back to nodes, then positions
//! integrated. Two build variants model the paper's `-O2` vs `-F`
//! (aggressive) compilations: the aggressive build keeps re-used operands
//! in registers (fewer redundant loads) and schedules tighter code (fewer
//! non-memory instructions per access) — which *raises* its memory accesses
//! per cycle, the feature that drives WER up in the paper's model.

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// Compiler-optimisation variant of the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuleshOpt {
    /// Default optimisations (`-O2`): some operands re-loaded each use.
    O2,
    /// Aggressive optimisations (`-F`): register reuse, tighter schedule.
    Aggressive,
}

/// Hydrodynamics proxy kernel.
#[derive(Debug, Clone)]
pub struct Lulesh {
    threads: u8,
    scale: Scale,
    dim: usize,
    steps: usize,
    opt: LuleshOpt,
}

impl Lulesh {
    /// Creates the kernel with the given build variant.
    pub fn new(threads: u8, scale: Scale, opt: LuleshOpt) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, dim: 28, steps: 5, opt },
            Scale::Test => Self { threads, scale, dim: 8, steps: 3, opt },
        }
    }

    fn gap(&self) -> u64 {
        match self.opt {
            LuleshOpt::O2 => 6,
            LuleshOpt::Aggressive => 2,
        }
    }

    fn at(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.dim + y) * self.dim + x
    }

    /// Runs the hydro steps; returns total energy (smoke value).
    fn hydro(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.dim * self.dim * self.dim;
        let mut space = AddressSpace::new();
        let mut energy = TracedBuffer::zeroed(&mut space, n);
        let mut pressure = TracedBuffer::zeroed(&mut space, n);
        let mut velocity = TracedBuffer::zeroed(&mut space, n);
        let mut position = TracedBuffer::zeroed(&mut space, n);

        for i in 0..n {
            energy.set_f64(sink, i, 1.0 + rng.gen_range(0.0..0.1), 0);
            position.set_f64(sink, i, i as f64, 0);
            sink.on_instructions(2);
        }
        // A hot spot in the corner drives the shock.
        energy.set_f64(sink, 0, 10.0, 0);

        let gap = self.gap();
        let redundant_loads = matches!(self.opt, LuleshOpt::O2);
        for _step in 0..self.steps {
            // EOS: pressure from energy.
            for z in 0..self.dim {
                let tid = (z % self.threads as usize) as u8;
                for y in 0..self.dim {
                    for x in 0..self.dim {
                        let i = self.at(x, y, z);
                        let e = energy.get_f64(sink, i, tid);
                        if redundant_loads {
                            // -O2: the compiler re-loads energy for the
                            // second use instead of keeping it live.
                            let _e2 = energy.get_f64(sink, i, tid);
                        }
                        pressure.set_f64(sink, i, (2.0 / 3.0) * e, tid);
                        sink.on_instructions(gap);
                    }
                }
            }
            // Force gather + integration (6-point stencil on pressure).
            for z in 0..self.dim {
                let tid = (z % self.threads as usize) as u8;
                for y in 0..self.dim {
                    for x in 0..self.dim {
                        let i = self.at(x, y, z);
                        let pc = pressure.get_f64(sink, i, tid);
                        let px = pressure.get_f64(sink, self.at(x.saturating_sub(1), y, z), tid);
                        let py = pressure.get_f64(sink, self.at(x, y.saturating_sub(1), z), tid);
                        let pz = pressure.get_f64(sink, self.at(x, y, z.saturating_sub(1)), tid);
                        let force = (px - pc) + (py - pc) + (pz - pc);
                        let v = velocity.get_f64(sink, i, tid);
                        let v_new = v + 0.01 * force;
                        velocity.set_f64(sink, i, v_new, tid);
                        if redundant_loads {
                            let _v2 = velocity.get_f64(sink, i, tid);
                        }
                        let p = position.get_f64(sink, i, tid);
                        position.set_f64(sink, i, p + 0.01 * v_new, tid);
                        // Energy update from work done.
                        let e = energy.get_f64(sink, i, tid);
                        energy.set_f64(sink, i, (e - 0.001 * pc * v_new).max(0.0), tid);
                        sink.on_instructions(gap * 2);
                    }
                }
            }
        }

        let mut total = 0.0;
        for i in 0..n {
            total += energy.get_f64(sink, i, 0);
            sink.on_instructions(1);
        }
        total
    }
}

impl Workload for Lulesh {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        match self.opt {
            LuleshOpt::O2 => "lulesh(O2)".to_string(),
            LuleshOpt::Aggressive => "lulesh(F)".to_string(),
        }
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.hydro(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn energy_stays_finite_and_positive() {
        let l = Lulesh::new(1, Scale::Test, LuleshOpt::O2);
        let e = l.hydro(&mut NullSink, 3);
        assert!(e.is_finite());
        assert!(e > 0.0);
    }

    #[test]
    fn variants_compute_the_same_physics() {
        let o2 = Lulesh::new(1, Scale::Test, LuleshOpt::O2);
        let f = Lulesh::new(1, Scale::Test, LuleshOpt::Aggressive);
        let e1 = o2.hydro(&mut NullSink, 3);
        let e2 = f.hydro(&mut NullSink, 3);
        assert!((e1 - e2).abs() < 1e-9, "optimisation must not change results");
    }

    #[test]
    fn aggressive_build_is_memory_denser() {
        let o2 = Lulesh::new(1, Scale::Test, LuleshOpt::O2);
        let f = Lulesh::new(1, Scale::Test, LuleshOpt::Aggressive);
        let mut t1 = Tracer::new();
        o2.run(&mut t1, 1);
        let mut t2 = Tracer::new();
        f.run(&mut t2, 1);
        let r1 = t1.report();
        let r2 = t2.report();
        // -F: fewer instructions overall, fewer loads, higher intensity.
        assert!(r2.instructions < r1.instructions);
        assert!(r2.mem_accesses < r1.mem_accesses);
        assert!(r2.access_intensity() > r1.access_intensity());
    }

    #[test]
    fn labels_match_figure_13() {
        assert_eq!(Lulesh::new(8, Scale::Test, LuleshOpt::O2).name(), "lulesh(O2)");
        assert_eq!(Lulesh::new(8, Scale::Test, LuleshOpt::Aggressive).name(), "lulesh(F)");
    }
}
