//! Pre-assembled benchmark suites matching the paper's configurations.

use crate::spec::{BoxedWorkload, Scale, WorkloadId};

/// The paper's 14 characterization configurations (§IV-C, Figs. 4/7/8/9):
/// 5 compute-intensive kernels × {1, 8} threads, plus memcached, pagerank,
/// bfs and bc (8 threads each).
pub fn paper_suite(scale: Scale) -> Vec<BoxedWorkload> {
    let mut suite: Vec<BoxedWorkload> = Vec::new();
    for id in [
        WorkloadId::Backprop,
        WorkloadId::Kmeans,
        WorkloadId::Nw,
        WorkloadId::Srad,
        WorkloadId::Fmm,
    ] {
        suite.push(id.instantiate(1, scale));
        suite.push(id.instantiate(8, scale));
    }
    for id in [WorkloadId::Memcached, WorkloadId::Pagerank, WorkloadId::Bfs, WorkloadId::Bc] {
        suite.push(id.instantiate(8, scale));
    }
    suite
}

/// The paper suite plus the Fig. 13 extras: both lulesh builds and the
/// random data-pattern micro-benchmark.
pub fn full_suite(scale: Scale) -> Vec<BoxedWorkload> {
    let mut suite = paper_suite(scale);
    suite.push(WorkloadId::LuleshO2.instantiate(8, scale));
    suite.push(WorkloadId::LuleshF.instantiate(8, scale));
    suite.push(WorkloadId::MicroRandom.instantiate(1, scale));
    suite
}

/// Only the data-pattern micro-benchmarks (conventional profiling stressors).
pub fn micro_suite(scale: Scale) -> Vec<BoxedWorkload> {
    vec![
        WorkloadId::MicroRandom.instantiate(1, scale),
        WorkloadId::MicroZeros.instantiate(1, scale),
        WorkloadId::MicroChecker.instantiate(1, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_suite_has_14_configs() {
        let suite = paper_suite(Scale::Test);
        assert_eq!(suite.len(), 14);
        let names: HashSet<String> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 14, "names must be unique");
        assert!(names.contains("backprop"));
        assert!(names.contains("backprop(par)"));
        assert!(names.contains("memcached"));
        assert!(names.contains("bc"));
    }

    #[test]
    fn full_suite_adds_fig13_workloads() {
        let suite = full_suite(Scale::Test);
        assert_eq!(suite.len(), 17);
        let names: Vec<String> = suite.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"lulesh(O2)".to_string()));
        assert!(names.contains(&"lulesh(F)".to_string()));
        assert!(names.contains(&"data-pattern(random)".to_string()));
    }

    #[test]
    fn micro_suite_has_three_patterns() {
        assert_eq!(micro_suite(Scale::Test).len(), 3);
    }
}
