//! SPLASH-2 `fmm` stand-in: Barnes-Hut-style n-body force evaluation.
//!
//! Builds a real quadtree over the particles each step and walks it per
//! particle with the θ-criterion. Heavy per-access arithmetic (the GAP) and
//! tree-walk scattering give `fmm` its long reuse time and high
//! compute-per-byte, as in the paper (Table II: 8.88 s serial).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{paper_label, DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// Fields per particle: x, y, mass, fx, fy.
const P_FIELDS: usize = 5;
/// Fields per tree node: cx, cy, mass, children[4] (indices), is_leaf+particle.
const N_FIELDS: usize = 9;
const THETA: f64 = 0.6;

/// Barnes-Hut force-evaluation kernel.
#[derive(Debug, Clone)]
pub struct Fmm {
    threads: u8,
    scale: Scale,
    particles: usize,
    steps: usize,
}

/// Plain (untraced) tree node used during construction; the finished tree
/// is then serialized into the traced node buffer, as a real implementation
/// would allocate it in memory.
#[derive(Debug, Clone, Default)]
struct BuildNode {
    cx: f64,
    cy: f64,
    mass: f64,
    children: [i64; 4],
    leaf_particle: i64,
}

impl Fmm {
    const GAP: u64 = 5;

    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, particles: 20_000, steps: 2 },
            Scale::Test => Self { threads, scale, particles: 300, steps: 2 },
        }
    }

    /// Runs the n-body steps; returns total force magnitude (correctness
    /// smoke value).
    fn simulate(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.particles;
        let mut space = AddressSpace::new();
        let mut parts = TracedBuffer::zeroed(&mut space, n * P_FIELDS);
        // Quadtree nodes: at most 2n internal+leaf nodes for distinct points.
        let max_nodes = 4 * n + 16;
        let mut nodes = TracedBuffer::zeroed(&mut space, max_nodes * N_FIELDS);

        for p in 0..n {
            parts.set_f64(sink, p * P_FIELDS, rng.gen_range(0.0..1024.0), 0);
            parts.set_f64(sink, p * P_FIELDS + 1, rng.gen_range(0.0..1024.0), 0);
            parts.set_f64(sink, p * P_FIELDS + 2, rng.gen_range(0.5..2.0), 0);
            sink.on_instructions(2);
        }

        let mut total_force = 0.0;
        for _step in 0..self.steps {
            // --- Build the quadtree (in host memory, then serialize). ---
            let mut build: Vec<BuildNode> = vec![BuildNode { children: [-1; 4], leaf_particle: -1, ..Default::default() }];
            let mut bounds = vec![(0usize, 0.0f64, 0.0f64, 1024.0f64)]; // node, x0, y0, size
            for p in 0..n {
                let px = parts.get_f64(sink, p * P_FIELDS, 0);
                let py = parts.get_f64(sink, p * P_FIELDS + 1, 0);
                let pm = parts.get_f64(sink, p * P_FIELDS + 2, 0);
                sink.on_instructions(3);
                insert(&mut build, &mut bounds, p, px, py, pm, 0, 0.0, 0.0, 1024.0);
            }
            // Serialize to the traced buffer (bounded by capacity).
            let count = build.len().min(max_nodes);
            for (i, node) in build.iter().take(count).enumerate() {
                let b = i * N_FIELDS;
                nodes.set_f64(sink, b, node.cx, 0);
                nodes.set_f64(sink, b + 1, node.cy, 0);
                nodes.set_f64(sink, b + 2, node.mass, 0);
                for (k, &ch) in node.children.iter().enumerate() {
                    nodes.set(sink, b + 3 + k, ch as u64, 0);
                }
                nodes.set(sink, b + 7, node.leaf_particle as u64, 0);
                sink.on_instructions(4);
            }

            // --- Force evaluation: traced tree walks. ---
            total_force = 0.0;
            for p in 0..n {
                let tid = (p % self.threads as usize) as u8;
                let px = parts.get_f64(sink, p * P_FIELDS, tid);
                let py = parts.get_f64(sink, p * P_FIELDS + 1, tid);
                let (mut fx, mut fy) = (0.0, 0.0);
                // Explicit stack walk with θ-criterion over the traced nodes.
                let mut stack = vec![(0usize, 1024.0f64)];
                while let Some((ni, size)) = stack.pop() {
                    if ni >= count {
                        continue;
                    }
                    let b = ni * N_FIELDS;
                    let cx = nodes.get_f64(sink, b, tid);
                    let cy = nodes.get_f64(sink, b + 1, tid);
                    let mass = nodes.get_f64(sink, b + 2, tid);
                    sink.on_instructions(Self::GAP);
                    if mass <= 0.0 {
                        continue;
                    }
                    let dx = cx - px;
                    let dy = cy - py;
                    let d2 = (dx * dx + dy * dy).max(1e-6);
                    let d = d2.sqrt();
                    let leaf = nodes.get(sink, b + 7, tid) as i64;
                    if leaf >= 0 || size / d < THETA {
                        if leaf != p as i64 {
                            let f = mass / d2;
                            fx += f * dx / d;
                            fy += f * dy / d;
                        }
                        sink.on_instructions(Self::GAP);
                    } else {
                        for k in 0..4 {
                            let ch = nodes.get(sink, b + 3 + k, tid) as i64;
                            if ch >= 0 {
                                stack.push((ch as usize, size / 2.0));
                            }
                            sink.on_instructions(1);
                        }
                    }
                }
                parts.set_f64(sink, p * P_FIELDS + 3, fx, tid);
                parts.set_f64(sink, p * P_FIELDS + 4, fy, tid);
                total_force += (fx * fx + fy * fy).sqrt();
                sink.on_instructions(Self::GAP);
            }
        }
        total_force
    }
}

#[allow(clippy::too_many_arguments)]
fn insert(
    build: &mut Vec<BuildNode>,
    bounds: &mut Vec<(usize, f64, f64, f64)>,
    p: usize,
    px: f64,
    py: f64,
    pm: f64,
    node: usize,
    x0: f64,
    y0: f64,
    size: f64,
) {
    // Update centre of mass on the way down.
    let total = build[node].mass + pm;
    build[node].cx = (build[node].cx * build[node].mass + px * pm) / total;
    build[node].cy = (build[node].cy * build[node].mass + py * pm) / total;
    build[node].mass = total;

    if build[node].mass == pm && build[node].children == [-1; 4] {
        // First particle in this node: make it a leaf.
        build[node].leaf_particle = p as i64;
        return;
    }
    // If this was a leaf, push the resident particle down first.
    if build[node].leaf_particle >= 0 && size > 1e-3 {
        let resident = build[node].leaf_particle;
        build[node].leaf_particle = -1;
        let (rx, ry, rm) = (build[node].cx, build[node].cy, pm.max(0.5)); // approximation: reuse mass scale
        descend(build, bounds, resident as usize, rx, ry, rm, node, x0, y0, size);
    }
    if size > 1e-3 {
        descend(build, bounds, p, px, py, pm, node, x0, y0, size);
    }
}

#[allow(clippy::too_many_arguments)]
fn descend(
    build: &mut Vec<BuildNode>,
    bounds: &mut Vec<(usize, f64, f64, f64)>,
    p: usize,
    px: f64,
    py: f64,
    pm: f64,
    node: usize,
    x0: f64,
    y0: f64,
    size: f64,
) {
    let half = size / 2.0;
    let qx = if px >= x0 + half { 1 } else { 0 };
    let qy = if py >= y0 + half { 1 } else { 0 };
    let q = (qy * 2 + qx) as usize;
    let child = if build[node].children[q] < 0 {
        build.push(BuildNode { children: [-1; 4], leaf_particle: -1, ..Default::default() });
        let idx = build.len() - 1;
        build[node].children[q] = idx as i64;
        idx
    } else {
        build[node].children[q] as usize
    };
    let nx0 = x0 + qx as f64 * half;
    let ny0 = y0 + qy as f64 * half;
    bounds.push((child, nx0, ny0, half));
    insert(build, bounds, p, px, py, pm, child, nx0, ny0, half);
}

impl Workload for Fmm {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        paper_label("fmm", self.threads)
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.simulate(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(if self.threads > 1 { 5.1 } else { 2.62 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn forces_are_finite_and_nonzero() {
        let fmm = Fmm::new(1, Scale::Test);
        let f = fmm.simulate(&mut NullSink, 4);
        assert!(f.is_finite());
        assert!(f > 0.0);
    }

    #[test]
    fn two_body_attraction_points_inward() {
        // Direct check of the tree force on a two-particle system.
        let mut build =
            vec![BuildNode { children: [-1; 4], leaf_particle: -1, ..Default::default() }];
        let mut bounds = vec![];
        insert(&mut build, &mut bounds, 0, 100.0, 100.0, 1.0, 0, 0.0, 0.0, 1024.0);
        insert(&mut build, &mut bounds, 1, 900.0, 900.0, 1.0, 0, 0.0, 0.0, 1024.0);
        // Root centre of mass sits midway.
        assert!((build[0].cx - 500.0).abs() < 1.0);
        assert!((build[0].mass - 2.0).abs() < 1e-9);
        assert!(build.len() >= 3, "root plus two leaves");
    }

    #[test]
    fn tree_walk_scatters_accesses() {
        let fmm = Fmm::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        fmm.run(&mut tracer, 1);
        let r = tracer.report();
        assert!(r.mem_accesses > 10_000);
        // Heavy arithmetic: instructions far exceed accesses.
        assert!(r.instructions > 2 * r.mem_accesses);
    }

    #[test]
    fn parallel_label() {
        assert_eq!(Fmm::new(8, Scale::Test).name(), "fmm(par)");
    }
}
