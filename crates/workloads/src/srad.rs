//! Rodinia `srad`: speckle-reducing anisotropic diffusion.
//!
//! The real two-pass stencil: pass one computes the diffusion coefficient
//! from the local gradient, pass two updates the image. Each iteration
//! sweeps the whole grid, the classic stencil reuse pattern (Table II:
//! `Treuse ≈ 2.8 s`).

use crate::buffer::{AddressSpace, TracedBuffer};
use crate::spec::{paper_label, DeployScale, Scale, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_trace::AccessSink;

/// SRAD stencil kernel.
#[derive(Debug, Clone)]
pub struct Srad {
    threads: u8,
    scale: Scale,
    rows: usize,
    cols: usize,
    iterations: usize,
    lambda: f64,
}

impl Srad {
    const GAP: u64 = 4;

    /// Creates the kernel.
    pub fn new(threads: u8, scale: Scale) -> Self {
        match scale {
            Scale::Full => Self { threads, scale, rows: 448, cols: 448, iterations: 4, lambda: 0.5 },
            Scale::Test => Self { threads, scale, rows: 24, cols: 24, iterations: 3, lambda: 0.5 },
        }
    }

    fn at(&self, r: usize, c: usize) -> usize {
        r * self.cols + c
    }

    /// Runs diffusion; returns the final image mean for correctness checks.
    fn diffuse(&self, sink: &mut dyn AccessSink, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (rows, cols) = (self.rows, self.cols);
        let mut space = AddressSpace::new();
        let mut image = TracedBuffer::zeroed(&mut space, rows * cols);
        let mut coeff = TracedBuffer::zeroed(&mut space, rows * cols);

        for i in 0..rows * cols {
            image.set_f64(sink, i, 100.0 + rng.gen_range(-20.0..20.0), 0);
            sink.on_instructions(1);
        }

        for _iter in 0..self.iterations {
            // Pass 1: diffusion coefficient from local statistics.
            for r in 0..rows {
                let tid = (r % self.threads as usize) as u8;
                for c in 0..cols {
                    let here = image.get_f64(sink, self.at(r, c), tid);
                    let north = image.get_f64(sink, self.at(r.saturating_sub(1), c), tid);
                    let south = image.get_f64(sink, self.at((r + 1).min(rows - 1), c), tid);
                    let west = image.get_f64(sink, self.at(r, c.saturating_sub(1)), tid);
                    let east = image.get_f64(sink, self.at(r, (c + 1).min(cols - 1)), tid);
                    let grad2 = ((north - here).powi(2)
                        + (south - here).powi(2)
                        + (west - here).powi(2)
                        + (east - here).powi(2))
                        / (here * here).max(1e-9);
                    let lap = (north + south + west + east - 4.0 * here) / here.max(1e-9);
                    let q = (0.5 * grad2 - 0.0625 * lap * lap) / (1.0 + 0.25 * lap).powi(2).max(1e-9);
                    let cval = 1.0 / (1.0 + q.max(0.0));
                    coeff.set_f64(sink, self.at(r, c), cval.clamp(0.0, 1.0), tid);
                    sink.on_instructions(Self::GAP * 2);
                }
            }
            // Pass 2: divergence update.
            for r in 0..rows {
                let tid = (r % self.threads as usize) as u8;
                for c in 0..cols {
                    let here = image.get_f64(sink, self.at(r, c), tid);
                    let cn = coeff.get_f64(sink, self.at(r.saturating_sub(1), c), tid);
                    let cs = coeff.get_f64(sink, self.at((r + 1).min(rows - 1), c), tid);
                    let cw = coeff.get_f64(sink, self.at(r, c.saturating_sub(1)), tid);
                    let ce = coeff.get_f64(sink, self.at(r, (c + 1).min(cols - 1)), tid);
                    let n = image.get_f64(sink, self.at(r.saturating_sub(1), c), tid);
                    let s = image.get_f64(sink, self.at((r + 1).min(rows - 1), c), tid);
                    let w = image.get_f64(sink, self.at(r, c.saturating_sub(1)), tid);
                    let e = image.get_f64(sink, self.at(r, (c + 1).min(cols - 1)), tid);
                    let div = cn * (n - here) + cs * (s - here) + cw * (w - here) + ce * (e - here);
                    image.set_f64(sink, self.at(r, c), here + 0.25 * self.lambda * div, tid);
                    sink.on_instructions(Self::GAP);
                }
            }
        }

        let mut sum = 0.0;
        for i in 0..rows * cols {
            sum += image.get_f64(sink, i, 0);
            sink.on_instructions(1);
        }
        sum / (rows * cols) as f64
    }
}

impl Workload for Srad {
    fn scale(&self) -> Scale {
        self.scale
    }

    fn name(&self) -> String {
        paper_label("srad", self.threads)
    }

    fn threads(&self) -> u8 {
        self.threads
    }

    fn run(&self, sink: &mut dyn AccessSink, seed: u64) {
        self.diffuse(sink, seed);
    }

    fn deploy_scale(&self) -> DeployScale {
        DeployScale::with_reuse_scale(if self.threads > 1 { 8.3 } else { 2.22 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::{NullSink, Tracer};

    #[test]
    fn diffusion_preserves_mean_roughly() {
        let srad = Srad::new(1, Scale::Test);
        let mean = srad.diffuse(&mut NullSink, 5);
        // Diffusion smooths but does not shift the 100-level image much.
        assert!((mean - 100.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn diffusion_reduces_variance() {
        // Run the same image twice: once 0 iterations (just init+sum), once
        // with smoothing. Compare neighbouring-pixel deltas via entropy of
        // values is unreliable; instead check smoothing directly on a tiny
        // hand-rolled case through the public kernel with more iterations
        // producing a mean closer to 100.
        let rough = Srad { threads: 1, scale: Scale::Test, rows: 24, cols: 24, iterations: 1, lambda: 0.5 };
        let smooth = Srad { threads: 1, scale: Scale::Test, rows: 24, cols: 24, iterations: 6, lambda: 0.5 };
        let m1 = rough.diffuse(&mut NullSink, 9);
        let m2 = smooth.diffuse(&mut NullSink, 9);
        assert!((m2 - 100.0).abs() <= (m1 - 100.0).abs() + 0.5);
    }

    #[test]
    fn stencil_sweeps_whole_grid() {
        let srad = Srad::new(1, Scale::Test);
        let mut tracer = Tracer::new();
        srad.run(&mut tracer, 2);
        let r = tracer.report();
        assert!(r.unique_words >= (24 * 24 * 2) as u64);
        // 9+ touches per cell per iteration.
        assert!(r.mem_accesses > 9 * 24 * 24);
    }

    #[test]
    fn parallel_rows_use_threads() {
        let srad = Srad::new(8, Scale::Test);
        assert_eq!(srad.name(), "srad(par)");
        let mut tracer = Tracer::new();
        srad.run(&mut tracer, 2);
        assert!(tracer.report().mem_accesses > 0);
    }
}
