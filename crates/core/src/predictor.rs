//! Leave-one-workload-out accuracy evaluation (Figs. 11 and 12).
//!
//! The paper's accuracy results are a *grid*: every model family × input
//! feature set × target (per-rank WER, server PUE), each cell
//! cross-validated leave-one-workload-out. [`EvalGrid`] evaluates that
//! whole grid in **one dispatch** on the shared rayon pool (fold units fan
//! out through `wade_ml::EvalGrid`, trained models are memoized per
//! `(model, target dataset, held-out workload)` key) and serves every
//! consumer — `fig11_wer_accuracy`, `fig12_pue_accuracy`,
//! `table3_feature_sets`, `repro_all` — from the same evaluation instead
//! of three independent re-trainings. Results are byte-identical at any
//! thread count (`tests/ml_parallel.rs`) and to the historical
//! fold-at-a-time loops ([`evaluate_wer_accuracy`] /
//! [`evaluate_pue_accuracy`] are now thin single-cell views of the grid).

use crate::campaign::CampaignData;
use crate::collect::{build_pue_dataset, build_wer_dataset};
use crate::model::{AnyModel, MlKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wade_dram::RANK_COUNT;
use wade_features::FeatureSet;
use wade_ml::metrics::{mean_absolute_error_percent, mean_percentage_error};
use wade_ml::{Dataset, GroupCvOutcome, SharedModel};
use wade_store::ArtifactStore;

/// The artifact kind of persisted trained fold models in a
/// [`wade_store::ArtifactStore`].
pub const MODEL_KIND: &str = "model";

/// The canonical store key of one trained fold model: trainer
/// configuration ([`MlKind`] + [`crate::TRAINER_CONFIG_VERSION`]), the
/// content fingerprint of the training dataset (which folds in the
/// campaign data, the feature set, the target and every protocol filter),
/// and the held-out group of the fold (empty = trained on all samples).
pub(crate) fn model_store_key(kind: MlKind, dataset_id: &str, fold: &str) -> String {
    format!("model|trainer={}|dataset={}|fold={}", kind.store_tag(), dataset_id, fold)
}

/// Dataset identity inside model store keys. Unlike the campaign/profile
/// keys, the dataset is far too large to embed verbatim, so this is the
/// one key component that rests on hashing: the grid slot (feature set ×
/// rank/PUE target), sample count, group count and input dimension stay
/// verbatim, and the content itself is covered by two
/// independently-salted FxHash64 passes. A wrong hit therefore needs two
/// datasets agreeing on every verbatim discriminator *and* colliding
/// under both salted hashes — FxHash is not cryptographic, so this is a
/// practical bound, not a proof (ARCHITECTURE.md §11 states the caveat).
///
/// Returns `None` if the dataset fails to serialize; the affected cell
/// then trains in-process without store persistence instead of aborting
/// the whole grid.
pub(crate) fn dataset_id(slot: u64, ds: &Dataset) -> Option<String> {
    let json = serde_json::to_string(ds).ok()?;
    let lo = wade_store::fingerprint64_salted("wade-dataset-a|", &json);
    let hi = wade_store::fingerprint64_salted("wade-dataset-b|", &json);
    Some(format!(
        "slot{slot}:n{}:g{}:d{}@{hi:016x}{lo:016x}",
        ds.len(),
        ds.groups().len(),
        ds.dim(),
    ))
}

/// Accuracy summary of one (learner, feature set) combination.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Learner evaluated.
    pub kind: MlKind,
    /// Feature set used.
    pub set: FeatureSet,
    /// Mean percentage error per DIMM/rank (Fig. 11a–c bars). `None` for
    /// ranks without enough measurable samples.
    pub per_rank: Vec<Option<f64>>,
    /// Mean percentage error per application (Fig. 11d–f bars).
    pub per_workload: Vec<(String, f64)>,
    /// Grand average over ranks (the paper's headline numbers).
    pub average: f64,
}

/// The shared model-evaluation grid: every requested (learner × feature
/// set) cell for the WER and PUE targets, evaluated in one parallel
/// dispatch over the campaign data (module docs have the full contract).
pub struct EvalGrid {
    wer: HashMap<(MlKind, FeatureSet), AccuracyReport>,
    pue: HashMap<(MlKind, FeatureSet), f64>,
    trainings: usize,
    cache_hits: usize,
    store_hits: usize,
}

/// Dataset memo key of (set, rank) WER cells / the PUE cell, stable across
/// grids: 16 slots per feature set, slot 15 = PUE.
const _: () = assert!(RANK_COUNT <= 15, "rank keys would collide with the PUE slot");

pub(crate) fn wer_key(set: FeatureSet, rank: usize) -> u64 {
    set_index(set) * 16 + rank as u64
}

pub(crate) fn pue_key(set: FeatureSet) -> u64 {
    set_index(set) * 16 + 15
}

fn set_index(set: FeatureSet) -> u64 {
    FeatureSet::ALL.iter().position(|&s| s == set).expect("unknown feature set") as u64
}

impl EvalGrid {
    /// Evaluates the full paper grid — all three learners × all three
    /// input sets × both targets — in one pool dispatch, persisting fold
    /// models through the process-wide artifact store when one is
    /// installed ([`wade_store::global`]).
    pub fn evaluate(data: &CampaignData) -> Self {
        Self::evaluate_targets(data, &MlKind::ALL, &FeatureSet::ALL, true, true)
    }

    /// Evaluates a sub-grid (the requested learners × sets; WER and/or PUE
    /// targets) against the process-wide store, if any.
    /// [`EvalGrid::evaluate`] is the full-grid convenience;
    /// [`EvalGrid::evaluate_targets_with`] pins an explicit store.
    pub fn evaluate_targets(
        data: &CampaignData,
        kinds: &[MlKind],
        sets: &[FeatureSet],
        wer: bool,
        pue: bool,
    ) -> Self {
        Self::evaluate_targets_with(wade_store::global(), data, kinds, sets, wer, pue)
    }

    /// [`EvalGrid::evaluate_targets`] with an explicit model store
    /// (`None` = purely in-process, the historical behaviour). Trained
    /// fold models are keyed by (trainer config, dataset content
    /// fingerprint, held-out group); a store hit deserializes a
    /// bit-identically-predicting [`AnyModel`] instead of training, so a
    /// warm-store evaluation performs **zero** trainings
    /// ([`EvalGrid::trainings`] / [`EvalGrid::store_hits`] expose the
    /// split) while producing byte-identical reports — asserted by
    /// `tests/artifact_store.rs`.
    pub fn evaluate_targets_with(
        store: Option<Arc<ArtifactStore>>,
        data: &CampaignData,
        kinds: &[MlKind],
        sets: &[FeatureSet],
        wer: bool,
        pue: bool,
    ) -> Self {
        // Build the datasets first: the trainer closures need the complete
        // dataset-fingerprint table to address persisted models. Datasets
        // failing the guard are simply not registered; they surface as
        // absent fold entries, which the assembly below reads back as
        // `per_rank: None` / a `NaN` PUE error. The guards replicate the
        // historical evaluation protocol exactly: datasets need ≥ 6
        // samples over ≥ 3 workloads, folds need ≥ 4 training samples.
        let mut datasets: Vec<(u64, Dataset)> = Vec::new();
        for &set in sets {
            if wer {
                for rank in 0..RANK_COUNT {
                    let ds = build_wer_dataset(data, set, rank);
                    if ds.len() >= 6 && ds.groups().len() >= 3 {
                        datasets.push((wer_key(set, rank), ds));
                    }
                }
            }
            if pue {
                let ds = build_pue_dataset(data, set);
                if ds.len() >= 6 && ds.groups().len() >= 3 {
                    datasets.push((pue_key(set), ds));
                }
            }
        }
        // Dataset identities (slot key → verbatim discriminators + content
        // hash), only paid for when a store is in play.
        let fingerprints: Arc<HashMap<u64, String>> = Arc::new(if store.is_some() {
            datasets
                .iter()
                .filter_map(|(k, ds)| dataset_id(*k, ds).map(|id| (*k, id)))
                .collect()
        } else {
            HashMap::new()
        });

        let trainings = Arc::new(AtomicUsize::new(0));
        let store_hits = Arc::new(AtomicUsize::new(0));
        let mut grid = wade_ml::EvalGrid::with_min_train(4);
        for &kind in kinds {
            let store = store.clone();
            let fingerprints = fingerprints.clone();
            let trainings = trainings.clone();
            let store_hits = store_hits.clone();
            grid.add_trainer(
                kind.grid_key(),
                Box::new(
                    move |key: &wade_ml::ModelKey, x: &[Vec<f64>], y: &[f64]| {
                        let Some(store) = store.as_deref() else {
                            trainings.fetch_add(1, Ordering::Relaxed);
                            return kind.train_shared(x, y);
                        };
                        // A dataset without a registered fingerprint (its
                        // identity failed to serialize) trains in-process —
                        // graceful degradation, never a panic mid-grid.
                        let Some(ds_id) = fingerprints.get(&key.dataset) else {
                            trainings.fetch_add(1, Ordering::Relaxed);
                            return kind.train_shared(x, y);
                        };
                        let skey = model_store_key(kind, ds_id, &key.fold);
                        if let Some(model) = store.get::<AnyModel>(MODEL_KIND, &skey) {
                            store_hits.fetch_add(1, Ordering::Relaxed);
                            return Arc::new(model) as SharedModel;
                        }
                        trainings.fetch_add(1, Ordering::Relaxed);
                        let model = kind.train_any(x, y);
                        // Best effort: an unwritable store degrades to
                        // train-every-process, never to failure.
                        let _ = store.put(MODEL_KIND, &skey, &model);
                        Arc::new(model) as SharedModel
                    },
                ),
            );
        }
        for (key, ds) in datasets {
            grid.add_dataset(key, ds);
        }

        // One dispatch over every (learner, dataset, fold) unit.
        let cells = grid.evaluate();
        let mut folds: HashMap<(u64, u64), Vec<GroupCvOutcome>> = HashMap::new();
        for cell in cells {
            folds.insert((cell.trainer, cell.dataset), cell.folds);
        }

        let mut wer_reports = HashMap::new();
        let mut pue_errors = HashMap::new();
        for &kind in kinds {
            for &set in sets {
                if wer {
                    let report = assemble_wer_report(kind, set, &folds);
                    wer_reports.insert((kind, set), report);
                }
                if pue {
                    let err = match folds.get(&(kind.grid_key(), pue_key(set))) {
                        Some(pue_folds) => assemble_pue_error(pue_folds),
                        None => f64::NAN,
                    };
                    pue_errors.insert((kind, set), err);
                }
            }
        }
        Self {
            wer: wer_reports,
            pue: pue_errors,
            trainings: trainings.load(Ordering::Relaxed),
            cache_hits: grid.cache().hits(),
            store_hits: store_hits.load(Ordering::Relaxed),
        }
    }

    /// The WER accuracy report of one evaluated cell (Fig. 11's view).
    ///
    /// # Panics
    /// Panics if the cell was outside the evaluated sub-grid.
    pub fn wer_report(&self, kind: MlKind, set: FeatureSet) -> &AccuracyReport {
        self.wer
            .get(&(kind, set))
            .unwrap_or_else(|| panic!("WER cell {kind}/{set} not evaluated by this grid"))
    }

    /// The PUE error of one evaluated cell in percentage points (Fig. 12's
    /// axis); `NaN` when the campaign lacked trainable PUE samples.
    ///
    /// # Panics
    /// Panics if the cell was outside the evaluated sub-grid.
    pub fn pue_error(&self, kind: MlKind, set: FeatureSet) -> f64 {
        *self
            .pue
            .get(&(kind, set))
            .unwrap_or_else(|| panic!("PUE cell {kind}/{set} not evaluated by this grid"))
    }

    /// Number of fold models actually trained during the dispatch (store
    /// hits are not trainings; a fully warm store reports 0 here).
    pub fn trainings(&self) -> usize {
        self.trainings
    }

    /// Number of fold models served from the in-process memo instead of
    /// re-trained.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Number of fold models deserialized from the artifact store instead
    /// of trained.
    pub fn store_hits(&self) -> usize {
        self.store_hits
    }
}

/// Folds → Fig. 11 report, replicating the historical serial loop: rank
/// errors in (rank, held-out group) order, workload errors aggregated
/// rank-major in first-appearance order, linear-space MPE.
fn assemble_wer_report(
    kind: MlKind,
    set: FeatureSet,
    folds: &HashMap<(u64, u64), Vec<GroupCvOutcome>>,
) -> AccuracyReport {
    let mut per_rank: Vec<Option<f64>> = Vec::with_capacity(RANK_COUNT);
    let mut workload_errs: Vec<(String, Vec<f64>)> = Vec::new();
    for rank in 0..RANK_COUNT {
        let Some(rank_folds) = folds.get(&(kind.grid_key(), wer_key(set, rank))) else {
            per_rank.push(None);
            continue;
        };
        let mut rank_errs = Vec::new();
        for fold in rank_folds {
            // Predictions and targets are log₁₀(WER); the paper reports the
            // MPE of the *linear* rate.
            let preds: Vec<f64> = fold.predictions.iter().map(|p| 10f64.powf(*p)).collect();
            let actuals: Vec<f64> = fold.actuals.iter().map(|t| 10f64.powf(*t)).collect();
            let mpe = mean_percentage_error(&preds, &actuals);
            rank_errs.push(mpe);
            match workload_errs.iter_mut().find(|(w, _)| *w == fold.group) {
                Some((_, v)) => v.push(mpe),
                None => workload_errs.push((fold.group.clone(), vec![mpe])),
            }
        }
        per_rank.push(if rank_errs.is_empty() {
            None
        } else {
            Some(rank_errs.iter().sum::<f64>() / rank_errs.len() as f64)
        });
    }

    let trained: Vec<f64> = per_rank.iter().flatten().copied().collect();
    let average = if trained.is_empty() {
        f64::NAN
    } else {
        trained.iter().sum::<f64>() / trained.len() as f64
    };
    let per_workload = workload_errs
        .into_iter()
        .map(|(w, errs)| {
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            (w, mean)
        })
        .collect();
    AccuracyReport { kind, set, per_rank, per_workload, average }
}

/// Folds → Fig. 12 number: per-fold MAE of the clamped probability, in
/// percentage points, averaged over folds.
fn assemble_pue_error(folds: &[GroupCvOutcome]) -> f64 {
    let errs: Vec<f64> = folds
        .iter()
        .map(|fold| {
            let preds: Vec<f64> =
                fold.predictions.iter().map(|p| p.clamp(0.0, 1.0)).collect();
            mean_absolute_error_percent(&preds, &fold.actuals)
        })
        .collect();
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

/// Evaluates WER prediction accuracy with the paper's protocol: per rank,
/// leave one workload's samples out, train on the rest, predict the
/// held-out samples, report the mean percentage error of the *linear* WER
/// (predictions and targets are log₁₀-space internally).
///
/// A single-cell view of [`EvalGrid`]; evaluating many cells through one
/// [`EvalGrid::evaluate`] shares the dispatch and the model memo.
pub fn evaluate_wer_accuracy(data: &CampaignData, kind: MlKind, set: FeatureSet) -> AccuracyReport {
    EvalGrid::evaluate_targets(data, &[kind], &[set], true, false).wer_report(kind, set).clone()
}

/// Evaluates PUE prediction accuracy: leave-one-workload-out on the
/// server-level PUE dataset; error in percentage points (Fig. 12's axis).
///
/// A single-cell view of [`EvalGrid`], like [`evaluate_wer_accuracy`].
pub fn evaluate_pue_accuracy(data: &CampaignData, kind: MlKind, set: FeatureSet) -> f64 {
    EvalGrid::evaluate_targets(data, &[kind], &[set], false, true).pue_error(kind, set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::server::SimulatedServer;
    use wade_workloads::{Scale, WorkloadId};

    fn data() -> CampaignData {
        let suite = vec![
            WorkloadId::Backprop.instantiate(1, Scale::Test),
            WorkloadId::Nw.instantiate(1, Scale::Test),
            WorkloadId::Memcached.instantiate(8, Scale::Test),
            WorkloadId::Srad.instantiate(8, Scale::Test),
            WorkloadId::Kmeans.instantiate(1, Scale::Test),
        ];
        Campaign::new(SimulatedServer::with_seed(11), CampaignConfig::quick()).collect(&suite, 4)
    }

    #[test]
    fn wer_accuracy_report_is_well_formed() {
        let d = data();
        let report = evaluate_wer_accuracy(&d, MlKind::Knn, FeatureSet::Set1);
        assert_eq!(report.per_rank.len(), RANK_COUNT);
        assert!(report.average.is_finite(), "no rank trained");
        assert!(report.average >= 0.0);
        assert!(!report.per_workload.is_empty());
    }

    #[test]
    fn pue_accuracy_is_bounded() {
        let d = data();
        let err = evaluate_pue_accuracy(&d, MlKind::Knn, FeatureSet::Set2);
        if err.is_finite() {
            assert!((0.0..=100.0).contains(&err), "PUE error {err}");
        }
    }

    #[test]
    fn knn_beats_the_constant_baseline_shape() {
        // The workload-aware model must out-predict a workload-unaware
        // constant (per-op mean) by a clear margin — the §VI-C claim.
        let d = data();
        let knn = evaluate_wer_accuracy(&d, MlKind::Knn, FeatureSet::Set1);
        assert!(knn.average < 200.0, "KNN average MPE {}", knn.average);
    }

    #[test]
    fn grid_cells_match_the_single_cell_views() {
        // The shared grid and the historical per-cell entry points must be
        // the same numbers, bit for bit.
        let d = data();
        let grid = EvalGrid::evaluate(&d);
        for kind in [MlKind::Knn, MlKind::Rdf] {
            let solo = evaluate_wer_accuracy(&d, kind, FeatureSet::Set1);
            let cell = grid.wer_report(kind, FeatureSet::Set1);
            assert_eq!(solo.average.to_bits(), cell.average.to_bits());
            assert_eq!(solo.per_workload, cell.per_workload);
            let pue_solo = evaluate_pue_accuracy(&d, kind, FeatureSet::Set2);
            let pue_cell = grid.pue_error(kind, FeatureSet::Set2);
            assert_eq!(pue_solo.to_bits(), pue_cell.to_bits());
        }
    }

    #[test]
    fn warm_store_evaluation_trains_nothing_and_matches_bitwise() {
        let dir = std::env::temp_dir()
            .join(format!("wade-model-store-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir));
        let d = data();
        let reference = EvalGrid::evaluate(&d); // no store: historical path
        let cold = EvalGrid::evaluate_targets_with(
            Some(store.clone()),
            &d,
            &MlKind::ALL,
            &FeatureSet::ALL,
            true,
            true,
        );
        assert!(cold.trainings() > 0);
        assert_eq!(cold.store_hits(), 0);
        let warm = EvalGrid::evaluate_targets_with(
            Some(store),
            &d,
            &MlKind::ALL,
            &FeatureSet::ALL,
            true,
            true,
        );
        assert_eq!(warm.trainings(), 0, "a warm store must serve every fold model");
        assert_eq!(warm.store_hits(), cold.trainings());
        for kind in MlKind::ALL {
            for set in FeatureSet::ALL {
                for grid in [&cold, &warm] {
                    let a = reference.wer_report(kind, set);
                    let b = grid.wer_report(kind, set);
                    assert_eq!(a.average.to_bits(), b.average.to_bits());
                    assert_eq!(a.per_workload, b.per_workload);
                    assert_eq!(
                        reference.pue_error(kind, set).to_bits(),
                        grid.pue_error(kind, set).to_bits()
                    );
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_counts_one_training_per_fold_unit() {
        let d = data();
        let grid = EvalGrid::evaluate(&d);
        assert!(grid.trainings() > 0);
        // One dispatch covers every unit exactly once: the memo never pays
        // a redundant training inside a single evaluation.
        assert_eq!(grid.cache_hits(), 0);
    }
}
