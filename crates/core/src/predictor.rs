//! Leave-one-workload-out accuracy evaluation (Figs. 11 and 12).

use crate::campaign::CampaignData;
use crate::collect::{build_pue_dataset, build_wer_dataset};
use crate::model::MlKind;
use wade_dram::RANK_COUNT;
use wade_features::FeatureSet;
use wade_ml::metrics::{mean_absolute_error_percent, mean_percentage_error};

/// Accuracy summary of one (learner, feature set) combination.
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Learner evaluated.
    pub kind: MlKind,
    /// Feature set used.
    pub set: FeatureSet,
    /// Mean percentage error per DIMM/rank (Fig. 11a–c bars). `None` for
    /// ranks without enough measurable samples.
    pub per_rank: Vec<Option<f64>>,
    /// Mean percentage error per application (Fig. 11d–f bars).
    pub per_workload: Vec<(String, f64)>,
    /// Grand average over ranks (the paper's headline numbers).
    pub average: f64,
}

/// Evaluates WER prediction accuracy with the paper's protocol: per rank,
/// leave one workload's samples out, train on the rest, predict the
/// held-out samples, report the mean percentage error of the *linear* WER
/// (predictions and targets are log₁₀-space internally).
pub fn evaluate_wer_accuracy(data: &CampaignData, kind: MlKind, set: FeatureSet) -> AccuracyReport {
    let mut per_rank: Vec<Option<f64>> = Vec::with_capacity(RANK_COUNT);
    let mut workload_errs: Vec<(String, Vec<f64>)> = Vec::new();

    for rank in 0..RANK_COUNT {
        let ds = build_wer_dataset(data, set, rank);
        if ds.len() < 6 || ds.groups().len() < 3 {
            per_rank.push(None);
            continue;
        }
        let mut rank_errs = Vec::new();
        for group in ds.groups() {
            let (train, test) = ds.split_leave_group_out(&group);
            if train.len() < 4 || test.is_empty() {
                continue;
            }
            let model = kind.train_boxed(&train.features(), &train.targets());
            let preds: Vec<f64> =
                test.features().iter().map(|r| 10f64.powf(model.predict(r))).collect();
            let actuals: Vec<f64> = test.targets().iter().map(|t| 10f64.powf(*t)).collect();
            let mpe = mean_percentage_error(&preds, &actuals);
            rank_errs.push(mpe);
            match workload_errs.iter_mut().find(|(w, _)| *w == group) {
                Some((_, v)) => v.push(mpe),
                None => workload_errs.push((group.clone(), vec![mpe])),
            }
        }
        per_rank.push(if rank_errs.is_empty() {
            None
        } else {
            Some(rank_errs.iter().sum::<f64>() / rank_errs.len() as f64)
        });
    }

    let trained: Vec<f64> = per_rank.iter().flatten().copied().collect();
    let average = if trained.is_empty() {
        f64::NAN
    } else {
        trained.iter().sum::<f64>() / trained.len() as f64
    };
    let per_workload = workload_errs
        .into_iter()
        .map(|(w, errs)| {
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            (w, mean)
        })
        .collect();
    AccuracyReport { kind, set, per_rank, per_workload, average }
}

/// Evaluates PUE prediction accuracy: leave-one-workload-out on the
/// server-level PUE dataset; error in percentage points (Fig. 12's axis).
pub fn evaluate_pue_accuracy(data: &CampaignData, kind: MlKind, set: FeatureSet) -> f64 {
    let ds = build_pue_dataset(data, set);
    if ds.len() < 6 || ds.groups().len() < 3 {
        return f64::NAN;
    }
    let mut errs = Vec::new();
    for group in ds.groups() {
        let (train, test) = ds.split_leave_group_out(&group);
        if train.len() < 4 || test.is_empty() {
            continue;
        }
        let model = kind.train_boxed(&train.features(), &train.targets());
        let preds: Vec<f64> =
            test.features().iter().map(|r| model.predict(r).clamp(0.0, 1.0)).collect();
        errs.push(mean_absolute_error_percent(&preds, &test.targets()));
    }
    errs.iter().sum::<f64>() / errs.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::server::SimulatedServer;
    use wade_workloads::{Scale, WorkloadId};

    fn data() -> CampaignData {
        let suite = vec![
            WorkloadId::Backprop.instantiate(1, Scale::Test),
            WorkloadId::Nw.instantiate(1, Scale::Test),
            WorkloadId::Memcached.instantiate(8, Scale::Test),
            WorkloadId::Srad.instantiate(8, Scale::Test),
            WorkloadId::Kmeans.instantiate(1, Scale::Test),
        ];
        Campaign::new(SimulatedServer::with_seed(11), CampaignConfig::quick()).collect(&suite, 4)
    }

    #[test]
    fn wer_accuracy_report_is_well_formed() {
        let d = data();
        let report = evaluate_wer_accuracy(&d, MlKind::Knn, FeatureSet::Set1);
        assert_eq!(report.per_rank.len(), RANK_COUNT);
        assert!(report.average.is_finite(), "no rank trained");
        assert!(report.average >= 0.0);
        assert!(!report.per_workload.is_empty());
    }

    #[test]
    fn pue_accuracy_is_bounded() {
        let d = data();
        let err = evaluate_pue_accuracy(&d, MlKind::Knn, FeatureSet::Set2);
        if err.is_finite() {
            assert!((0.0..=100.0).contains(&err), "PUE error {err}");
        }
    }

    #[test]
    fn knn_beats_the_constant_baseline_shape() {
        // The workload-aware model must out-predict a workload-unaware
        // constant (per-op mean) by a clear margin — the §VI-C claim.
        let d = data();
        let knn = evaluate_wer_accuracy(&d, MlKind::Knn, FeatureSet::Set1);
        assert!(knn.average < 200.0, "KNN average MPE {}", knn.average);
    }
}
