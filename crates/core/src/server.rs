//! The simulated X-Gene2 server: SoC model + DRAM device + thermal testbed.

use crate::thermal::ThermalTestbed;
use serde::{Deserialize, Serialize};
use wade_dram::{DramDevice, DramUsageProfile, ReuseQuantiles};
use wade_features::{extract, ExtractionContext, FeatureVector};
use wade_memsys::{CacheConfig, Soc, SocConfig, SocReport};
use wade_trace::{FanoutSink, TraceReport, Tracer, REGION_COUNT};
use wade_workloads::Workload;

/// One workload's profiling result: the 249 features, the DRAM usage
/// profile for the error simulator, and the raw reports.
///
/// Serializable so the profiling tier of the artifact store can persist it
/// (`wade-store`); the vendored `serde_json` round-trips every field —
/// including `f64`s — exactly, so a profile read back from disk is
/// byte-identical to the freshly computed one (asserted by
/// `tests/artifact_store.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfiledWorkload {
    /// Benchmark label (paper style, e.g. `"backprop(par)"`).
    pub name: String,
    /// The 249 extracted program features.
    pub features: FeatureVector,
    /// DRAM usage profile at deployment scale.
    pub profile: DramUsageProfile,
    /// Raw SoC counters of the profiling run.
    pub soc: SocReport,
    /// Raw instrumentation report of the profiling run.
    pub trace: TraceReport,
}

/// The simulated server: everything Fig. 3's two phases need.
#[derive(Debug, Clone)]
pub struct SimulatedServer {
    device: DramDevice,
    soc_config: SocConfig,
    /// Order-stable hash of `soc_config`, precomputed so the profile
    /// cache's warm-hit path is a pure map lookup.
    soc_fingerprint: u64,
    thermal: ThermalTestbed,
}

impl SimulatedServer {
    /// Manufactures a server whose DRAM reliability is fixed by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_device(DramDevice::with_seed(seed))
    }

    /// A server built around an externally manufactured device — the
    /// drill-down entry point for heterogeneous populations: a fleet layer
    /// that manufactures devices with variant geometry or vintage-skewed
    /// physics (`DramDevice::with_parts`) can put any one of them under the
    /// standard SoC/thermal testbed and run a full characterization
    /// campaign on it. The device fingerprint flows into campaign store
    /// keys exactly as for seed-manufactured servers, so drill-down
    /// campaigns on distinct fleet devices can never alias in the store.
    pub fn with_device(device: DramDevice) -> Self {
        let soc_config = Self::profiling_soc_config();
        Self {
            device,
            soc_fingerprint: fingerprint_soc_config(&soc_config),
            soc_config,
            thermal: ThermalTestbed::new(),
        }
    }

    /// The SoC configuration used for profiling runs.
    ///
    /// Caches are scaled down with the kernels so that the footprint-to-LLC
    /// ratio resembles deployment (8 GB against an 8 MiB L3 ≈ 1024×): the
    /// mini-kernels carry 0.5–8 MB footprints, so the profiling hierarchy
    /// is a few tens of KiB and even the kernels' hot sets overflow it —
    /// exactly as 8 GB working sets overflow the real 8 MiB L3. Only
    /// *relative* cache-filter behaviour across workloads matters to the
    /// model.
    pub fn profiling_soc_config() -> SocConfig {
        SocConfig {
            l1d: CacheConfig { capacity_bytes: 4 << 10, ways: 4, line_bytes: 64 },
            l2: CacheConfig { capacity_bytes: 16 << 10, ways: 8, line_bytes: 64 },
            l3: CacheConfig { capacity_bytes: 64 << 10, ways: 8, line_bytes: 64 },
            // Profiling models the memory-level parallelism of the real
            // 8-core machine: most miss latency is overlapped, so the
            // accesses-per-cycle counter reflects memory-operation density
            // (as on the paper's ARM server) rather than stall time.
            stall_exposure: 0.15,
            ..SocConfig::x_gene2()
        }
    }

    /// The DRAM device under test.
    pub fn device(&self) -> &DramDevice {
        &self.device
    }

    /// The SoC configuration profiling runs execute against.
    pub fn soc_config(&self) -> &SocConfig {
        &self.soc_config
    }

    /// Precomputed order-stable hash of [`SimulatedServer::soc_config`];
    /// part of the profile-cache key.
    pub fn soc_fingerprint(&self) -> u64 {
        self.soc_fingerprint
    }

    /// The thermal testbed (mutable: campaigns set temperatures).
    pub fn thermal_mut(&mut self) -> &mut ThermalTestbed {
        &mut self.thermal
    }

    /// Runs the profiling phase for one workload (Fig. 3 left): executes
    /// the instrumented kernel once against the tracer and the SoC model
    /// simultaneously, extracts the 249 features and builds the DRAM usage
    /// profile.
    ///
    /// The kernel emits through a staging buffer
    /// ([`wade_workloads::Workload::run_buffered`]): the fanout, tracer and
    /// SoC model consume access slices instead of one virtual-boundary call
    /// per access. Observationally identical to the per-access reference
    /// path ([`SimulatedServer::profile_workload_unbatched`], asserted by
    /// test), just faster.
    pub fn profile_workload(&self, workload: &dyn Workload, seed: u64) -> ProfiledWorkload {
        let mut fan = FanoutSink::new(Tracer::new(), Soc::new(self.soc_config));
        workload.run_buffered(&mut fan, seed);
        Self::summarize(workload, fan)
    }

    /// The pre-batching reference path: the kernel calls straight into the
    /// fanout, one virtual call per access. Kept (and exercised by tests
    /// and the `bench` bin) as the baseline the batched front-end must
    /// match byte-for-byte.
    pub fn profile_workload_unbatched(&self, workload: &dyn Workload, seed: u64) -> ProfiledWorkload {
        let mut fan = FanoutSink::new(Tracer::new(), Soc::new(self.soc_config));
        workload.run(&mut fan, seed);
        Self::summarize(workload, fan)
    }

    /// The shared summary step of both profiling paths: reports → features
    /// → deployment-scale usage profile.
    fn summarize(workload: &dyn Workload, fan: FanoutSink<Tracer, Soc>) -> ProfiledWorkload {
        let (tracer, soc) = fan.into_inner();
        let soc_report = soc.report();
        let trace_report = tracer.report();
        let deploy = workload.deploy_scale();
        let ctx = ExtractionContext {
            deploy_footprint_words: deploy.footprint_words,
            reuse_scale: deploy.reuse_scale,
        };
        let features = extract(&soc_report, &trace_report, &ctx);
        let profile = build_usage_profile(&soc_report, &trace_report, &ctx);
        ProfiledWorkload {
            name: workload.name(),
            features,
            profile,
            soc: soc_report,
            trace: trace_report,
        }
    }
}

/// Version of the profiling contract: the trace/SoC pipeline and feature
/// extraction that turn a kernel execution into a [`ProfiledWorkload`].
/// Folded into [`SimulatedServer::soc_fingerprint`] — and through it into
/// every profile and campaign store key — so **bump it on any
/// re-baselining change to the profiling front-end or feature extraction**
/// (the profiling analogue of `wade-dram`'s `DETERMINISM_VERSION` and
/// [`crate::TRAINER_CONFIG_VERSION`]): persisted artifacts produced under
/// the old contract then read as misses instead of stale hits.
pub const PROFILING_CONTRACT_VERSION: u32 = 1;

/// Order-stable fingerprint of a SoC configuration (the vendored serde
/// serializes structs in field order) and the profiling-contract version.
fn fingerprint_soc_config(config: &SocConfig) -> u64 {
    use std::hash::Hasher as _;
    let json = serde_json::to_string(config).expect("SocConfig serializes");
    let mut hasher = rustc_hash::FxHasher::default();
    hasher.write_u32(PROFILING_CONTRACT_VERSION);
    hasher.write(json.as_bytes());
    hasher.finish()
}

/// Builds the deployment-scale [`DramUsageProfile`] from one profiling run.
pub(crate) fn build_usage_profile(
    soc: &SocReport,
    trace: &TraceReport,
    ctx: &ExtractionContext,
) -> DramUsageProfile {
    // DRAM service-time bound: the in-order timing model underestimates
    // wall time for memory-saturating workloads, which would inflate DRAM
    // command/activation rates. Bound the wall clock from below by the
    // DRAM service time: row-buffer hits stream at channel bandwidth,
    // activations pay the row cycle divided by the bank/channel
    // parallelism a core-limited machine can keep in flight.
    let cmds = soc.dram_cmds() as f64;
    let hit_rate = soc.rowbuffer_hit_rate();
    let service_s = cmds * (hit_rate * 2.5e-9 + (1.0 - hit_rate) * 6.0e-9);
    let wall_s = soc.wall_seconds().max(service_s).max(1e-9);
    let spi = wall_s / soc.total_instructions().max(1) as f64;
    let mini_words = trace.unique_words.max(1) as f64;
    let ratio = ctx.deploy_footprint_words as f64 / mini_words;
    // Reuse-distance quantiles (instructions) → deployment-scale seconds,
    // using the same projection as the Treuse feature (eq. 4 extrapolated).
    let to_seconds = |instr: f64| instr * ratio * ctx.reuse_scale * spi;
    let quantiles: Vec<f64> = (0..16)
        .map(|i| {
            let q = (i as f64 + 0.5) / 16.0;
            to_seconds(trace.reuse_histogram.quantile(q))
        })
        .collect();
    // Quantiles of a histogram are monotone by construction; enforce
    // against float edge cases.
    let mut sorted = quantiles;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let mem_accesses = trace.mem_accesses.max(1) as f64;
    let dram_filter = (soc.dram_cmds() as f64 / mem_accesses).clamp(0.0, 1.0);

    let mut region_shares = trace.region_shares.clone();
    region_shares.resize(REGION_COUNT, 0.0);

    DramUsageProfile {
        footprint_words: ctx.deploy_footprint_words,
        dram_read_rate_hz: soc.dram_read_cmds() as f64 / wall_s,
        dram_write_rate_hz: soc.dram_write_cmds() as f64 / wall_s,
        row_activation_rate_hz: soc.row_activations() as f64 / wall_s,
        dram_filter,
        reuse: ReuseQuantiles::new(sorted),
        never_reused_fraction: trace.never_reused_fraction.clamp(0.0, 1.0),
        one_density: trace.one_density.clamp(0.0, 1.0),
        entropy_bits: trace.entropy_bits.clamp(0.0, 32.0),
        region_shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_workloads::{Scale, WorkloadId};

    #[test]
    fn profiling_produces_valid_profile_and_features() {
        let server = SimulatedServer::with_seed(1);
        let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);
        let p = server.profile_workload(wl.as_ref(), 3);
        assert_eq!(p.name, "backprop");
        assert!(p.profile.validate().is_ok(), "{:?}", p.profile.validate());
        assert!(p.features.values().iter().all(|v| v.is_finite()));
        assert!(p.profile.dram_access_rate_hz() > 0.0);
    }

    #[test]
    fn profiling_is_deterministic() {
        let server = SimulatedServer::with_seed(1);
        let wl = WorkloadId::Nw.instantiate(1, Scale::Test);
        let a = server.profile_workload(wl.as_ref(), 3);
        let b = server.profile_workload(wl.as_ref(), 3);
        assert_eq!(a.features, b.features);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn memcached_has_shorter_reuse_than_nw() {
        let server = SimulatedServer::with_seed(1);
        let mc = server.profile_workload(
            WorkloadId::Memcached.instantiate(8, Scale::Test).as_ref(),
            3,
        );
        let nw = server.profile_workload(WorkloadId::Nw.instantiate(1, Scale::Test).as_ref(), 3);
        assert!(
            mc.profile.reuse.mean() < nw.profile.reuse.mean(),
            "memcached {} vs nw {}",
            mc.profile.reuse.mean(),
            nw.profile.reuse.mean()
        );
    }

    #[test]
    fn different_seeds_give_different_devices() {
        let a = SimulatedServer::with_seed(1);
        let b = SimulatedServer::with_seed(2);
        assert_ne!(a.device().variation().factors(), b.device().variation().factors());
    }
}
