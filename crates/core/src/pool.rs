//! Fan-out policy for the campaign/profiling parallel call sites.
//!
//! Every parallel fan-out in wade-core is an order-stable map over
//! independent units, so *whether* it dispatches onto the pool is pure
//! overhead policy — results are byte-identical either way. The policy:
//! skip the pool when it cannot buy concurrency, i.e. when the effective
//! parallelism (configured pool width capped at the machine's physical
//! cores — see `rayon::effective_parallelism`) is 1, or when there are
//! fewer than two units. This is what stops `campaign_quick_grid` losing
//! to its own single-thread baseline on a 1-core container: an installed
//! 8-thread pool there used to pay spawn + queue cost for zero overlap.

use rayon::prelude::*;

/// Order-stable map over `items`: inline when the pool's effective
/// parallelism is 1 or there are fewer than two items, parallel otherwise.
/// Output order always matches input order, so callers' byte-identity
/// contracts are unaffected by the dispatch decision.
pub fn fan_out<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() < 2 || rayon::effective_parallelism() == 1 {
        return items.into_iter().map(f).collect();
    }
    items.into_par_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_preserves_order() {
        let out = fan_out((0..100).collect::<Vec<usize>>(), |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn fan_out_is_identical_across_pool_widths() {
        let work = |i: u64| (0..i % 17).fold(i, |a, b| a.wrapping_mul(31).wrapping_add(b));
        let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let eight = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let a = one.install(|| fan_out((0..200u64).collect(), work));
        let b = eight.install(|| fan_out((0..200u64).collect(), work));
        assert_eq!(a, b);
    }

    #[test]
    fn single_item_stays_inline() {
        // Can't observe the dispatch directly; pin the semantics instead.
        assert_eq!(fan_out(vec![41u32], |i| i + 1), vec![42]);
        assert_eq!(fan_out(Vec::<u32>::new(), |i| i + 1), Vec::<u32>::new());
    }
}
