//! Builders turning campaign data into ML datasets (Fig. 3, right side),
//! plus the artifact-store keying of collected campaign data.

use crate::campaign::{CampaignConfig, CampaignData};
use crate::server::SimulatedServer;
use std::fmt::Write as _;
use wade_dram::OperatingPoint;
use wade_features::{FeatureSet, FeatureVector};
use wade_ml::Dataset;
use wade_workloads::BoxedWorkload;

/// The artifact kind of collected campaign data in a
/// [`wade_store::ArtifactStore`].
pub const CAMPAIGN_KIND: &str = "campaign";

/// The canonical store key of one campaign collection — everything the
/// collected rows are a pure function of, made explicit:
///
/// * the **campaign seed** (run randomness: VRT states, discovery order),
/// * the **grid** (`CampaignConfig`: ops, repeats, run duration — its
///   canonical JSON, embedded verbatim so two configs can never share a
///   key),
/// * the **suite** at its **scale** (per workload: name, threads,
///   `Scale`, cache token and deployment-scale constants, embedded
///   verbatim),
/// * the **device** ([`wade_dram::DramDevice::fingerprint`]: manufacturing
///   seed, geometry/physics, and the simulator's determinism contract — a
///   re-baselining event changes it, turning stale entries into misses),
/// * the **SoC profiling configuration** fingerprint
///   ([`SimulatedServer::soc_fingerprint`]) — the profiling hierarchy is a
///   code constant, not seed-derived, and the collected rows embed its
///   features, so changing it must invalidate campaign entries too.
///
/// Only the two fingerprints are hashes; the config and suite components
/// stay verbatim so the store's embedded-full-key check (not a 64-bit
/// hash) is what decides a hit.
pub fn campaign_store_key(
    server: &SimulatedServer,
    config: &CampaignConfig,
    suite: &[BoxedWorkload],
    seed: u64,
) -> String {
    // The Debug fallback still identifies the config uniquely (every field
    // derives Debug); a serializer hiccup must not panic key construction.
    let config_json =
        serde_json::to_string(config).unwrap_or_else(|_| format!("{config:?}"));
    let mut suite_desc = String::new();
    for w in suite {
        let deploy = w.deploy_scale();
        let _ = write!(
            suite_desc,
            "{}:{}:{:?}:{:016x}:{}:{:016x};",
            w.name(),
            w.threads(),
            w.scale(),
            w.cache_token(),
            deploy.footprint_words,
            deploy.reuse_scale.to_bits(),
        );
    }
    format!(
        "campaign|seed={seed}|device={:016x}|soc={:016x}|config={config_json}|suite={suite_desc}",
        server.device().fingerprint(),
        server.soc_fingerprint(),
    )
}

/// Assembles one model-input row: the chosen program-feature subset plus
/// the operating parameters (`TREFP`, `TEMP_DRAM`, `VDD`), as in Table III.
pub fn op_augmented_row(
    features: &FeatureVector,
    set: FeatureSet,
    op: OperatingPoint,
) -> Vec<f64> {
    let mut row = features.project(&set.indices());
    row.push(op.trefp_s);
    row.push(op.temp_c);
    row.push(op.vdd_v);
    row
}

/// Input dimensionality for a feature set (program features + 3 op params).
pub(crate) fn input_dim(set: FeatureSet) -> usize {
    set.indices().len() + 3
}

/// Minimum corrected-error count per (rank, run) for a WER sample to be
/// statistically meaningful: below ~10 unique CE words the measurement is
/// dominated by Poisson noise (±32 % at 10 counts), so such cells carry no
/// trainable signal. Mirrors the telemetry floor any field study applies.
pub const MIN_CE_COUNT: f64 = 10.0;

/// Builds the WER training set for one rank.
///
/// Targets are `log₁₀(WER)` — the error rate spans five decades
/// (Fig. 7), and distance-based learners need the decades linearised (the
/// log-target ablation in `tests/ablation.rs` shows the difference).
/// Rows where the run crashed, or where the rank saw fewer than
/// [`MIN_CE_COUNT`] unique error words, are excluded, mirroring the
/// paper's measurable samples.
pub fn build_wer_dataset(data: &CampaignData, set: FeatureSet, rank: usize) -> Dataset {
    let mut ds = Dataset::new(input_dim(set));
    for row in &data.rows {
        let Some(run) = &row.wer_run else { continue };
        if run.crashed {
            continue;
        }
        let wer = run.wer_per_rank[rank];
        // Telemetry-significance floor: require enough unique CE words.
        if wer * data_footprint_words(data) < MIN_CE_COUNT {
            continue;
        }
        ds.push(
            op_augmented_row(&row.features, set, row.op),
            wer.log10(),
            row.workload.clone(),
        );
    }
    ds
}

/// The deployment footprint used by the campaign's profiles (words).
fn data_footprint_words(_data: &CampaignData) -> f64 {
    // All paper campaigns allocate 8 GB per benchmark.
    (1u64 << 30) as f64
}

/// Builds the PUE training set (server-level, as the UE crashes the whole
/// machine). Targets are the measured crash probabilities in `[0, 1]`.
pub fn build_pue_dataset(data: &CampaignData, set: FeatureSet) -> Dataset {
    let mut ds = Dataset::new(input_dim(set));
    for row in &data.rows {
        if row.pue_runs.is_empty() {
            continue;
        }
        ds.push(op_augmented_row(&row.features, set, row.op), row.pue(), row.workload.clone());
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::server::SimulatedServer;
    use wade_workloads::{Scale, WorkloadId};

    fn data() -> CampaignData {
        let suite = vec![
            WorkloadId::Backprop.instantiate(1, Scale::Test),
            WorkloadId::Srad.instantiate(8, Scale::Test),
        ];
        Campaign::new(SimulatedServer::with_seed(3), CampaignConfig::quick()).collect(&suite, 2)
    }

    #[test]
    fn row_width_matches_set_plus_ops() {
        let d = data();
        let row = op_augmented_row(&d.rows[0].features, FeatureSet::Set1, d.rows[0].op);
        assert_eq!(row.len(), 4 + 3);
        assert_eq!(input_dim(FeatureSet::Set3), 252);
    }

    #[test]
    fn wer_dataset_targets_are_log_space() {
        let d = data();
        for rank in 0..8 {
            let ds = build_wer_dataset(&d, FeatureSet::Set2, rank);
            for s in ds.samples() {
                assert!(s.target < 0.0, "log10(WER) must be negative, got {}", s.target);
                assert!(s.target > -12.0);
            }
        }
    }

    #[test]
    fn pue_dataset_targets_are_probabilities() {
        let d = data();
        let ds = build_pue_dataset(&d, FeatureSet::Set2);
        assert!(!ds.is_empty());
        for s in ds.samples() {
            assert!((0.0..=1.0).contains(&s.target));
        }
    }

    #[test]
    fn groups_are_workload_names() {
        let d = data();
        let ds = build_pue_dataset(&d, FeatureSet::Set1);
        let groups = ds.groups();
        assert!(groups.contains(&"backprop".to_string()));
        assert!(groups.contains(&"srad(par)".to_string()));
    }
}
