//! Error type for the wade-core public API.

use std::fmt;

/// Errors surfaced by the prediction pipeline.
#[derive(Debug)]
pub enum WadeError {
    /// A dataset was empty or degenerate (e.g. every characterization run
    /// produced zero errors, leaving nothing to train on).
    EmptyDataset(String),
    /// An operating point or profile failed validation.
    InvalidInput(String),
    /// Persistence (JSON serialisation) failed.
    Persistence(String),
}

impl fmt::Display for WadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WadeError::EmptyDataset(what) => write!(f, "empty dataset: {what}"),
            WadeError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            WadeError::Persistence(what) => write!(f, "persistence failure: {what}"),
        }
    }
}

impl std::error::Error for WadeError {}

impl From<serde_json::Error> for WadeError {
    fn from(err: serde_json::Error) -> Self {
        WadeError::Persistence(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = WadeError::EmptyDataset("no CE samples".into());
        assert_eq!(e.to_string(), "empty dataset: no CE samples");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WadeError>();
    }
}
