//! Error type for the wade-core public API.

use std::fmt;

/// Errors surfaced by the prediction pipeline.
#[derive(Debug)]
pub enum WadeError {
    /// A dataset was empty or degenerate (e.g. every characterization run
    /// produced zero errors, leaving nothing to train on).
    EmptyDataset(String),
    /// An operating point or profile failed validation.
    InvalidInput(String),
    /// Persistence (JSON serialisation) failed.
    Persistence(String),
    /// The artifact-store tier failed (I/O, corruption, degraded mode);
    /// carries the structured [`wade_store::StoreError`] taxonomy. Cache
    /// consumers treat this as "recompute in memory", so it surfaces only
    /// from APIs that make the store mandatory.
    Store(wade_store::StoreError),
}

impl fmt::Display for WadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WadeError::EmptyDataset(what) => write!(f, "empty dataset: {what}"),
            WadeError::InvalidInput(what) => write!(f, "invalid input: {what}"),
            WadeError::Persistence(what) => write!(f, "persistence failure: {what}"),
            WadeError::Store(err) => write!(f, "artifact store failure: {err}"),
        }
    }
}

impl std::error::Error for WadeError {}

impl From<serde_json::Error> for WadeError {
    fn from(err: serde_json::Error) -> Self {
        WadeError::Persistence(err.to_string())
    }
}

impl From<wade_store::StoreError> for WadeError {
    fn from(err: wade_store::StoreError) -> Self {
        WadeError::Store(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = WadeError::EmptyDataset("no CE samples".into());
        assert_eq!(e.to_string(), "empty dataset: no CE samples");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WadeError>();
    }
}
