//! # wade-core — workload-aware DRAM error prediction
//!
//! The primary contribution of the reproduced paper: a pipeline that
//!
//! 1. **profiles** workloads (program features: 247 counters + `Treuse` +
//!    `H_DP`) — the *profiling phase* of Fig. 3,
//! 2. **characterizes** DRAM error behaviour while running them under
//!    relaxed refresh period / lowered voltage / elevated temperature — the
//!    *DRAM characterization phase* (weak-cell populations are frozen once
//!    per (workload, temperature, voltage) via [`PreparedRun`] and replayed
//!    across refresh-period set-points and PUE repeats, byte-identically to
//!    the direct path),
//! 3. **trains** the error model `M(Ftrs, Dev, TREFP, VDD, TEMP) → WER, PUE`
//!    (eq. 1) with SVM / KNN / RDF learners, and
//! 4. **predicts** error rates for unseen workloads in microseconds instead
//!    of 2-hour characterization campaigns.
//!
//! ```no_run
//! use wade_core::{SimulatedServer, Campaign, CampaignConfig, MlKind};
//! use wade_features::FeatureSet;
//! use wade_workloads::{paper_suite, Scale};
//!
//! let server = SimulatedServer::with_seed(42);
//! let campaign = Campaign::new(server, CampaignConfig::quick());
//! let data = campaign.collect(&paper_suite(Scale::Test), 7);
//! let model = wade_core::train_error_model(&data, MlKind::Knn, FeatureSet::Set1);
//! let first = &data.rows[0];
//! let wer = model.predict_wer(&first.features, first.op, 0);
//! assert!(wer >= 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod campaign;
mod collect;
mod error;
mod model;
pub mod pool;
mod predictor;
mod profile_cache;
mod server;
mod thermal;

pub use campaign::{Campaign, CampaignConfig, CampaignData, CampaignRow, CharacterizationOutcome};
pub use collect::{
    build_pue_dataset, build_wer_dataset, campaign_store_key, op_augmented_row, CAMPAIGN_KIND,
    MIN_CE_COUNT,
};
pub use error::WadeError;
pub use model::{
    serving_model_keys, train_error_model, train_error_model_stored, AnyModel, ErrorModel,
    MlKind, Prediction, TRAINER_CONFIG_VERSION,
};
pub use predictor::{
    evaluate_pue_accuracy, evaluate_wer_accuracy, AccuracyReport, EvalGrid, MODEL_KIND,
};
pub use profile_cache::ProfileCache;
pub use server::{ProfiledWorkload, SimulatedServer, PROFILING_CONTRACT_VERSION};
pub use thermal::{PidController, ThermalTestbed};

pub use wade_dram::{DramUsageProfile, LiveCellIndex, OperatingPoint, PreparedRun};
