//! Characterization campaigns: the paper's data-collection loop (Fig. 3).
//!
//! The (workload × operating point) grid and the PUE repeats fan out on the
//! shared rayon pool: every row's seed is *derived* from (campaign seed,
//! workload name, refresh period) rather than drawn from a shared stream,
//! so the grid can be evaluated in any order — and on any number of
//! threads — while producing byte-identical rows in a stable order
//! (`collect_is_identical_across_thread_counts` asserts this). Thermal
//! settling stays grouped per temperature set-point, exactly like the
//! physical campaign heats the DIMMs once per set-point and then sweeps
//! refresh periods.
//!
//! # Population caching
//!
//! Within one temperature set-point, every refresh-period set-point of a
//! workload — and every PUE repeat — thresholds the **same** weak-cell
//! population (the simulator keys populations by (device, rank, segment,
//! cell, temp, vdd); see `wade_dram`'s `sim` module docs, which are
//! normative). [`Campaign::collect`] therefore groups the grid by that
//! population key, realizes each group **once** into a
//! [`wade_dram::PreparedRun`] on the shared pool, and fans out replays
//! that re-draw only run randomness. Replay is bit-for-bit identical to
//! the direct path ([`Campaign::collect_direct`] — the reference
//! implementation kept for verification), so collected campaigns are
//! byte-identical whichever path produced them, at any thread count.

use crate::pool;
use crate::profile_cache::ProfileCache;
use crate::server::{ProfiledWorkload, SimulatedServer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wade_dram::{ErrorSim, OperatingPoint, PreparedRun, RunResult, RANK_COUNT};
use wade_features::FeatureVector;
use wade_workloads::{BoxedWorkload, Workload};

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Duration of each characterization run in seconds (the paper: 2 h).
    pub run_duration_s: f64,
    /// Repeats per (workload, op) for the UE-probability estimate
    /// (the paper: 10).
    pub pue_repeats: u32,
    /// Refresh periods × temperatures characterized for WER.
    pub wer_ops: Vec<OperatingPoint>,
    /// Operating points for the PUE study.
    pub pue_ops: Vec<OperatingPoint>,
}

impl CampaignConfig {
    /// The paper's full grid: WER at TREFP ∈ {0.618, 1.173, 1.727, 2.283} s
    /// × {50, 60} °C plus the safe 70 °C points; PUE at
    /// {1.450, 1.727, 2.283} s × 70 °C with 10 repeats; 2-hour runs.
    pub fn paper_full() -> Self {
        let mut wer_ops = Vec::new();
        for &t in &OperatingPoint::WER_TREFP_SWEEP {
            for &c in &[50.0, 60.0] {
                wer_ops.push(OperatingPoint::relaxed(t, c));
            }
        }
        // At 70 °C only the two shortest refresh periods are UE-safe.
        wer_ops.push(OperatingPoint::relaxed(0.618, 70.0));
        wer_ops.push(OperatingPoint::relaxed(1.173, 70.0));
        let pue_ops =
            OperatingPoint::PUE_TREFP_SWEEP.iter().map(|&t| OperatingPoint::relaxed(t, 70.0)).collect();
        Self { run_duration_s: 7200.0, pue_repeats: 10, wer_ops, pue_ops }
    }

    /// A reduced grid for tests and examples: the same structure with
    /// fewer points and repeats.
    pub fn quick() -> Self {
        let wer_ops = vec![
            OperatingPoint::relaxed(1.173, 60.0),
            OperatingPoint::relaxed(1.727, 60.0),
            OperatingPoint::relaxed(2.283, 60.0),
            OperatingPoint::relaxed(2.283, 50.0),
        ];
        let pue_ops = vec![OperatingPoint::relaxed(1.450, 70.0), OperatingPoint::relaxed(2.283, 70.0)];
        Self { run_duration_s: 7200.0, pue_repeats: 3, wer_ops, pue_ops }
    }
}

/// Characterization outcome for one (workload, op): WER runs or PUE repeats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationOutcome {
    /// Aggregate WER (eq. 2) of the run (0 when the run crashed early).
    pub wer: f64,
    /// Per-rank WER split (Fig. 8's view).
    pub wer_per_rank: [f64; RANK_COUNT],
    /// Whether the run ended in an uncorrectable error (crash).
    pub crashed: bool,
    /// Rank blamed for the crash, if any.
    pub ue_rank: Option<usize>,
}

impl CharacterizationOutcome {
    fn from_run(run: &RunResult) -> Self {
        Self {
            wer: run.wer(),
            wer_per_rank: run.wer_per_rank(),
            crashed: run.crashed(),
            ue_rank: run.ue.map(|u| u.rank.index()),
        }
    }
}

/// One campaign row: a (workload, operating point) cell with its profiling
/// features and characterization results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRow {
    /// Benchmark label.
    pub workload: String,
    /// Operating point characterized.
    pub op: OperatingPoint,
    /// The workload's 249 program features (op-independent).
    pub features: FeatureVector,
    /// WER measurement (single long run), if this op is in the WER grid.
    pub wer_run: Option<CharacterizationOutcome>,
    /// PUE repeats (crash indicator per repeat), if in the PUE grid.
    pub pue_runs: Vec<CharacterizationOutcome>,
}

impl CampaignRow {
    /// The measured UE probability (eq. 3) over the repeats.
    pub fn pue(&self) -> f64 {
        if self.pue_runs.is_empty() {
            return 0.0;
        }
        self.pue_runs.iter().filter(|r| r.crashed).count() as f64 / self.pue_runs.len() as f64
    }
}

/// The full collected dataset of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignData {
    /// All (workload × op) rows.
    pub rows: Vec<CampaignRow>,
    /// Seconds of simulated characterization time represented.
    pub simulated_seconds: f64,
}

impl CampaignData {
    /// Workload labels present, in first-appearance order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for r in &self.rows {
            if !seen.contains(&r.workload) {
                seen.push(r.workload.clone());
            }
        }
        seen
    }

    /// Serialises to JSON (the public-release format of the paper's DFault
    /// repository).
    ///
    /// # Errors
    /// Returns [`crate::WadeError::Persistence`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, crate::WadeError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Restores from JSON.
    ///
    /// # Errors
    /// Returns [`crate::WadeError::Persistence`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, crate::WadeError> {
        Ok(serde_json::from_str(json)?)
    }
}

/// The characterization campaign driver.
#[derive(Debug, Clone)]
pub struct Campaign {
    server: SimulatedServer,
    config: CampaignConfig,
    /// Memo table for the profiling phase; `None` disables caching
    /// (the reference configuration for byte-identity tests).
    profile_cache: Option<Arc<ProfileCache>>,
}

impl Campaign {
    /// Binds a campaign configuration to a server. Profiling is memoized
    /// through the process-wide [`ProfileCache::global`]; see
    /// [`Campaign::without_profile_cache`] / [`Campaign::with_profile_cache`]
    /// to opt out or isolate.
    pub fn new(server: SimulatedServer, config: CampaignConfig) -> Self {
        Self { server, config, profile_cache: Some(ProfileCache::global()) }
    }

    /// Replaces the profile cache with `cache` (e.g. an isolated one for a
    /// benchmark measuring cold-cache cost).
    #[must_use]
    pub fn with_profile_cache(mut self, cache: Arc<ProfileCache>) -> Self {
        self.profile_cache = Some(cache);
        self
    }

    /// Disables profile caching: every [`Campaign::profile`] call re-executes
    /// the kernel. Output is byte-identical either way (profiling is
    /// deterministic; asserted by tests) — this is the reference
    /// configuration those tests compare against.
    #[must_use]
    pub fn without_profile_cache(mut self) -> Self {
        self.profile_cache = None;
        self
    }

    /// The server under test.
    pub fn server(&self) -> &SimulatedServer {
        &self.server
    }

    /// Profiles one workload (Fig. 3's profiling phase).
    pub fn profile(&self, workload: &dyn Workload, seed: u64) -> ProfiledWorkload {
        (*self.profile_shared(workload, seed)).clone()
    }

    /// [`Campaign::profile`] returning the shared frozen profile: a cache
    /// hit hands back the same allocation instead of cloning the reports.
    pub fn profile_shared(&self, workload: &dyn Workload, seed: u64) -> Arc<ProfiledWorkload> {
        match &self.profile_cache {
            Some(cache) => cache.profile(&self.server, workload, seed),
            None => Arc::new(self.server.profile_workload(workload, seed)),
        }
    }

    /// Profiles a whole suite on the shared rayon pool (profiling runs are
    /// independently seeded per workload, so they parallelize freely), in
    /// suite order. Order-stable and byte-identical at any thread count and
    /// with any cache state.
    pub fn profile_suite(
        &self,
        suite: &[BoxedWorkload],
        seed: u64,
    ) -> Vec<Arc<ProfiledWorkload>> {
        pool::fan_out(suite.iter().collect(), |w| self.profile_shared(w.as_ref(), seed))
    }

    /// Characterizes one profiled workload at one op for `repeats` runs via
    /// the direct path ([`ErrorSim::run`]): the population is re-realized
    /// from its streams on every run.
    ///
    /// Repeats are independent (each has its own derived seed), so they fan
    /// out on the shared rayon pool — the simulated analogue of queueing
    /// the 10 repeat experiments of Fig. 9 back to back on the testbed.
    /// Results come back in repeat order and are identical for any pool
    /// width.
    pub fn characterize(
        &self,
        profiled: &ProfiledWorkload,
        op: OperatingPoint,
        repeats: u32,
        seed: u64,
    ) -> Vec<CharacterizationOutcome> {
        let sim = ErrorSim::new(self.server.device());
        self.repeat_runs(repeats, |r| {
            sim.run(&profiled.profile, op, self.config.run_duration_s, repeat_seed(seed, r))
        })
    }

    /// Freezes the weak-cell population a workload shares across `ops`
    /// (one (temperature, voltage) pair, any refresh periods) so that
    /// [`Campaign::characterize_prepared`] can replay it per set-point and
    /// per repeat without re-realizing it. See [`wade_dram::PreparedRun`]
    /// for the byte-identical-replay guarantee.
    ///
    /// # Panics
    /// Panics if `ops` is empty or mixes temperatures or voltages.
    pub fn prepare(&self, profiled: &ProfiledWorkload, ops: &[OperatingPoint]) -> PreparedRun<'_> {
        ErrorSim::new(self.server.device()).prepare(&profiled.profile, ops)
    }

    /// [`Campaign::characterize`] against a frozen population: same seeds,
    /// same fan-out, bit-identical outcomes — only the realization work is
    /// skipped. The population-side gates are applied **once** per
    /// set-point ([`wade_dram::LiveCellIndex`]) and shared by every repeat,
    /// so replays stop re-gating the whole frozen arena per run.
    pub fn characterize_prepared(
        &self,
        prepared: &PreparedRun<'_>,
        op: OperatingPoint,
        repeats: u32,
        seed: u64,
    ) -> Vec<CharacterizationOutcome> {
        let index = prepared.live_index(op);
        self.repeat_runs(repeats, |r| {
            prepared.run_indexed(&index, self.config.run_duration_s, repeat_seed(seed, r))
        })
    }

    /// The shared repeat fan-out of both characterization paths.
    fn repeat_runs(
        &self,
        repeats: u32,
        run_one: impl Fn(u32) -> RunResult + Sync,
    ) -> Vec<CharacterizationOutcome> {
        pool::fan_out((0..repeats).collect(), |r| CharacterizationOutcome::from_run(&run_one(r)))
    }

    /// Runs the full data-collection process of Fig. 3 over a suite:
    /// thermal settling, profiling, WER grid, PUE grid — with
    /// population caching (each (workload, temperature, voltage) group is
    /// realized once and replayed per set-point and repeat).
    ///
    /// Within each temperature set-point the whole (op × workload) block —
    /// including every PUE repeat — is one flat parallel workload on the
    /// shared pool; rows are emitted in the same stable order as the
    /// sequential loop (ops sorted by temperature, then suite order), and
    /// the collected data is byte-identical to [`Campaign::collect_direct`]
    /// at the same seed, on any number of threads.
    pub fn collect(self, suite: &[BoxedWorkload], seed: u64) -> CampaignData {
        self.collect_impl(suite, seed, true)
    }

    /// [`Campaign::collect`] behind the disk-backed artifact store: the
    /// collection is keyed by
    /// [`crate::campaign_store_key`] — (campaign seed, grid,
    /// suite/scale, device fingerprint) — and served from `store` when a
    /// valid entry exists. Collected data round-trips the store
    /// byte-identically (the vendored `serde_json` is exact), so a warm
    /// read equals a fresh collection bit for bit; corrupt or
    /// foreign-version entries read as misses and are atomically
    /// rewritten.
    pub fn collect_stored(
        self,
        store: &wade_store::ArtifactStore,
        suite: &[BoxedWorkload],
        seed: u64,
    ) -> CampaignData {
        let key = crate::collect::campaign_store_key(&self.server, &self.config, suite, seed);
        store.get_or_put(crate::collect::CAMPAIGN_KIND, &key, || self.collect(suite, seed))
    }

    /// The reference collection path: identical grid, seeds and row order
    /// as [`Campaign::collect`], but every run re-realizes its population
    /// directly ([`Campaign::characterize`]). Kept as the verification
    /// baseline for the prepared path — `tests/prepared_replay.rs` asserts
    /// the two produce byte-identical campaigns.
    pub fn collect_direct(self, suite: &[BoxedWorkload], seed: u64) -> CampaignData {
        self.collect_impl(suite, seed, false)
    }

    fn collect_impl(mut self, suite: &[BoxedWorkload], seed: u64, prepared: bool) -> CampaignData {
        let mut rows: Vec<CampaignRow> = Vec::new();
        let mut simulated = 0.0;
        // Profiling phase: the whole suite fans out on the shared pool
        // (per-workload seeds are independent), with cache hits sharing
        // frozen profiles across campaigns in this process.
        let profiled: Vec<Arc<ProfiledWorkload>> = self.profile_suite(suite, seed);

        // Temperature set-points group the grid like the physical campaign
        // (heat once per temperature, then sweep refresh periods).
        let mut all_ops: Vec<(OperatingPoint, bool)> = Vec::new();
        all_ops.extend(self.config.wer_ops.iter().map(|&op| (op, false)));
        all_ops.extend(self.config.pue_ops.iter().map(|&op| (op, true)));
        // total_cmp: NaN-proof (a hand-built config with a NaN set-point
        // must not panic the whole campaign mid-collect).
        all_ops.sort_by(|a, b| a.0.temp_c.total_cmp(&b.0.temp_c));

        let mut cursor = 0;
        while cursor < all_ops.len() {
            // One thermal settle per set-point, then the whole block in
            // parallel.
            let temp = all_ops[cursor].0.temp_c;
            let block_end = all_ops[cursor..]
                .iter()
                .position(|(op, _)| op.temp_c != temp)
                .map_or(all_ops.len(), |n| cursor + n);
            self.server.thermal_mut().set_all_targets(temp);
            simulated += self.server.thermal_mut().settle(0.5, 3600.0);

            let block_ops = &all_ops[cursor..block_end];
            // Population keys within the block: the temperature is fixed,
            // so groups are (workload, vdd) — in practice one vdd, i.e.
            // one prepared population per workload per set-point.
            let vdds: Vec<u64> = {
                let mut v: Vec<u64> = Vec::new();
                for (op, _) in block_ops {
                    if !v.contains(&op.vdd_v.to_bits()) {
                        v.push(op.vdd_v.to_bits());
                    }
                }
                v
            };
            let campaign = &self;
            let profiled_ref = &profiled;
            // Realize each group's population once, on the shared pool
            // (each realization also fans out internally). Groups that
            // would be replayed only once (a lone set-point with no
            // repeats) skip preparation — freezing a population that is
            // thresholded a single time costs more than the direct run it
            // would save. The direct path skips all of this entirely.
            let prepared_groups: Vec<Option<PreparedRun<'_>>> = if prepared {
                let groups: Vec<(usize, u64)> = (0..profiled.len())
                    .flat_map(|w| vdds.iter().map(move |&v| (w, v)))
                    .collect();
                pool::fan_out(groups, |(w, vdd_bits)| {
                    let ops: Vec<OperatingPoint> = block_ops
                        .iter()
                        .filter(|(op, _)| op.vdd_v.to_bits() == vdd_bits)
                        .map(|&(op, _)| op)
                        .collect();
                    let replays: u32 = block_ops
                        .iter()
                        .filter(|(op, _)| op.vdd_v.to_bits() == vdd_bits)
                        .map(|&(_, is_pue)| if is_pue { campaign.config.pue_repeats } else { 1 })
                        .sum();
                    (replays > 1).then(|| campaign.prepare(&profiled_ref[w], &ops))
                })
            } else {
                Vec::new()
            };

            let grid: Vec<(OperatingPoint, bool, usize)> = block_ops
                .iter()
                .flat_map(|&(op, is_pue)| {
                    (0..profiled.len()).map(move |w| (op, is_pue, w))
                })
                .collect();
            let block_rows: Vec<CampaignRow> =
                pool::fan_out(grid, |(op, is_pue, w)| {
                    let p = &profiled_ref[w];
                    let row_seed = seed ^ hash_name(&p.name) ^ ((op.trefp_s * 1e4) as u64);
                    let repeats = if is_pue { campaign.config.pue_repeats } else { 1 };
                    let group = if prepared {
                        let vdd_idx =
                            vdds.iter().position(|&v| v == op.vdd_v.to_bits()).unwrap();
                        prepared_groups[w * vdds.len() + vdd_idx].as_ref()
                    } else {
                        None
                    };
                    let mut runs = match group {
                        Some(prep) => campaign.characterize_prepared(prep, op, repeats, row_seed),
                        None => campaign.characterize(p, op, repeats, row_seed),
                    };
                    let (wer_run, pue_runs) = if is_pue {
                        (None, runs)
                    } else {
                        (Some(runs.remove(0)), Vec::new())
                    };
                    CampaignRow {
                        workload: p.name.clone(),
                        op,
                        features: p.features.clone(),
                        wer_run,
                        pue_runs,
                    }
                });
            for row in &block_rows {
                let runs = if row.wer_run.is_some() { 1 } else { row.pue_runs.len() };
                simulated += self.config.run_duration_s * runs as f64;
            }
            rows.extend(block_rows);
            cursor = block_end;
        }
        CampaignData { rows, simulated_seconds: simulated }
    }
}

/// The derived seed of repeat `r` (shared by both characterization paths).
fn repeat_seed(seed: u64, r: u32) -> u64 {
    seed ^ (r as u64).wrapping_mul(0x9E37_79B9)
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_workloads::{Scale, WorkloadId};

    fn tiny_suite() -> Vec<BoxedWorkload> {
        vec![
            WorkloadId::Backprop.instantiate(1, Scale::Test),
            WorkloadId::Memcached.instantiate(8, Scale::Test),
            WorkloadId::Nw.instantiate(1, Scale::Test),
        ]
    }

    #[test]
    fn collect_produces_a_row_per_workload_per_op() {
        let campaign = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let data = campaign.collect(&tiny_suite(), 1);
        // 3 workloads × (4 WER ops + 2 PUE ops).
        assert_eq!(data.rows.len(), 18);
        assert_eq!(data.workloads().len(), 3);
        assert!(data.simulated_seconds > 0.0);
    }

    #[test]
    fn pue_rises_with_trefp_at_70c() {
        let campaign = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let data = campaign.collect(&tiny_suite(), 1);
        let pue_low: f64 = data
            .rows
            .iter()
            .filter(|r| !r.pue_runs.is_empty() && r.op.trefp_s < 2.0)
            .map(CampaignRow::pue)
            .sum();
        let pue_high: f64 = data
            .rows
            .iter()
            .filter(|r| !r.pue_runs.is_empty() && r.op.trefp_s > 2.0)
            .map(CampaignRow::pue)
            .sum();
        assert!(pue_high >= pue_low, "PUE must not shrink with TREFP: {pue_high} vs {pue_low}");
        assert!(pue_high > 0.0, "max TREFP at 70°C must crash sometimes");
    }

    #[test]
    fn json_roundtrip() {
        let campaign = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let data = campaign.collect(&tiny_suite()[..1], 1);
        let json = data.to_json().unwrap();
        let back = CampaignData::from_json(&json).unwrap();
        assert_eq!(back.rows.len(), data.rows.len());
        assert_eq!(back.rows[0].workload, data.rows[0].workload);
    }

    #[test]
    fn collect_stored_round_trips_byte_identically() {
        let dir = std::env::temp_dir()
            .join(format!("wade-campaign-store-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = wade_store::ArtifactStore::open(&dir);
        let suite = tiny_suite();
        let campaign = || Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let cold = campaign().collect_stored(&store, &suite, 3);
        assert_eq!((store.writes(), store.hits()), (1, 0));
        let warm = campaign().collect_stored(&store, &suite, 3);
        assert_eq!(store.hits(), 1);
        let reference = campaign().collect(&suite, 3);
        assert_eq!(cold.to_json().unwrap(), reference.to_json().unwrap());
        assert_eq!(warm.to_json().unwrap(), reference.to_json().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_store_key_separates_every_input() {
        let key = |device: u64, seed: u64, config: CampaignConfig, n: usize| {
            crate::campaign_store_key(
                &SimulatedServer::with_seed(device),
                &config,
                &tiny_suite()[..n],
                seed,
            )
        };
        let base = key(5, 3, CampaignConfig::quick(), 3);
        assert_eq!(base, key(5, 3, CampaignConfig::quick(), 3), "key must be stable");
        assert_ne!(base, key(6, 3, CampaignConfig::quick(), 3), "device seed");
        assert_ne!(base, key(5, 4, CampaignConfig::quick(), 3), "campaign seed");
        assert_ne!(base, key(5, 3, CampaignConfig::paper_full(), 3), "grid");
        assert_ne!(base, key(5, 3, CampaignConfig::quick(), 2), "suite");
    }

    #[test]
    fn collect_is_identical_across_thread_counts() {
        // The rayon fan-out over the grid and the PUE repeats must be
        // invisible: byte-identical campaign data on 1 and N threads.
        let collect_with = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
                    .collect(&tiny_suite(), 3)
            })
        };
        let serial = collect_with(1);
        let parallel = collect_with(8);
        assert_eq!(serial.simulated_seconds, parallel.simulated_seconds);
        assert_eq!(serial.to_json().unwrap(), parallel.to_json().unwrap());
    }

    #[test]
    fn collect_matches_the_direct_reference_path() {
        // The prepared-population cache must be invisible: byte-identical
        // campaign data whether populations are realized per run or frozen
        // once per (workload, temp, vdd) group.
        let suite = tiny_suite();
        let cached = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .collect(&suite, 3);
        let direct = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .collect_direct(&suite, 3);
        assert_eq!(cached.simulated_seconds, direct.simulated_seconds);
        assert_eq!(cached.to_json().unwrap(), direct.to_json().unwrap());
    }

    #[test]
    fn prepared_characterization_matches_direct_per_row() {
        let campaign = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let wl = WorkloadId::Memcached.instantiate(8, Scale::Test);
        let p = campaign.profile(wl.as_ref(), 2);
        let ops: Vec<_> = CampaignConfig::quick().pue_ops;
        let prepared = campaign.prepare(&p, &ops);
        for &op in &ops {
            assert_eq!(
                campaign.characterize(&p, op, 3, 17),
                campaign.characterize_prepared(&prepared, op, 3, 17),
                "prepared replay diverged at {op}"
            );
        }
    }

    #[test]
    fn characterization_is_deterministic() {
        let campaign = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
        let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);
        let p = campaign.profile(wl.as_ref(), 2);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let a = campaign.characterize(&p, op, 2, 9);
        let b = campaign.characterize(&p, op, 2, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.wer, y.wer);
            assert_eq!(x.crashed, y.crashed);
        }
    }
}
