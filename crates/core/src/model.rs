//! The error behavioural model `M` (eq. 1).

use crate::campaign::CampaignData;
use crate::collect::{build_pue_dataset, build_wer_dataset, op_augmented_row};
use crate::predictor::{dataset_id, model_store_key, pue_key, wer_key, MODEL_KIND};
use wade_dram::{OperatingPoint, RANK_COUNT};
use wade_features::{FeatureSet, FeatureVector};
use serde::{Deserialize, Serialize};
use wade_ml::{
    Dataset, ForestRegressor, ForestTrainer, KnnRegressor, KnnTrainer, Regressor, SvrRegressor,
    SvrTrainer, Trainer,
};
use wade_store::ArtifactStore;

/// Version of the paper-default trainer configurations
/// ([`wade_ml::KnnTrainer::paper_default`] and the SVR/forest siblings)
/// folded into persistent model-store keys. **Bump on any hyper-parameter
/// or training-algorithm change** (a re-baselining event for trained
/// models), so fold models persisted under the old configuration read as
/// misses instead of stale hits.
///
/// v2: forest models serialize their flat node arena
/// ([`wade_ml::ForestRegressor`]) instead of pointer trees, so v1 `model`
/// artifacts must read as misses and be re-trained (then re-published) in
/// arena form.
pub const TRAINER_CONFIG_VERSION: u32 = 2;

/// The three supervised learners compared in the paper (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlKind {
    /// Support vector machine (ε-SVR, RBF kernel).
    Svm,
    /// K-nearest neighbours — the paper's most accurate model.
    Knn,
    /// Random decision forest.
    Rdf,
}

impl MlKind {
    /// All learners, in the paper's presentation order.
    pub const ALL: [MlKind; 3] = [MlKind::Svm, MlKind::Knn, MlKind::Rdf];

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            MlKind::Svm => "SVM",
            MlKind::Knn => "KNN",
            MlKind::Rdf => "RDF",
        }
    }

    /// Trains a boxed regressor of this kind on the given matrix.
    pub fn train_boxed(&self, x: &[Vec<f64>], y: &[f64]) -> Box<dyn Regressor> {
        match self.train_any(x, y) {
            AnyModel::Knn(m) => Box::new(m),
            AnyModel::Svr(m) => Box::new(m),
            AnyModel::Rdf(m) => Box::new(m),
        }
    }

    /// Trains a shared (`Arc`) regressor of this kind — the form the
    /// parallel evaluation grid memoizes and hands out across threads.
    pub fn train_shared(&self, x: &[Vec<f64>], y: &[f64]) -> wade_ml::SharedModel {
        match self.train_any(x, y) {
            AnyModel::Knn(m) => std::sync::Arc::new(m),
            AnyModel::Svr(m) => std::sync::Arc::new(m),
            AnyModel::Rdf(m) => std::sync::Arc::new(m),
        }
    }

    /// The stable trainer key of this kind inside evaluation-grid memo
    /// tables (presentation-order index).
    pub(crate) fn grid_key(&self) -> u64 {
        match self {
            MlKind::Svm => 0,
            MlKind::Knn => 1,
            MlKind::Rdf => 2,
        }
    }

    /// The trainer-configuration tag inside persistent model-store keys:
    /// the learner label plus [`TRAINER_CONFIG_VERSION`]. Together with the
    /// dataset fingerprint and the held-out fold it fully keys a trained
    /// fold model.
    pub(crate) fn store_tag(&self) -> String {
        format!("{}|cfg=v{TRAINER_CONFIG_VERSION}", self.label())
    }

    /// Trains a serializable regressor of this kind.
    pub fn train_any(&self, x: &[Vec<f64>], y: &[f64]) -> AnyModel {
        match self {
            MlKind::Svm => AnyModel::Svr(SvrTrainer::paper_default().train(x, y)),
            MlKind::Knn => AnyModel::Knn(KnnTrainer::paper_default().train(x, y)),
            MlKind::Rdf => AnyModel::Rdf(ForestTrainer::paper_default().train(x, y)),
        }
    }
}

impl core::fmt::Display for MlKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// A trained regressor of any of the three families, serializable so the
/// model can be shipped — mirroring the paper's public release of its
/// trained KNN model ("we make the DRAM error behavioral model publicly
/// available", §I).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AnyModel {
    /// K-nearest-neighbours model.
    Knn(KnnRegressor),
    /// ε-SVR model.
    Svr(SvrRegressor),
    /// Random-forest model.
    Rdf(ForestRegressor),
}

impl Regressor for AnyModel {
    fn predict(&self, features: &[f64]) -> f64 {
        match self {
            AnyModel::Knn(m) => m.predict(features),
            AnyModel::Svr(m) => m.predict(features),
            AnyModel::Rdf(m) => m.predict(features),
        }
    }

    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        // Delegate so batches reach the inner models' own fan-out policy
        // (the default trait impl would re-dispatch per row through the
        // enum match instead).
        match self {
            AnyModel::Knn(m) => m.predict_batch(rows),
            AnyModel::Svr(m) => m.predict_batch(rows),
            AnyModel::Rdf(m) => m.predict_batch(rows),
        }
    }
}

/// The trained prediction function
/// `M(Ftrs, Dev, TREFP, VDD, TEMP_DRAM) → (WER, P_UE)` of eq. 1.
///
/// The device dependence (`Dev`) is captured by training one WER model per
/// DIMM/rank of the characterized server, exactly as the paper trains and
/// reports per-DIMM accuracy (Fig. 11). The whole model serialises to JSON
/// for distribution ([`ErrorModel::to_json`]).
#[derive(Serialize, Deserialize)]
pub struct ErrorModel {
    kind: MlKind,
    set: FeatureSet,
    wer_models: Vec<Option<AnyModel>>,
    pue_model: Option<AnyModel>,
}

impl ErrorModel {
    /// The learner used.
    pub fn kind(&self) -> MlKind {
        self.kind
    }

    /// The input feature set used.
    pub fn feature_set(&self) -> FeatureSet {
        self.set
    }

    /// Ranks with a trained WER model (had measurable errors).
    pub fn trained_ranks(&self) -> Vec<usize> {
        self.wer_models
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.as_ref().map(|_| i))
            .collect()
    }

    /// Predicts the WER of one rank for a workload's features at an
    /// operating point. Returns 0 when the rank never produced trainable
    /// samples (an error-free rank).
    pub fn predict_wer(&self, features: &FeatureVector, op: OperatingPoint, rank: usize) -> f64 {
        match &self.wer_models[rank] {
            Some(model) => {
                let row = op_augmented_row(features, self.set, op);
                10f64.powf(model.predict(&row))
            }
            None => 0.0,
        }
    }

    /// Server-aggregate WER: sum of the per-rank predictions (per-rank WER
    /// shares the full-footprint denominator, so the sum is the total).
    pub fn predict_wer_total(&self, features: &FeatureVector, op: OperatingPoint) -> f64 {
        (0..RANK_COUNT).map(|r| self.predict_wer(features, op, r)).sum()
    }

    /// Predicts the probability of an uncorrectable error for a 2-hour run.
    pub fn predict_pue(&self, features: &FeatureVector, op: OperatingPoint) -> f64 {
        match &self.pue_model {
            Some(model) => {
                let row = op_augmented_row(features, self.set, op);
                model.predict(&row).clamp(0.0, 1.0)
            }
            None => 0.0,
        }
    }

    /// Predicts a whole batch of rows through [`Regressor::predict_batch`]
    /// (one batched call per trained rank model plus one for the PUE
    /// model), byte-identical to calling [`ErrorModel::predict_wer`] /
    /// [`ErrorModel::predict_pue`] row by row: rows are independent, and
    /// `predict_batch` is byte-identical to the serial per-row map
    /// (`tests/ml_parallel.rs`), so a row's prediction does not depend on
    /// which other rows share its batch — the contract the serving layer's
    /// micro-batching queue rests on.
    pub fn predict_rows(&self, rows: &[(FeatureVector, OperatingPoint)]) -> Vec<Prediction> {
        let augmented: Vec<Vec<f64>> =
            rows.iter().map(|(f, op)| op_augmented_row(f, self.set, *op)).collect();
        let per_rank: Vec<Option<Vec<f64>>> = self
            .wer_models
            .iter()
            .map(|m| {
                m.as_ref().map(|model| {
                    model.predict_batch(&augmented).iter().map(|p| 10f64.powf(*p)).collect()
                })
            })
            .collect();
        let pue: Option<Vec<f64>> = self
            .pue_model
            .as_ref()
            .map(|m| m.predict_batch(&augmented).iter().map(|p| p.clamp(0.0, 1.0)).collect());
        (0..rows.len())
            .map(|i| {
                let wer_per_rank: Vec<f64> = per_rank
                    .iter()
                    .map(|r| r.as_ref().map_or(0.0, |v| v[i]))
                    .collect();
                Prediction {
                    wer_total: wer_per_rank.iter().sum(),
                    wer_per_rank,
                    pue: pue.as_ref().map_or(0.0, |v| v[i]),
                }
            })
            .collect()
    }
}

/// One row's full prediction bundle, as produced by
/// [`ErrorModel::predict_rows`] — and, byte-for-byte, by the serving
/// layer's `POST /predict` (the golden contract of `tests/serving.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Per-rank WER (eq. 1), `0.0` for ranks without a trained model.
    pub wer_per_rank: Vec<f64>,
    /// Server-aggregate WER: the sum of the per-rank predictions.
    pub wer_total: f64,
    /// Probability of an uncorrectable error for a 2-hour run, in `[0, 1]`.
    pub pue: f64,
}

impl ErrorModel {
    /// Serialises the trained model to JSON (the distributable artifact).
    ///
    /// # Errors
    /// Returns [`crate::WadeError::Persistence`] if serialisation fails.
    pub fn to_json(&self) -> Result<String, crate::WadeError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Restores a trained model from JSON.
    ///
    /// # Errors
    /// Returns [`crate::WadeError::Persistence`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, crate::WadeError> {
        Ok(serde_json::from_str(json)?)
    }
}

impl core::fmt::Debug for ErrorModel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ErrorModel")
            .field("kind", &self.kind)
            .field("set", &self.set)
            .field("trained_ranks", &self.trained_ranks())
            .field("has_pue_model", &self.pue_model.is_some())
            .finish()
    }
}

/// Trains the full error model from campaign data: one WER regressor per
/// rank (log₁₀-space) plus one PUE regressor.
pub fn train_error_model(data: &CampaignData, kind: MlKind, set: FeatureSet) -> ErrorModel {
    let mut wer_models = Vec::with_capacity(RANK_COUNT);
    for rank in 0..RANK_COUNT {
        let ds = build_wer_dataset(data, set, rank);
        if ds.len() < 4 {
            wer_models.push(None);
        } else {
            wer_models.push(Some(kind.train_any(&ds.features(), &ds.targets())));
        }
    }
    let pue_ds = build_pue_dataset(data, set);
    let pue_model = if pue_ds.len() < 4 {
        None
    } else {
        Some(kind.train_any(&pue_ds.features(), &pue_ds.targets()))
    };
    ErrorModel { kind, set, wer_models, pue_model }
}

/// [`train_error_model`] through an [`ArtifactStore`]: every per-rank WER
/// model and the PUE model is first looked up under its canonical key
/// (kind [`crate::MODEL_KIND`]; trainer config [`TRAINER_CONFIG_VERSION`],
/// dataset content fingerprint, fold `""` = trained on all samples — the
/// same scheme [`crate::EvalGrid`] uses for fold models) and only trained
/// on a miss, after which the trained model is published best-effort. A
/// degraded, faulty or absent store falls back to in-process training, so
/// the result is **always** byte-identical to [`train_error_model`] (the
/// store round-trips `f64` exactly); `tests/serving.rs` asserts this cold
/// and warm.
pub fn train_error_model_stored(
    store: Option<&ArtifactStore>,
    data: &CampaignData,
    kind: MlKind,
    set: FeatureSet,
) -> ErrorModel {
    let train_via_store = |slot: u64, ds: &Dataset| -> AnyModel {
        let train = || kind.train_any(&ds.features(), &ds.targets());
        match (store, dataset_id(slot, ds)) {
            (Some(store), Some(id)) => {
                let key = model_store_key(kind, &id, "");
                if let Some(model) = store.get::<AnyModel>(MODEL_KIND, &key) {
                    return model;
                }
                let model = train();
                let _ = store.put(MODEL_KIND, &key, &model);
                model
            }
            _ => train(),
        }
    };
    let mut wer_models = Vec::with_capacity(RANK_COUNT);
    for rank in 0..RANK_COUNT {
        let ds = build_wer_dataset(data, set, rank);
        if ds.len() < 4 {
            wer_models.push(None);
        } else {
            wer_models.push(Some(train_via_store(wer_key(set, rank), &ds)));
        }
    }
    let pue_ds = build_pue_dataset(data, set);
    let pue_model =
        if pue_ds.len() < 4 { None } else { Some(train_via_store(pue_key(set), &pue_ds)) };
    ErrorModel { kind, set, wer_models, pue_model }
}

/// The canonical store keys (kind [`crate::MODEL_KIND`]) of the artifacts
/// a [`train_error_model_stored`] call reads and writes for this `(data,
/// kind, set)` combination: one per trainable rank (in rank order) plus
/// the PUE model, skipping targets whose dataset fails the training guard
/// or whose identity fails to serialize. The serving layer polls exactly
/// these entries (through the [`StoreFs`](wade_store::StoreFs) seam) to
/// detect model swaps and hot-reload.
pub fn serving_model_keys(data: &CampaignData, kind: MlKind, set: FeatureSet) -> Vec<String> {
    let mut keys = Vec::new();
    let mut push = |slot: u64, ds: &Dataset| {
        if ds.len() >= 4 {
            if let Some(id) = dataset_id(slot, ds) {
                keys.push(model_store_key(kind, &id, ""));
            }
        }
    };
    for rank in 0..RANK_COUNT {
        push(wer_key(set, rank), &build_wer_dataset(data, set, rank));
    }
    push(pue_key(set), &build_pue_dataset(data, set));
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use crate::server::SimulatedServer;
    use wade_workloads::{Scale, WorkloadId};

    fn data() -> CampaignData {
        let suite = vec![
            WorkloadId::Backprop.instantiate(1, Scale::Test),
            WorkloadId::Nw.instantiate(1, Scale::Test),
            WorkloadId::Memcached.instantiate(8, Scale::Test),
            WorkloadId::Srad.instantiate(8, Scale::Test),
        ];
        Campaign::new(SimulatedServer::with_seed(11), CampaignConfig::quick()).collect(&suite, 4)
    }

    #[test]
    fn model_trains_and_predicts_positive_wer() {
        let d = data();
        let model = train_error_model(&d, MlKind::Knn, FeatureSet::Set1);
        assert!(!model.trained_ranks().is_empty(), "no rank had errors");
        let row = &d.rows[0];
        let total = model.predict_wer_total(&row.features, row.op);
        assert!(total > 0.0);
        assert!(total < 1.0);
    }

    #[test]
    fn pue_prediction_is_a_probability() {
        let d = data();
        let model = train_error_model(&d, MlKind::Rdf, FeatureSet::Set2);
        for row in &d.rows {
            let p = model.predict_pue(&row.features, row.op);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn trained_model_tracks_trefp_direction() {
        let d = data();
        let model = train_error_model(&d, MlKind::Knn, FeatureSet::Set2);
        let row = &d.rows[0];
        let low = model.predict_wer_total(&row.features, OperatingPoint::relaxed(1.173, 60.0));
        let high = model.predict_wer_total(&row.features, OperatingPoint::relaxed(2.283, 60.0));
        assert!(high > low, "WER prediction must grow with TREFP: {high} vs {low}");
    }

    #[test]
    fn trained_model_roundtrips_through_json() {
        let d = data();
        let model = train_error_model(&d, MlKind::Knn, FeatureSet::Set1);
        let json = model.to_json().expect("serialise");
        let restored = ErrorModel::from_json(&json).expect("restore");
        let row = &d.rows[0];
        assert_eq!(
            model.predict_wer_total(&row.features, row.op),
            restored.predict_wer_total(&row.features, row.op)
        );
        assert_eq!(
            model.predict_pue(&row.features, OperatingPoint::relaxed(2.283, 70.0)),
            restored.predict_pue(&row.features, OperatingPoint::relaxed(2.283, 70.0))
        );
        assert_eq!(restored.kind(), MlKind::Knn);
    }

    #[test]
    fn all_three_learners_train() {
        let d = data();
        for kind in MlKind::ALL {
            let model = train_error_model(&d, kind, FeatureSet::Set1);
            assert_eq!(model.kind(), kind);
            assert_eq!(model.kind().label().len(), 3);
        }
    }
}
