//! The thermal testbed: per-DIMM heaters under closed-loop PID control.
//!
//! The paper's setup (§IV-A, Figs. 5/6) fits each DIMM with a resistive
//! heating element and thermocouple, driven by four closed-loop PID
//! controllers on a Raspberry Pi. This module simulates that plant: a
//! first-order thermal model per DIMM with a PID loop that the campaign
//! uses to set and settle 50/60/70 °C before characterizing.

/// A textbook PID controller.
#[derive(Debug, Clone)]
pub struct PidController {
    kp: f64,
    ki: f64,
    kd: f64,
    integral: f64,
    last_error: Option<f64>,
    output_limit: f64,
}

impl PidController {
    /// Creates a controller with the given gains and output saturation.
    pub fn new(kp: f64, ki: f64, kd: f64, output_limit: f64) -> Self {
        Self { kp, ki, kd, integral: 0.0, last_error: None, output_limit }
    }

    /// One control step: returns the actuation (heater watts) for the
    /// current error, advancing internal state by `dt` seconds.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        self.integral += error * dt;
        // Anti-windup: clamp the integral to what the actuator can express.
        let i_cap = self.output_limit / self.ki.max(1e-9);
        self.integral = self.integral.clamp(-i_cap, i_cap);
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        (self.kp * error + self.ki * self.integral + self.kd * derivative)
            .clamp(0.0, self.output_limit)
    }

    /// Resets integral/derivative state (new setpoint).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

/// First-order thermal plant + PID loop per DIMM.
#[derive(Debug, Clone)]
pub struct ThermalTestbed {
    temps_c: [f64; 4],
    targets_c: [f64; 4],
    controllers: Vec<PidController>,
    ambient_c: f64,
    /// Thermal mass (J/°C) of a DIMM + adapter.
    heat_capacity: f64,
    /// Loss coefficient (W/°C) to ambient.
    loss_coeff: f64,
}

impl ThermalTestbed {
    /// Builds the testbed at ambient temperature (server inlet ~35 °C).
    pub fn new() -> Self {
        let ambient = 35.0;
        Self {
            temps_c: [ambient; 4],
            targets_c: [ambient; 4],
            controllers: (0..4).map(|_| PidController::new(8.0, 0.08, 1.0, 60.0)).collect(),
            ambient_c: ambient,
            heat_capacity: 60.0,
            loss_coeff: 0.8,
        }
    }

    /// Sets the target temperature of one DIMM.
    ///
    /// # Panics
    /// Panics if `dimm >= 4`.
    pub fn set_target(&mut self, dimm: usize, target_c: f64) {
        assert!(dimm < 4, "dimm {dimm} out of range");
        self.targets_c[dimm] = target_c;
        self.controllers[dimm].reset();
    }

    /// Sets all DIMMs to the same target (the campaign's usual mode).
    pub fn set_all_targets(&mut self, target_c: f64) {
        for d in 0..4 {
            self.set_target(d, target_c);
        }
    }

    /// Advances the plant by `dt` seconds.
    pub fn step(&mut self, dt: f64) {
        for d in 0..4 {
            let error = self.targets_c[d] - self.temps_c[d];
            let power = self.controllers[d].step(error, dt);
            let d_temp =
                (power - self.loss_coeff * (self.temps_c[d] - self.ambient_c)) / self.heat_capacity;
            self.temps_c[d] += d_temp * dt;
        }
    }

    /// Steps until every DIMM is within `tol_c` of target (or the time
    /// budget runs out). Returns the simulated seconds elapsed.
    pub fn settle(&mut self, tol_c: f64, max_seconds: f64) -> f64 {
        let dt = 1.0;
        let mut elapsed = 0.0;
        while elapsed < max_seconds {
            if self
                .temps_c
                .iter()
                .zip(self.targets_c.iter())
                .all(|(t, g)| (t - g).abs() <= tol_c)
            {
                return elapsed;
            }
            self.step(dt);
            elapsed += dt;
        }
        elapsed
    }

    /// Current DIMM temperatures (°C).
    pub fn temperatures_c(&self) -> [f64; 4] {
        self.temps_c
    }
}

impl Default for ThermalTestbed {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_settles_on_target() {
        let mut bed = ThermalTestbed::new();
        bed.set_all_targets(70.0);
        let t = bed.settle(0.5, 3600.0);
        assert!(t < 3600.0, "did not settle");
        for temp in bed.temperatures_c() {
            assert!((temp - 70.0).abs() <= 0.5, "temp {temp}");
        }
    }

    #[test]
    fn dimms_are_independent() {
        let mut bed = ThermalTestbed::new();
        bed.set_target(0, 50.0);
        bed.set_target(3, 70.0);
        bed.settle(0.5, 3600.0);
        let temps = bed.temperatures_c();
        assert!((temps[0] - 50.0).abs() < 1.0);
        assert!((temps[3] - 70.0).abs() < 1.0);
        assert!(temps[3] > temps[0] + 15.0);
    }

    #[test]
    fn overshoot_is_bounded() {
        let mut bed = ThermalTestbed::new();
        bed.set_all_targets(60.0);
        let mut max_temp: f64 = 0.0;
        for _ in 0..3600 {
            bed.step(1.0);
            max_temp = max_temp.max(bed.temperatures_c()[0]);
        }
        assert!(max_temp < 66.0, "overshoot to {max_temp}");
    }

    #[test]
    fn heater_cannot_cool_below_ambient() {
        let mut bed = ThermalTestbed::new();
        bed.set_all_targets(10.0); // below ambient: unreachable
        bed.settle(0.5, 600.0);
        for temp in bed.temperatures_c() {
            assert!(temp >= 34.0, "temp {temp} below ambient");
        }
    }

    #[test]
    fn pid_output_saturates() {
        let mut pid = PidController::new(100.0, 1.0, 0.0, 60.0);
        assert_eq!(pid.step(1000.0, 1.0), 60.0);
        assert_eq!(pid.step(-1000.0, 1.0), 0.0);
    }
}
