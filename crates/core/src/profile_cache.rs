//! Campaign-level caching of the profiling phase.
//!
//! Profiling is deterministic: a workload's [`ProfiledWorkload`] is a pure
//! function of (workload identity, problem scale, run seed, SoC
//! configuration) — the DRAM device never enters the profiling phase, so
//! two servers with different device seeds share profiles. Repeated
//! campaigns and the `repro_all` figure binaries therefore re-execute the
//! same 14–17 kernels over and over for byte-identical results. The
//! [`ProfileCache`] memoizes them: each configuration is profiled once and
//! the frozen [`ProfiledWorkload`] is shared behind an [`Arc`] — the
//! profiling-phase mirror of `wade_dram::PreparedRun` one layer down.
//!
//! A cache hit is *bit-identical* to a fresh profile (asserted by tests),
//! so the cache is invisible to every consumer, including the seeded
//! ML-accuracy baselines.
//!
//! # Disk tier
//!
//! The in-process memo is backed by an optional [`wade_store::ArtifactStore`]
//! tier (kind `"profile"`, keyed by the same fields as the memo): a memory
//! miss consults the store before profiling, and fresh profiles are
//! published back, so *separate processes* — `repro_all` and each
//! standalone figure binary — share one profiling pass. The vendored
//! `serde_json` round-trips `f64` exactly, so a disk hit is byte-identical
//! to a fresh profile (asserted by `tests/artifact_store.rs`); corrupt or
//! foreign-version entries read as misses and are rewritten. Caches built
//! with [`ProfileCache::new`] have no disk tier; the process-wide
//! [`ProfileCache::global`] adopts the store installed by
//! `wade_store::install_global` (the figure binaries install one at
//! startup).

use crate::server::{ProfiledWorkload, SimulatedServer};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use wade_store::ArtifactStore;
use wade_workloads::{Scale, Workload};

/// Poison-tolerant lock: every mutation of the protected state is a single
/// map/`Option` operation, so a thread that panicked while holding the
/// guard cannot have left it torn — recovering the inner value is always
/// safe, and one crashed profiling thread must not poison every later
/// campaign in the process.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The memo key: everything the profiling phase depends on.
///
/// `name` alone distinguishes the kernel family and its paper label (e.g.
/// `"backprop"` vs `"backprop(par)"`), but `threads` and `scale` are keyed
/// explicitly so non-paper thread counts and Test-vs-Full instances of the
/// same label can never collide; `deploy_*` keys the extrapolation
/// constants a custom [`Workload::deploy_scale`] may override (they shape
/// the cached features and usage profile); `token` is the escape hatch for
/// custom kernels whose behaviour varies beyond all of those
/// ([`Workload::cache_token`]). `soc_fingerprint` covers the SoC
/// configuration the profiling hierarchy runs on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProfileKey {
    name: String,
    threads: u8,
    scale: Scale,
    seed: u64,
    deploy_footprint_words: u64,
    deploy_reuse_scale_bits: u64,
    token: u64,
    soc_fingerprint: u64,
}

impl ProfileKey {
    /// The canonical store-key string: every memo-key field, pipe-joined in
    /// declaration order (floats by bit pattern, so the key is exact).
    fn canonical(&self) -> String {
        format!(
            "profile|name={}|threads={}|scale={:?}|seed={}|deploy_words={}|reuse_bits={:016x}|token={:016x}|soc={:016x}",
            self.name,
            self.threads,
            self.scale,
            self.seed,
            self.deploy_footprint_words,
            self.deploy_reuse_scale_bits,
            self.token,
            self.soc_fingerprint,
        )
    }
}

/// The artifact kind of persisted profiles in the store.
const PROFILE_KIND: &str = "profile";

/// Memoization cap: beyond this many entries new profiles are returned
/// uncached (counted as misses) instead of retained, bounding a long-lived
/// process that sweeps many seeds. Generous versus real use — the full
/// suite is 17 configurations per (seed, SoC).
const MAX_MEMOIZED: usize = 4096;

/// Shared, thread-safe memo table for the profiling phase.
///
/// [`crate::Campaign`] consults the process-wide [`ProfileCache::global`]
/// by default; independent caches can be constructed for isolation (tests,
/// benchmarks).
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<FxHashMap<ProfileKey, Arc<ProfiledWorkload>>>,
    store: Mutex<Option<Arc<ArtifactStore>>>,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// An empty cache with no disk tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty in-process memo backed by `store`'s `"profile"` artifacts.
    pub fn with_store(store: Arc<ArtifactStore>) -> Self {
        let cache = Self::new();
        cache.set_store(Some(store));
        cache
    }

    /// Attaches (or detaches, with `None`) the disk tier. Memoized entries
    /// and counters are kept.
    pub fn set_store(&self, store: Option<Arc<ArtifactStore>>) {
        *relock(&self.store) = store;
    }

    /// The process-wide cache shared by every [`crate::Campaign`] (and the
    /// figure binaries) unless told otherwise. Its disk tier is the
    /// process-wide `wade_store` store at first use, if one was installed.
    pub fn global() -> Arc<ProfileCache> {
        static GLOBAL: OnceLock<Arc<ProfileCache>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| {
                let cache = ProfileCache::new();
                cache.set_store(wade_store::global());
                Arc::new(cache)
            })
            .clone()
    }

    /// Profiles `workload` on `server` with memoization: the first call per
    /// (workload name, threads, scale, seed, SoC config) executes the
    /// kernel; every later call returns the same frozen [`ProfiledWorkload`]
    /// allocation.
    pub fn profile(
        &self,
        server: &SimulatedServer,
        workload: &dyn Workload,
        seed: u64,
    ) -> Arc<ProfiledWorkload> {
        let deploy = workload.deploy_scale();
        let key = ProfileKey {
            name: workload.name(),
            threads: workload.threads(),
            scale: workload.scale(),
            seed,
            deploy_footprint_words: deploy.footprint_words,
            deploy_reuse_scale_bits: deploy.reuse_scale.to_bits(),
            token: workload.cache_token(),
            soc_fingerprint: server.soc_fingerprint(),
        };
        if let Some(hit) = relock(&self.map).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Memory miss: consult the disk tier before paying for a profiling
        // run. A disk hit is byte-identical to a fresh profile (the store
        // round-trips exactly), so it can be memoized like one.
        let store = relock(&self.store).clone();
        if let Some(store) = &store {
            if let Some(stored) =
                store.get::<ProfiledWorkload>(PROFILE_KIND, &key.canonical())
            {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return self.memoize(key, Arc::new(stored));
            }
        }
        // Profile outside the lock so concurrent misses on *different*
        // workloads don't serialize. Concurrent misses on the same key both
        // compute (deterministically identical values); the first insert
        // wins so all consumers share one canonical allocation.
        let fresh = Arc::new(server.profile_workload(workload, seed));
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &store {
            // Best effort: an unwritable store degrades to in-process-only
            // caching, never to failure.
            let _ = store.put(PROFILE_KIND, &key.canonical(), fresh.as_ref());
        }
        self.memoize(key, fresh)
    }

    /// Inserts under the memo cap; the first insert wins so every consumer
    /// shares one canonical allocation.
    fn memoize(&self, key: ProfileKey, value: Arc<ProfiledWorkload>) -> Arc<ProfiledWorkload> {
        let mut map = relock(&self.map);
        if map.len() >= MAX_MEMOIZED && !map.contains_key(&key) {
            // At capacity: serve the value without retaining it.
            return value;
        }
        map.entry(key).or_insert(value).clone()
    }

    /// Number of configurations currently memoized.
    pub fn len(&self) -> usize {
        relock(&self.map).len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-memory cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Profiles served from the disk tier (memory misses that avoided a
    /// profiling run).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. actual profiling runs) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every memoized profile (counters are kept).
    pub fn clear(&self) {
        relock(&self.map).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_workloads::WorkloadId;

    #[test]
    fn hit_is_bit_identical_to_fresh_profile() {
        let cache = ProfileCache::new();
        let server = SimulatedServer::with_seed(5);
        let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);
        let first = cache.profile(&server, wl.as_ref(), 3);
        let second = cache.profile(&server, wl.as_ref(), 3);
        assert!(Arc::ptr_eq(&first, &second), "hit must share the frozen allocation");
        assert_eq!(*first, server.profile_workload(wl.as_ref(), 3));
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn key_separates_seed_threads_and_scale() {
        let cache = ProfileCache::new();
        let server = SimulatedServer::with_seed(5);
        let one = WorkloadId::Kmeans.instantiate(1, Scale::Test);
        let par = WorkloadId::Kmeans.instantiate(8, Scale::Test);
        let full = WorkloadId::Kmeans.instantiate(1, Scale::Full);
        cache.profile(&server, one.as_ref(), 3);
        cache.profile(&server, one.as_ref(), 4); // new seed
        cache.profile(&server, par.as_ref(), 3); // new thread count
        cache.profile(&server, full.as_ref(), 3); // new scale
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn device_seed_does_not_split_the_cache() {
        // Profiling never touches the DRAM device, so servers that differ
        // only in device seed share entries.
        let cache = ProfileCache::new();
        let wl = WorkloadId::Nw.instantiate(1, Scale::Test);
        let a = cache.profile(&SimulatedServer::with_seed(1), wl.as_ref(), 3);
        let b = cache.profile(&SimulatedServer::with_seed(2), wl.as_ref(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_tier_shares_profiles_across_cache_instances() {
        let dir = std::env::temp_dir()
            .join(format!("wade-profile-store-unit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir));
        let server = SimulatedServer::with_seed(5);
        let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);

        let cold = ProfileCache::with_store(store.clone());
        let first = cold.profile(&server, wl.as_ref(), 3);
        assert_eq!((cold.misses(), cold.disk_hits()), (1, 0));

        // A fresh cache instance (empty memory, same store) must serve the
        // profile from disk — the cross-process reuse path — and the disk
        // hit must be byte-identical to the fresh profile.
        let warm = ProfileCache::with_store(store);
        let second = warm.profile(&server, wl.as_ref(), 3);
        assert_eq!((warm.misses(), warm.disk_hits()), (0, 1));
        assert_eq!(*first, *second);
        assert_eq!(*second, server.profile_workload(wl.as_ref(), 3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_lock_does_not_take_the_cache_down() {
        let cache = Arc::new(ProfileCache::new());
        let poisoner = cache.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.map.lock().unwrap();
            panic!("simulated profiler crash while holding the memo lock");
        })
        .join();
        // The cache must keep serving (and memoizing) after the poison.
        let server = SimulatedServer::with_seed(5);
        let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);
        let p = cache.profile(&server, wl.as_ref(), 3);
        assert_eq!(*p, server.profile_workload(wl.as_ref(), 3));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_empties_the_table() {
        let cache = ProfileCache::new();
        let server = SimulatedServer::with_seed(5);
        let wl = WorkloadId::Bfs.instantiate(8, Scale::Test);
        cache.profile(&server, wl.as_ref(), 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
