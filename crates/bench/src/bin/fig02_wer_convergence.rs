//! Fig. 2 — WER over time for memcached, backprop and the random
//! data-pattern micro-benchmark (TREFP = 2.283 s, VDD = 1.428 V, 70 °C).
//!
//! Paper shape: backprop converges ~3.5× above the random micro, memcached
//! far below both — real workloads can both exceed and undercut the
//! conventional profiling stressor.

use wade_core::OperatingPoint;
use wade_dram::ErrorSim;
use wade_workloads::{Scale, WorkloadId};

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let server = wade_bench::server();
    let op = OperatingPoint::relaxed(2.283, 70.0);
    let duration = 7200.0;
    let workloads = [
        WorkloadId::Memcached.instantiate(8, Scale::Full),
        WorkloadId::Backprop.instantiate(8, Scale::Full),
        WorkloadId::MicroRandom.instantiate(1, Scale::Full),
    ];

    println!("Fig. 2: WER vs time, {op} (2 h run)");
    let mut curves = Vec::new();
    for wl in &workloads {
        let profiled = wade_core::ProfileCache::global().profile(
            &server,
            wl.as_ref(),
            wade_bench::CAMPAIGN_SEED,
        );
        let run = ErrorSim::new(server.device()).run(&profiled.profile, op, duration, 2);
        curves.push((wl.name(), run));
    }

    print!("{:>10}", "t (min)");
    for (name, _) in &curves {
        print!("  {name:>22}");
    }
    println!();
    for minute in (10..=120).step_by(10) {
        print!("{minute:>10}");
        for (_, run) in &curves {
            print!("  {:>22}", wade_bench::fmt_wer(run.wer_at(minute as f64 * 60.0)));
        }
        println!();
    }
    for (name, run) in &curves {
        if let Some(ue) = run.ue {
            println!("note: {name} crashed with a UE at {:.0} s (70 °C + max TREFP regime)", ue.t_s);
        }
    }

    let final_wer: Vec<f64> = curves.iter().map(|(_, r)| r.wer()).collect();
    println!("\npaper: backprop > random > memcached, backprop/random ≈ 3.5×");
    println!(
        "measured: backprop/random = {:.1}x, random/memcached = {:.1}x",
        final_wer[1] / final_wer[2].max(1e-300),
        final_wer[2] / final_wer[0].max(1e-300)
    );
}
