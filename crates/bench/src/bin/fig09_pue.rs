//! Fig. 9 — (a) the probability of an uncorrectable error per benchmark at
//! TREFP ∈ {1.450, 1.727, 2.283} s / 70 °C, and (b) the distribution of
//! UEs across DIMM/ranks.
//!
//! Paper shape: PUE varies strongly across benchmarks at 1.450 s (0 for
//! memcached/pagerank, up to 0.8 for fmm(par)); the average roughly
//! doubles at 1.727 s; every benchmark crashes at 2.283 s; UEs concentrate
//! on two weak ranks.

use std::collections::BTreeMap;
use wade_dram::RankId;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();

    let mut by_trefp: BTreeMap<i64, Vec<(String, f64)>> = BTreeMap::new();
    let mut rank_ues = [0u64; 8];
    let mut total_ues = 0u64;
    for row in &data.rows {
        if row.pue_runs.is_empty() {
            continue;
        }
        by_trefp
            .entry((row.op.trefp_s * 1000.0) as i64)
            .or_default()
            .push((row.workload.clone(), row.pue()));
        for run in &row.pue_runs {
            if let Some(rank) = run.ue_rank {
                rank_ues[rank] += 1;
                total_ues += 1;
            }
        }
    }

    println!("Fig. 9a: P_UE per benchmark at 70 °C");
    let trefps: Vec<i64> = by_trefp.keys().copied().collect();
    print!("{:<18}", "benchmark");
    for t in &trefps {
        print!(" {:>9}", format!("{:.3}s", *t as f64 / 1000.0));
    }
    println!();
    let workloads: Vec<String> =
        by_trefp.values().next().map(|v| v.iter().map(|(w, _)| w.clone()).collect()).unwrap_or_default();
    for w in &workloads {
        print!("{w:<18}");
        for t in &trefps {
            let p = by_trefp[t].iter().find(|(n, _)| n == w).map(|(_, v)| *v).unwrap_or(0.0);
            print!(" {p:>9.2}");
        }
        println!();
    }
    print!("{:<18}", "AVERAGE");
    let mut avgs = Vec::new();
    for t in &trefps {
        let vals: Vec<f64> = by_trefp[t].iter().map(|(_, v)| *v).collect();
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        avgs.push(avg);
        print!(" {avg:>9.2}");
    }
    println!();
    if avgs.len() >= 2 && avgs[0] > 0.0 {
        println!(
            "\npaper: average grows ~2.15x from 1.450s to 1.727s | measured: {:.2}x",
            avgs[1] / avgs[0]
        );
    }

    println!("\nFig. 9b: probability a UE lands on a given DIMM/rank");
    for (i, &n) in rank_ues.iter().enumerate() {
        let p = if total_ues == 0 { 0.0 } else { n as f64 / total_ues as f64 };
        println!(
            "  {:<12} {:>6.2}  {}",
            RankId::from_index(i).to_string(),
            p,
            "#".repeat((p * 40.0) as usize)
        );
    }
    println!("paper: two weak ranks dominate (0.67 / 0.24), one rank UE-free");
}
