//! Fig. 4 — WER over time for every benchmark (TREFP = 2.283 s, 50 °C).
//!
//! Paper shape: every curve converges within the 2-hour run (the change
//! over the last 10 minutes is below 3 %).

use wade_core::OperatingPoint;
use wade_dram::ErrorSim;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let server = wade_bench::server();
    let op = OperatingPoint::relaxed(2.283, 50.0);
    let suite = wade_bench::experiment_suite();

    println!("Fig. 4: WER vs time per benchmark, {op}");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "benchmark", "30min", "60min", "90min", "120min", "last-10-min%"
    );
    let mut max_change: f64 = 0.0;
    for wl in suite.iter().take(14) {
        let profiled = wade_core::ProfileCache::global().profile(
            &server,
            wl.as_ref(),
            wade_bench::CAMPAIGN_SEED,
        );
        let run = ErrorSim::new(server.device()).run(&profiled.profile, op, 7200.0, 3);
        let w120 = run.wer_at(7200.0);
        let w110 = run.wer_at(6600.0);
        let change = if w120 > 0.0 { 100.0 * (w120 - w110) / w120 } else { 0.0 };
        max_change = max_change.max(change);
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>11.1}%",
            wl.name(),
            wade_bench::fmt_wer(run.wer_at(1800.0)),
            wade_bench::fmt_wer(run.wer_at(3600.0)),
            wade_bench::fmt_wer(run.wer_at(5400.0)),
            wade_bench::fmt_wer(w120),
            change,
        );
    }
    println!("\npaper: <3% change in last 10 min | measured: max {max_change:.1}%");
}
