//! Table III — the three model input sets, with the measured accuracy each
//! one buys (the numbers Figs. 11/12 break down), served from the same
//! shared [`EvalGrid`] evaluation as the figure binaries instead of a
//! third independent re-training.

use wade_core::{EvalGrid, MlKind};
use wade_features::{schema, FeatureSet};

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    println!("Table III: input feature sets used for training");
    println!("{:<12} parameters", "input set");
    println!("{}", "-".repeat(76));
    for set in FeatureSet::ALL {
        println!("{:<12} {}", set.to_string(), set.description());
    }
    println!("\nprogram-feature indices resolved against the 249-feature schema:");
    for set in [FeatureSet::Set1, FeatureSet::Set2] {
        let names: Vec<String> = set.indices().iter().map(|&i| schema::name(i)).collect();
        println!("  {set}: {}", names.join(", "));
    }
    println!(
        "  {}: all {} program features",
        FeatureSet::Set3,
        FeatureSet::Set3.indices().len()
    );

    // What each input set buys: the per-set accuracy summary of the shared
    // model-evaluation grid (one dispatch; fig11/fig12 print the detailed
    // breakdowns of the same cells).
    let data = wade_bench::full_campaign_data();
    let grid = EvalGrid::evaluate(&data);
    println!("\naccuracy per input set (LOWO-CV; WER mean % error / PUE error in pp):");
    print!("{:<8}", "model");
    for set in FeatureSet::ALL {
        print!(" {:>22}", set.to_string());
    }
    println!();
    for kind in MlKind::ALL {
        print!("{:<8}", kind.label());
        for set in FeatureSet::ALL {
            let wer = grid.wer_report(kind, set).average;
            let pue = grid.pue_error(kind, set);
            if pue.is_finite() {
                print!(" {:>13.1}% / {:>4.1}pp", wer, pue);
            } else {
                print!(" {:>13.1}% /  n/a", wer);
            }
        }
        println!();
    }
    println!(
        "\n({} fold models trained in one grid dispatch; paper: low-dimensional sets win for SVM/KNN, set 3 only helps RDF)",
        grid.trainings()
    );
}
