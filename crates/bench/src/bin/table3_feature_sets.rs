//! Table III — the three model input sets.

use wade_features::{schema, FeatureSet};

fn main() {
    println!("Table III: input feature sets used for training");
    println!("{:<12} parameters", "input set");
    println!("{}", "-".repeat(76));
    for set in FeatureSet::ALL {
        println!("{:<12} {}", set.to_string(), set.description());
    }
    println!("\nprogram-feature indices resolved against the 249-feature schema:");
    for set in [FeatureSet::Set1, FeatureSet::Set2] {
        let names: Vec<String> = set.indices().iter().map(|&i| schema::name(i)).collect();
        println!("  {set}: {}", names.join(", "));
    }
    println!(
        "  {}: all {} program features",
        FeatureSet::Set3,
        FeatureSet::Set3.indices().len()
    );
}
