//! Fig. 13 — the compiler-flag study: measured vs model-predicted WER for
//! lulesh built with `-O2` and `-F`, against the conventional
//! (workload-unaware) constant model derived from the random data-pattern
//! micro-benchmark. TREFP = 0.618 s, 70 °C.
//!
//! Paper shape: the KNN model predicts both lulesh builds within ~3 % and
//! their ~29 % WER difference; the conventional random-pattern constant is
//! off by ~2.9×.

use wade_core::{train_error_model, MlKind, OperatingPoint};
use wade_dram::ErrorSim;
use wade_features::FeatureSet;
use wade_workloads::WorkloadId;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();
    let server = wade_bench::server();
    let op = OperatingPoint::relaxed(0.618, 70.0);

    // The model is trained WITHOUT the lulesh workloads (they are the
    // "unseen application" of the study; the random micro stays in the
    // training data as in the paper's collection).
    let mut train_data = data.clone();
    train_data.rows.retain(|r| !r.workload.starts_with("lulesh"));
    let model = train_error_model(&train_data, MlKind::Knn, FeatureSet::Set1);

    println!("Fig. 13: measured vs predicted WER, {op}");
    println!("{:<22} {:>12} {:>12} {:>8}", "benchmark", "measured", "predicted", "err%");

    let mut measured = Vec::new();
    for id in [WorkloadId::LuleshO2, WorkloadId::LuleshF, WorkloadId::MicroRandom] {
        let wl = id.instantiate(8, wade_bench::scale());
        // Through the global profile cache, so the store serves the three
        // study profiles on warm invocations.
        let profiled = wade_core::ProfileCache::global().profile(
            &server,
            wl.as_ref(),
            wade_bench::CAMPAIGN_SEED,
        );
        let run = ErrorSim::new(server.device()).run(&profiled.profile, op, 7200.0, 5);
        let meas = run.wer();
        let pred = model.predict_wer_total(&profiled.features, op);
        let err = 100.0 * (pred - meas).abs() / meas.max(1e-300);
        println!(
            "{:<22} {:>12} {:>12} {:>7.1}%",
            wl.name(),
            wade_bench::fmt_wer(meas),
            wade_bench::fmt_wer(pred),
            err
        );
        measured.push((wl.name(), meas));
    }

    let o2 = measured[0].1;
    let f = measured[1].1;
    let random = measured[2].1;
    println!("\nlulesh(F) vs lulesh(O2) measured difference: {:.0}% (paper: ~29%)",
        100.0 * (f - o2).abs() / o2.max(1e-300));
    let conventional_err = (random / o2.max(1e-300)).max(o2 / random.max(1e-300));
    println!(
        "conventional constant model (random micro) mispredicts lulesh by {conventional_err:.1}x (paper: 2.9x)"
    );
}
