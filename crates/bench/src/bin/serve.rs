//! `serve` — the long-running prediction service over the full campaign.
//!
//! Boots the shared artifact store (`--store-dir DIR` / `WADE_STORE_DIR`
//! / `target/wade-store`), loads or collects the full-suite campaign at
//! the configured scale (`WADE_SCALE=test` for the reduced inputs), loads
//! or trains the serving models through the store, and serves until
//! killed. Model artifacts are watched for changes, so re-publishing a
//! model into the store hot-swaps it into the running server.
//!
//! Usage: `cargo run --release -p wade-bench --bin serve [-- --addr
//! HOST:PORT] [--store-dir DIR]`, then:
//!
//! ```text
//! curl http://127.0.0.1:7878/healthz
//! curl -X POST http://127.0.0.1:7878/predict -d '{"model":"KNN","rows":[…]}'
//! curl http://127.0.0.1:7878/metrics
//! ```

use std::time::Duration;
use wade_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    addr = v.clone();
                    i += 1;
                }
                _ => {
                    eprintln!("error: --addr requires a HOST:PORT value");
                    std::process::exit(2);
                }
            },
            // Consumed by wade_bench::store_dir() from the raw argv.
            "--store-dir" => i += 1,
            other => {
                eprintln!("usage: serve [--addr HOST:PORT] [--store-dir DIR]   (got {other:?})");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let store = wade_bench::init_store();
    let data = wade_bench::full_campaign_data();
    eprintln!(
        "[serve] {} campaign rows, store {}",
        data.rows.len(),
        store.root().display()
    );
    let config = ServeConfig {
        addr,
        reload_poll: Some(Duration::from_millis(500)),
        ..ServeConfig::default()
    };
    let server = match Server::start(config, data, Some(store)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind serving socket: {e}");
            std::process::exit(1);
        }
    };
    println!("wade-serve listening on http://{}", server.addr());
    loop {
        std::thread::park();
    }
}
