//! Fig. 12 — error of PUE estimates averaged over applications, for the
//! three learners × three input sets.
//!
//! Paper shape: KNN/RDF with input set 2 are best (4.1 % / 5.5 %), roughly
//! 3× better than SVM's best (12.3 % with set 1).

use wade_core::{EvalGrid, MlKind};
use wade_features::FeatureSet;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();
    // One grid dispatch for every (model, set) PUE cell this figure
    // prints — the same cells table3/repro_all consume from their full
    // grids (ARCHITECTURE.md §10). WER cells are fig11's target, so this
    // standalone binary leaves them out of its sub-grid.
    let grid = EvalGrid::evaluate_targets(&data, &MlKind::ALL, &FeatureSet::ALL, false, true);

    println!("Fig. 12: error of P_UE estimates (percentage points), LOWO-CV");
    print!("{:<8}", "model");
    for set in FeatureSet::ALL {
        print!(" {:>12}", set.to_string());
    }
    println!();
    let mut best: Option<(MlKind, FeatureSet, f64)> = None;
    for kind in MlKind::ALL {
        print!("{:<8}", kind.label());
        for set in FeatureSet::ALL {
            let err = grid.pue_error(kind, set);
            if err.is_finite() && best.is_none_or(|(_, _, b)| err < b) {
                best = Some((kind, set, err));
            }
            if err.is_finite() {
                print!(" {err:>11.1}%");
            } else {
                print!(" {:>12}", "n/a");
            }
        }
        println!();
    }
    if let Some((kind, set, err)) = best {
        println!("\nbest: {kind} with {set} at {err:.1}% (paper: KNN/set 2 at 4.1%)");
    }
}
