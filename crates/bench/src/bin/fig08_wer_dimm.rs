//! Fig. 8 — WER per DIMM/rank (TREFP = 2.283 s, 50 °C).
//!
//! Paper shape: up to 188× variation across the 8 ranks; rank ordering is a
//! device property, stable across workloads.

use wade_dram::RankId;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();

    println!("Fig. 8: WER per DIMM/rank, TREFP=2.283 s, 50 °C");
    print!("{:<18}", "benchmark");
    for rank in RankId::all() {
        print!(" {:>12}", rank.to_string());
    }
    println!();

    let mut rank_totals = [0.0f64; 8];
    let mut rows_used = 0;
    for row in &data.rows {
        if (row.op.trefp_s - 2.283).abs() > 1e-9 || row.op.temp_c != 50.0 {
            continue;
        }
        let Some(run) = &row.wer_run else { continue };
        print!("{:<18}", row.workload);
        for (i, w) in run.wer_per_rank.iter().enumerate() {
            rank_totals[i] += w;
            print!(" {:>12}", wade_bench::fmt_wer(*w));
        }
        println!();
        rows_used += 1;
    }

    let nonzero: Vec<f64> = rank_totals.iter().copied().filter(|w| *w > 0.0).collect();
    let max = nonzero.iter().cloned().fold(f64::MIN, f64::max);
    let min = nonzero.iter().cloned().fold(f64::MAX, f64::min);
    println!("\nper-rank totals over {rows_used} benchmarks:");
    for (i, t) in rank_totals.iter().enumerate() {
        println!("  {:<12} {:>12}", RankId::from_index(i).to_string(), wade_bench::fmt_wer(*t));
    }
    println!("\npaper: up to 188x rank-to-rank spread | measured: {:.0}x (errored ranks)", max / min);
    let factors = wade_bench::server().device().variation().spread();
    println!("device weak-cell density spread (manufacturing): {factors:.0}x");
}
