//! Fig. 11 — mean percentage error of WER estimates for SVM/KNN/RDF under
//! the three input sets, per DIMM/rank (a–c) and per application (d–f).
//!
//! Paper shape: KNN(set 1) ≈ 10.1 % is best; SVM(set 1) ≈ 16.3 %;
//! SVM/KNN degrade with all 249 features (overfitting: 29.3 % / 12.3 %);
//! RDF is worst on set 1 (21.4 %) but *improves* with set 3 (12.9 %).

use wade_core::{EvalGrid, MlKind};
use wade_dram::RankId;
use wade_features::FeatureSet;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();
    // One grid dispatch for every (model, set) WER cell this figure
    // prints — the same cells table3/repro_all consume from their full
    // grids (ARCHITECTURE.md §10). PUE cells are fig12's target, so this
    // standalone binary leaves them out of its sub-grid.
    let grid = EvalGrid::evaluate_targets(&data, &MlKind::ALL, &FeatureSet::ALL, true, false);

    for kind in MlKind::ALL {
        println!("\nFig. 11 — {kind}: error of WER estimates (%), leave-one-workload-out");
        let reports: Vec<_> =
            FeatureSet::ALL.iter().map(|&set| grid.wer_report(kind, set)).collect();

        println!("per DIMM/rank (panels a-c):");
        print!("{:<14}", "rank");
        for set in FeatureSet::ALL {
            print!(" {:>12}", set.to_string());
        }
        println!();
        for rank in 0..8 {
            print!("{:<14}", RankId::from_index(rank).to_string());
            for report in &reports {
                match report.per_rank[rank] {
                    Some(err) => print!(" {err:>11.1}%"),
                    None => print!(" {:>12}", "n/a"),
                }
            }
            println!();
        }
        print!("{:<14}", "AVERAGE");
        for report in &reports {
            print!(" {:>11.1}%", report.average);
        }
        println!();

        println!("per application (panels d-f):");
        let workloads: Vec<String> =
            reports[0].per_workload.iter().map(|(w, _)| w.clone()).collect();
        for w in &workloads {
            print!("{w:<18}");
            for report in &reports {
                let err = report
                    .per_workload
                    .iter()
                    .find(|(n, _)| n == w)
                    .map(|(_, e)| *e)
                    .unwrap_or(f64::NAN);
                print!(" {err:>11.1}%");
            }
            println!();
        }
    }

    println!("\npaper: KNN(set1) 10.1% best; SVM(set3) overfits to 29.3%; RDF best with set3 (12.9%)");
}
