//! Fig. 10 — Spearman rank correlation of all 249 program features against
//! WER (y-axis) and PUE (x-axis).
//!
//! Paper shape: the memory access rate is the top feature for WER
//! (rs ≈ 0.57) and PUE (rs ≈ 0.43); wait cycles ≈ 0.4; H_DP ≈ 0.39;
//! Treuse ≈ 0.23 (weaker because 30 % of benchmarks have Treuse beyond the
//! maximum TREFP).

use wade_features::{schema, spearman};

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();

    // WER samples: per (workload, op) aggregate WER, crash-free rows.
    let mut wer_rows: Vec<(&wade_core::CampaignRow, f64)> = Vec::new();
    for row in &data.rows {
        if let Some(run) = &row.wer_run {
            if !run.crashed && run.wer > 0.0 {
                wer_rows.push((row, run.wer));
            }
        }
    }
    // PUE samples.
    let mut pue_rows: Vec<(&wade_core::CampaignRow, f64)> = Vec::new();
    for row in &data.rows {
        if !row.pue_runs.is_empty() {
            pue_rows.push((row, row.pue()));
        }
    }

    let rs_for = stratified_rs;

    println!(
        "Fig. 10: Spearman rs over {} WER samples / {} PUE samples",
        wer_rows.len(),
        pue_rows.len()
    );
    println!("\nnamed features (paper's call-outs):");
    println!("{:<34} {:>9} {:>9}", "feature", "rs(WER)", "rs(PUE)");
    for idx in [
        schema::SOC_MEM_ACCESSES_PER_CYCLE,
        schema::SOC_WAIT_CYCLE_RATIO,
        schema::HDP,
        schema::TREUSE,
        schema::SOC_BASE + 2, // soc.ipc
        schema::SOC_BASE + 26, // soc.cpu_utilization
        schema::SOC_ROW_ACTIVATION_RATE,
    ] {
        println!(
            "{:<34} {:>9.2} {:>9.2}",
            schema::name(idx),
            rs_for(&wer_rows, idx),
            rs_for(&pue_rows, idx)
        );
    }

    // Top-10 by |rs(WER)|.
    let mut ranked: Vec<(usize, f64)> =
        (0..schema::FEATURE_COUNT).map(|i| (i, rs_for(&wer_rows, i))).collect();
    ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("\ntop-10 features by |rs(WER)|:");
    for (i, rs) in ranked.iter().take(10) {
        println!("  {:<34} {:>6.2}", schema::name(*i), rs);
    }

    let access = rs_for(&wer_rows, schema::SOC_MEM_ACCESSES_PER_CYCLE);
    let treuse = rs_for(&wer_rows, schema::TREUSE);
    println!(
        "\npaper: access rate rs=0.57 (WER) dominates Treuse rs=0.23 | measured: {access:.2} vs {treuse:.2}"
    );
}

/// Spearman rs stratified by operating point: rs is computed within each
/// (TREFP, temperature) cell and sample-weighted. Controls the
/// operating-point confounder, which otherwise drowns workload-level
/// effects in the simulator's pooled samples (the paper pools directly;
/// see EXPERIMENTS.md fidelity notes).
fn stratified_rs(rows: &[(&wade_core::CampaignRow, f64)], feature: usize) -> f64 {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(i64, i64), Vec<(f64, f64)>> = BTreeMap::new();
    for (row, y) in rows {
        let key = ((row.op.trefp_s * 1e4) as i64, (row.op.temp_c * 10.0) as i64);
        groups.entry(key).or_default().push((row.features.get(feature), *y));
    }
    let mut acc = 0.0;
    let mut weight = 0.0;
    for vals in groups.values() {
        if vals.len() < 6 {
            continue;
        }
        let x: Vec<f64> = vals.iter().map(|(a, _)| *a).collect();
        let y: Vec<f64> = vals.iter().map(|(_, b)| *b).collect();
        acc += spearman(&x, &y) * vals.len() as f64;
        weight += vals.len() as f64;
    }
    if weight == 0.0 { 0.0 } else { acc / weight }
}
