//! Table I — DRAM error classes under SECDED ECC.
//!
//! Exhaustively verifies the codec against the table: every 1-bit
//! corruption corrects, every 2-bit corruption detects, and ≥3-bit
//! corruptions split between detected UEs and silent corruptions.

use wade_ecc::{DecodeOutcome, Secded};

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let codec = Secded::new();
    let data = 0xDEAD_BEEF_0123_4567u64;
    let word = codec.encode(data);

    let mut corrected = 0u64;
    for lane in 0..72 {
        if matches!(codec.decode(word.with_flipped(lane)), DecodeOutcome::Corrected { data: d, .. } if d == data)
        {
            corrected += 1;
        }
    }

    let mut detected2 = 0u64;
    let mut total2 = 0u64;
    for a in 0..72u8 {
        for b in (a + 1)..72 {
            total2 += 1;
            if codec.decode(word.with_flipped(a).with_flipped(b))
                == DecodeOutcome::DetectedUncorrectable
            {
                detected2 += 1;
            }
        }
    }

    let mut detected3 = 0u64;
    let mut sdc3 = 0u64;
    let mut total3 = 0u64;
    for a in 0..72u8 {
        for b in (a + 1)..72 {
            for c in (b + 1)..72 {
                total3 += 1;
                match codec.decode_with_oracle(
                    word.with_flipped(a).with_flipped(b).with_flipped(c),
                    data,
                ) {
                    DecodeOutcome::DetectedUncorrectable => detected3 += 1,
                    DecodeOutcome::SilentCorruption { .. } => sdc3 += 1,
                    _ => {}
                }
            }
        }
    }

    println!("Table I: DRAM error types under ECC SECDED (72,64)");
    println!("num corrupted bits | outcome                  | abbreviation | exhaustive check");
    println!("-------------------+--------------------------+--------------+------------------------------");
    println!(
        "1                  | corrected                | CE           | {corrected}/72 corrected"
    );
    println!(
        "2                  | uncorrected/detected     | UE           | {detected2}/{total2} detected"
    );
    println!(
        ">2                 | uncorrected/undetected   | SDC          | {sdc3}/{total3} silent, {detected3}/{total3} detected"
    );
    assert_eq!(corrected, 72);
    assert_eq!(detected2, total2);
    assert!(sdc3 > 0);
    println!("\npaper: Table I semantics | measured: reproduced exactly (see counts above)");
}
