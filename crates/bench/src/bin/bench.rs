//! Simulator/campaign performance tracker: times the hot paths this
//! workspace optimizes and emits a machine-readable `BENCH_sim.json` so
//! future PRs can compare against the recorded trajectory.
//!
//! Three configurations are measured for the flagship `run_2h_1GiB` case:
//!
//! * `reference_naive` — a faithful reconstruction of the pre-optimization
//!   hot loop: serial, a full attribute tuple sampled for *every*
//!   Poisson-drawn weak cell from a sequential per-rank stream, SipHash
//!   collision maps, and — crucially — upstream rand 0.8's `StdRng`
//!   generator (ChaCha12, reimplemented below), which is what the seed
//!   code used. This is the "before" number: the original implementation
//!   predates the build system, so it cannot be benchmarked directly.
//! * `single_thread` — the current thinned/keyed-stream implementation on
//!   a 1-thread rayon pool (isolates the algorithmic win).
//! * `parallel` — the same on the default pool (adds the fan-out win).
//!
//! The campaign grid (`CampaignConfig::quick()` × the paper suite at test
//! scale) is measured on 1 thread and on the full pool to record scaling.
//!
//! The artifact-store round trip (cold collect+eval vs warm store hits) is
//! measured in the `artifact_store` section against its own scratch store;
//! the tracker itself never installs the process-wide store, so no section
//! can be accidentally warmed by a previous invocation.
//!
//! Usage: `cargo run --release -p wade-bench --bin bench [output.json]`.
//!
//! Store maintenance subcommands (`--store-dir DIR` / `WADE_STORE_DIR`
//! select the store, default `target/wade-store`):
//!
//! * `bench store ls` — list artifacts (kind, size, integrity, key)
//! * `bench store gc [--max-bytes N]` — drop corrupt/foreign-version
//!   entries; with a cap, also evict valid entries least-recently-accessed
//!   first until the store holds at most N bytes
//! * `bench store clear` — remove the whole store
//! * `bench store torture [--seed N] [--ops M] [--threads T]
//!   [--fault-rate F]` — drive a *scratch* store (never the real one)
//!   through a deterministic fault schedule and assert the no-corruption
//!   invariant (exit 1 on any wrong-value read)
//!
//! Serving subcommand:
//!
//! * `bench serve load [--threads T] [--requests N] [--seed S]` — drive
//!   the seeded load generator against a live in-process wade-serve
//!   instance and verify every response byte-for-byte against direct
//!   `predict_rows` (exit 1 on any error or mismatch)
//!
//! Fleet subcommands (`--store-dir` selects the slice store):
//!
//! * `bench fleet sweep [--devices N] [--shards S] [--epochs E]
//!   [--seed K]` — sweep a heterogeneous device fleet through the store
//!   (warm epoch slices are pure reads) and report failures and store
//!   traffic
//! * `bench fleet extend [same flags] [--extend-to E2]` — sweep at E
//!   epochs, then extend the same fleet to E2 (default E+4) reusing the
//!   persisted epoch prefix; prints a `prefix warm` line and exits 1 if
//!   the extension simulated anything beyond the new epochs' delta
//! * `bench fleet eval [same flags]` — sweep, then run the field-style
//!   evaluation: lead-time precision/recall, the mitigation-cost curve
//!   and the cross-vintage transfer matrix

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, Poisson};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use wade_core::{
    build_pue_dataset, build_wer_dataset, train_error_model, AccuracyReport, Campaign,
    CampaignConfig, CampaignData, ErrorModel, EvalGrid, MlKind, ProfileCache, SimulatedServer,
};
use wade_dram::{DramDevice, DramUsageProfile, ErrorSim, OperatingPoint, RANK_COUNT};
use wade_features::FeatureSet;
use wade_ml::metrics::{mean_absolute_error_percent, mean_percentage_error};
use rand::seq::SliceRandom;
use wade_ml::{ForestTrainer, KnnTrainer, Regressor, SvrTrainer, Trainer};
use wade_workloads::{full_suite, paper_suite, Scale};

/// Flags that take a value: consumed during positional parsing so flag
/// values never masquerade as subcommands, and collected for the store
/// subcommands. `--store-dir`'s validity stays enforced by
/// `wade_bench::store_dir()`.
const VALUE_FLAGS: [&str; 11] = [
    "--store-dir",
    "--seed",
    "--ops",
    "--threads",
    "--fault-rate",
    "--max-bytes",
    "--requests",
    "--devices",
    "--shards",
    "--epochs",
    "--extend-to",
];

fn main() {
    // Positional args, skipping flags and their values — so
    // `bench --store-dir X store clear` and `bench store clear
    // --store-dir X` both reach the subcommand.
    let args: Vec<String> = std::env::args().collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut flags: HashMap<&'static str, String> = HashMap::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            flag if VALUE_FLAGS.contains(&flag) => {
                let canonical = VALUE_FLAGS.iter().find(|f| **f == flag).unwrap();
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        flags.insert(canonical, v.clone());
                    }
                    _ => {
                        eprintln!("error: {flag} requires a value");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
            a if a.starts_with("--") => {}
            a => positional.push(a),
        }
        i += 1;
    }
    if positional.first() == Some(&"store") {
        store_command(positional.get(1).copied(), &flags);
        return;
    }
    if positional.first() == Some(&"serve") {
        serve_command(positional.get(1).copied(), &flags);
        return;
    }
    if positional.first() == Some(&"fleet") {
        fleet_command(positional.get(1).copied(), &flags);
        return;
    }
    let out_path = positional.first().unwrap_or(&"BENCH_sim.json").to_string();
    // Honour the same budget knob as the vendored criterion harness: a
    // budget under 200 ms means "smoke mode" — one sample per
    // configuration instead of the median of several (CI runners).
    let smoke = std::env::var("WADE_BENCH_MS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .is_some_and(|ms| ms < 200);
    let (ref_samples, cur_samples) = if smoke { (1, 1) } else { (3, 5) };
    let threads = rayon::current_num_threads();
    let device = DramDevice::with_seed(42);
    let sim = ErrorSim::new(&device);
    let profile = DramUsageProfile::uniform_synthetic(1 << 27); // 1 GiB

    let mut sections = Vec::new();
    // The three bench-suite points at the maximum refresh period, plus one
    // short-TREFP grid point where the quantile thinning dominates (the
    // campaign spends most of its grid there).
    let cases = [
        ("50C", OperatingPoint::relaxed(2.283, 50.0)),
        ("60C", OperatingPoint::relaxed(2.283, 60.0)),
        ("70C", OperatingPoint::relaxed(2.283, 70.0)),
        ("60C_trefp0.618", OperatingPoint::relaxed(0.618, 60.0)),
    ];
    for (label, op) in cases {
        eprintln!("[bench] dram_sim/run_2h_1GiB/{label} …");
        let reference_ms = median_ms(ref_samples, || {
            reference_naive_run(&device, &profile, op, 7200.0, 1);
        });
        let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let single_ms = median_ms(cur_samples, || {
            one.install(|| sim.run(&profile, op, 7200.0, 1));
        });
        let parallel_ms = median_ms(cur_samples, || {
            sim.run(&profile, op, 7200.0, 1);
        });
        sections.push(format!(
            "    \"run_2h_1GiB_{label}\": {{\n      \"reference_naive_ms\": {reference_ms:.3},\n      \"single_thread_ms\": {single_ms:.3},\n      \"parallel_ms\": {parallel_ms:.3},\n      \"speedup_single_vs_reference\": {:.2},\n      \"speedup_parallel_vs_reference\": {:.2}\n    }}",
            reference_ms / single_ms.max(1e-9),
            reference_ms / parallel_ms.max(1e-9),
        ));
    }

    // The ROADMAP-predicted biggest win: PUE repeats and TREFP set-points
    // share one weak-cell population, so the prepared path realizes it
    // once per workload and replays run randomness only. `direct` times
    // Campaign::characterize (ErrorSim::run per run); `prepared` times
    // Campaign::prepare + characterize_prepared over the same grid and
    // seeds. Byte-identity of the two paths is asserted (untimed).
    eprintln!("[bench] campaign PUE repeats, prepared vs direct …");
    let pue_repeats = 10u32;
    let pue_ops: Vec<OperatingPoint> = OperatingPoint::PUE_TREFP_SWEEP
        .iter()
        .map(|&t| OperatingPoint::relaxed(t, 70.0))
        .collect();
    let pue_campaign = Campaign::new(
        SimulatedServer::with_seed(5),
        CampaignConfig {
            run_duration_s: 7200.0,
            pue_repeats,
            wer_ops: Vec::new(),
            pue_ops: pue_ops.clone(),
        },
    );
    let pue_suite = paper_suite(Scale::Test);
    let pue_profiled: Vec<_> =
        pue_suite.iter().take(3).map(|w| pue_campaign.profile(w.as_ref(), 1)).collect();
    let direct_ms = median_ms(ref_samples, || {
        for (i, p) in pue_profiled.iter().enumerate() {
            for &op in &pue_ops {
                pue_campaign.characterize(p, op, pue_repeats, 1000 + i as u64);
            }
        }
    });
    let prepared_ms = median_ms(cur_samples, || {
        for (i, p) in pue_profiled.iter().enumerate() {
            let prep = pue_campaign.prepare(p, &pue_ops);
            for &op in &pue_ops {
                pue_campaign.characterize_prepared(&prep, op, pue_repeats, 1000 + i as u64);
            }
        }
    });
    let identical = {
        let p = &pue_profiled[0];
        let prep = pue_campaign.prepare(p, &pue_ops);
        pue_ops.iter().all(|&op| {
            pue_campaign.characterize(p, op, pue_repeats, 77)
                == pue_campaign.characterize_prepared(&prep, op, pue_repeats, 77)
        })
    };
    sections.push(format!(
        "    \"campaign_pue_repeats\": {{\n      \"workloads\": {},\n      \"ops\": {},\n      \"repeats\": {pue_repeats},\n      \"direct_ms\": {direct_ms:.3},\n      \"prepared_ms\": {prepared_ms:.3},\n      \"speedup_prepared_vs_direct\": {:.2},\n      \"byte_identical\": {identical}\n    }}",
        pue_profiled.len(),
        pue_ops.len(),
        direct_ms / prepared_ms.max(1e-9),
    ));

    // The profiling front-end: the whole suite through the serial
    // per-access reference — a reconstruction of the pre-overhaul tracer
    // (std SipHash reuse/entropy maps, insert-then-insert first touch) fed
    // one virtual call per access next to the real SoC model — versus the
    // overhauled path: FxHash trackers + staged slice delivery + the shared
    // rayon pool + the profile cache. `cold` is a first campaign's cost
    // (cache misses, batched+parallel); `warm` is every later
    // campaign/figure-binary in the process (all hits, the number
    // `repro_all` pays per extra figure). Byte-identity of the current
    // batched/cached paths against the current per-access path is asserted
    // (untimed).
    eprintln!("[bench] workload profiling: per-access serial vs batched+parallel+cached …");
    let prof_suite = full_suite(Scale::Test);
    let prof_server = SimulatedServer::with_seed(5);
    let prof_seed = 1u64;
    let reference_ms = median_ms(ref_samples, || {
        for w in &prof_suite {
            let mut fan = wade_trace::FanoutSink::new(
                ReferenceTracer::default(),
                wade_memsys::Soc::new(SimulatedServer::profiling_soc_config()),
            );
            w.run(&mut fan, prof_seed);
            let (tracer, soc) = fan.into_inner();
            std::hint::black_box((tracer.summary(), soc.report()));
        }
    });
    let batched_serial_ms = median_ms(cur_samples, || {
        for w in &prof_suite {
            prof_server.profile_workload(w.as_ref(), prof_seed);
        }
    });
    let prof_campaign = |cache: Arc<ProfileCache>| {
        Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .with_profile_cache(cache)
    };
    let cold_ms = median_ms(cur_samples, || {
        // A fresh cache per sample: this is the first-campaign cost.
        prof_campaign(Arc::new(ProfileCache::new())).profile_suite(&prof_suite, prof_seed);
    });
    let warm_cache = Arc::new(ProfileCache::new());
    prof_campaign(warm_cache.clone()).profile_suite(&prof_suite, prof_seed);
    let warm_ms = median_ms(cur_samples, || {
        prof_campaign(warm_cache.clone()).profile_suite(&prof_suite, prof_seed);
    });
    let prof_identical = {
        let warm = prof_campaign(warm_cache.clone()).profile_suite(&prof_suite, prof_seed);
        prof_suite
            .iter()
            .zip(warm.iter())
            .all(|(w, p)| **p == prof_server.profile_workload_unbatched(w.as_ref(), prof_seed))
    };
    sections.push(format!(
        "    \"workload_profiling\": {{\n      \"workloads\": {},\n      \"reference_per_access_serial_ms\": {reference_ms:.3},\n      \"batched_serial_ms\": {batched_serial_ms:.3},\n      \"batched_parallel_cold_cache_ms\": {cold_ms:.3},\n      \"batched_parallel_warm_cache_ms\": {warm_ms:.3},\n      \"speedup_batched_vs_reference\": {:.2},\n      \"speedup_cold_vs_reference\": {:.2},\n      \"speedup_cached_vs_reference\": {:.2},\n      \"byte_identical\": {prof_identical}\n    }}",
        prof_suite.len(),
        reference_ms / batched_serial_ms.max(1e-9),
        reference_ms / cold_ms.max(1e-9),
        reference_ms / warm_ms.max(1e-9),
    ));

    eprintln!("[bench] campaign quick grid …");
    let suite = paper_suite(Scale::Test);
    let collect = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        median_ms(ref_samples, || {
            pool.install(|| {
                // A fresh isolated cache per sample: this section tracks the
                // grid's *parallel scaling*, so every sample must pay the
                // same cold profiling cost — the process-global cache would
                // hand later samples warm profiles and report cache warmth
                // as thread speedup.
                Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
                    .with_profile_cache(Arc::new(ProfileCache::new()))
                    .collect(&suite, 1)
            });
        })
    };
    let grid_single_ms = collect(1);
    let grid_parallel_ms = collect(threads);
    sections.push(format!(
        "    \"campaign_quick_grid\": {{\n      \"workloads\": {},\n      \"single_thread_ms\": {grid_single_ms:.3},\n      \"parallel_ms\": {grid_parallel_ms:.3},\n      \"parallel_speedup\": {:.2}\n    }}",
        suite.len(),
        grid_single_ms / grid_parallel_ms.max(1e-9),
    ));

    // The ML training/evaluation engine: the full (model × feature set ×
    // target) accuracy grid over a Test-scale campaign. `reference` is a
    // reconstruction of the pre-engine serial path exactly as the old
    // consumers drove it — fig11 evaluated its WER cells (one
    // `evaluate_wer_accuracy` call per (model, set), each rebuilding and
    // re-splitting the per-rank datasets) and fig12 its PUE cells, with a
    // sequential RNG stream across all forest trees and per-row serial
    // predictions. The current engine evaluates one shared `EvalGrid` in a
    // single pool dispatch (datasets built once, each fold split once and
    // shared across trainers) and serves every consumer — fig11, fig12,
    // and table3's new accuracy summary — from it for free. Byte-identity
    // of the grid across thread counts is asserted (untimed).
    eprintln!("[bench] ml training/evaluation grid …");
    let ml_data = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
        .collect(&paper_suite(Scale::Test), 8);
    let ml_reference_ms = median_ms(ref_samples, || {
        serial_reference_wer(&ml_data); // fig11
        serial_reference_pue(&ml_data); // fig12
    });
    let consume_grid = |grid: &EvalGrid| {
        // The consumers' reads (memoized reports — cheap by design).
        let mut acc = 0.0;
        for kind in MlKind::ALL {
            for set in FeatureSet::ALL {
                acc += grid.wer_report(kind, set).average; // fig11 + table3
                let pue = grid.pue_error(kind, set); // fig12 + table3
                acc += if pue.is_finite() { pue } else { 0.0 };
            }
        }
        std::hint::black_box(acc);
    };
    let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let ml_single_ms = median_ms(cur_samples, || {
        one.install(|| consume_grid(&EvalGrid::evaluate(&ml_data)));
    });
    let ml_parallel_ms = median_ms(cur_samples, || {
        consume_grid(&EvalGrid::evaluate(&ml_data));
    });
    let ml_identical = {
        let eight = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let a = one.install(|| EvalGrid::evaluate(&ml_data));
        let b = eight.install(|| EvalGrid::evaluate(&ml_data));
        grids_equal(&a, &b)
    };
    sections.push(format!(
        "    \"ml_training\": {{\n      \"models\": {},\n      \"feature_sets\": {},\n      \"reference_serial_ms\": {ml_reference_ms:.3},\n      \"grid_single_thread_ms\": {ml_single_ms:.3},\n      \"grid_parallel_ms\": {ml_parallel_ms:.3},\n      \"speedup_single_vs_reference\": {:.2},\n      \"speedup_parallel_vs_reference\": {:.2},\n      \"byte_identical\": {ml_identical}\n    }}",
        MlKind::ALL.len(),
        FeatureSet::ALL.len(),
        ml_reference_ms / ml_single_ms.max(1e-9),
        ml_reference_ms / ml_parallel_ms.max(1e-9),
    ));

    // The artifact store: one cold pass (collect the campaign + evaluate
    // the grid, publishing profiles/campaign/models into a scratch store)
    // versus a warm pass (fresh in-memory caches, same store: profiling,
    // collection and training all served from disk). Byte-identity of the
    // warm outputs against a store-free reference is asserted (untimed).
    eprintln!("[bench] artifact store: cold vs warm campaign+eval …");
    let store_root =
        std::env::temp_dir().join(format!("wade-bench-store-{}", std::process::id()));
    let store_suite = paper_suite(Scale::Test);
    let run_with = |root: &std::path::Path| {
        let store = Arc::new(wade_store::ArtifactStore::open(root));
        let data = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .with_profile_cache(Arc::new(ProfileCache::with_store(store.clone())))
            .collect_stored(&store, &store_suite, 8);
        let grid = EvalGrid::evaluate_targets_with(
            Some(store),
            &data,
            &MlKind::ALL,
            &FeatureSet::ALL,
            true,
            true,
        );
        (data, grid)
    };
    let store_cold_ms = median_ms(ref_samples, || {
        let _ = std::fs::remove_dir_all(&store_root);
        std::hint::black_box(run_with(&store_root));
    });
    let store_warm_ms = median_ms(cur_samples, || {
        std::hint::black_box(run_with(&store_root));
    });
    let store_identical = {
        let (warm_data, warm_grid) = run_with(&store_root);
        let ref_data = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .with_profile_cache(Arc::new(ProfileCache::new()))
            .collect(&store_suite, 8);
        let ref_grid = EvalGrid::evaluate_targets_with(
            None,
            &ref_data,
            &MlKind::ALL,
            &FeatureSet::ALL,
            true,
            true,
        );
        warm_data.to_json().unwrap() == ref_data.to_json().unwrap()
            && grids_equal(&warm_grid, &ref_grid)
    };
    let _ = std::fs::remove_dir_all(&store_root);
    sections.push(format!(
        "    \"artifact_store\": {{\n      \"workloads\": {},\n      \"cold_ms\": {store_cold_ms:.3},\n      \"warm_ms\": {store_warm_ms:.3},\n      \"speedup_warm_vs_cold\": {:.2},\n      \"byte_identical\": {store_identical}\n    }}",
        store_suite.len(),
        store_cold_ms / store_warm_ms.max(1e-9),
    ));

    // Fault-injection overhead: the store torture harness (a fixed
    // deterministic op mix over a scratch store) run healthy versus at a
    // 10 % per-op fault rate. The faulty run pays retries, backoff sleeps
    // and recomputes; the interesting numbers are the overhead ratio and
    // that the no-corruption invariant held in both runs.
    eprintln!("[bench] store fault injection: healthy vs 10% fault rate …");
    let torture_ops: u64 = if ref_samples == 1 { 400 } else { 4_000 };
    let torture_run = |fault_rate: f64| {
        let root = std::env::temp_dir().join(format!(
            "wade-bench-fault-{}-{}",
            std::process::id(),
            (fault_rate * 100.0) as u32
        ));
        let _ = std::fs::remove_dir_all(&root);
        let config = wade_store::torture::TortureConfig {
            seed: 42,
            ops: torture_ops,
            threads: 4,
            fault_rate,
        };
        let start = Instant::now();
        let report = wade_store::torture::run(&root, &config);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let _ = std::fs::remove_dir_all(&root);
        (ms, report)
    };
    let (fault_healthy_ms, fault_healthy) = torture_run(0.0);
    let (fault_faulty_ms, fault_faulty) = torture_run(0.10);
    sections.push(format!(
        "    \"store_fault\": {{\n      \"ops\": {torture_ops},\n      \"threads\": 4,\n      \"fault_rate\": 0.1,\n      \"healthy_ms\": {fault_healthy_ms:.3},\n      \"faulty_ms\": {fault_faulty_ms:.3},\n      \"overhead_faulty_vs_healthy\": {:.2},\n      \"faults_injected\": {},\n      \"retries\": {},\n      \"io_errors\": {},\n      \"degraded_ops\": {},\n      \"no_wrong_reads\": {}\n    }}",
        fault_faulty_ms / fault_healthy_ms.max(1e-9),
        fault_faulty.faults.total(),
        fault_faulty.retries,
        fault_faulty.io_errors,
        fault_faulty.degraded_ops,
        fault_healthy.ok() && fault_faulty.ok(),
    ));

    // The serving layer: a deterministic load mix (pure in the seed)
    // against a live wade-serve instance on a loopback socket, with every
    // 200 body compared byte-for-byte against serializing the registry's
    // own `predict_rows` on the same rows.
    eprintln!("[bench] serving: seeded load over live HTTP vs direct predict_batch …");
    let (serve_threads, serve_requests) = if smoke { (4usize, 64u64) } else { (8, 256) };
    let serve_seed = 11u64;
    let (serve_report, serve_hist) = serve_load(serve_threads, serve_requests, serve_seed);
    sections.push(format!(
        "    \"serving\": {{\n      \"threads\": {serve_threads},\n      \"requests\": {serve_requests},\n      \"seed\": {serve_seed},\n      \"rows\": {},\n      \"p50_latency_ms\": {:.3},\n      \"p99_latency_ms\": {:.3},\n      \"throughput_rps\": {:.1},\n      \"batch_size_hist\": [{}],\n      \"no_errors\": {},\n      \"byte_identical\": {}\n    }}",
        serve_report.rows,
        serve_report.p50_ms,
        serve_report.p99_ms,
        serve_report.throughput_rps,
        serve_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(","),
        serve_report.errors == 0,
        serve_report.mismatches == 0,
    ));

    // The prediction hot path (ARCHITECTURE.md §14): the flat-arena forest
    // against the pointer-tree ensemble it was flattened from, the
    // axis-pruned KNN search against the exhaustive reference scan, and
    // the streaming warm read against the tree-building deserializer —
    // with byte-identity of every pair asserted (untimed). Serving p50/p99
    // is carried over from the serving section's run, so the before/after
    // trail of the hot-path work lives in this file's git history.
    //
    // The forest pair runs on a seeded synthetic dataset sized like a
    // production serving model (hundreds of rows → ~50k arena nodes): a
    // Test-scale campaign dataset grows a forest so small that the whole
    // ensemble is L1-resident and the layout under test is invisible. KNN
    // keeps the campaign dataset: the paper's anisotropic feature space is
    // exactly what the widest-axis prune is built for (on isotropic random
    // data a single-axis bound prunes nothing).
    eprintln!("[bench] prediction hot path: arena forest, pruned KNN, streaming reads …");
    let mut hot_rng = 0xC0FFEE_u64;
    let mut hot_next = move || {
        // SplitMix64 → uniform f64 in [0, 1): seeded, dependency-free.
        hot_rng = hot_rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = hot_rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    };
    let forest_dim = 7;
    let forest_x: Vec<Vec<f64>> = (0..1000)
        .map(|_| (0..forest_dim).map(|_| hot_next() * 10.0).collect())
        .collect();
    let forest_y: Vec<f64> = forest_x
        .iter()
        .map(|r| r[0].sin() * 3.0 + r[1] * 0.5 + (r[2] * r[3]).sqrt() + hot_next())
        .collect();
    let hot_queries: Vec<Vec<f64>> =
        (0..2000).map(|_| (0..forest_dim).map(|_| hot_next() * 10.0).collect()).collect();
    let forest_trainer = ForestTrainer::paper_default();
    let pointer_forest = forest_trainer.train_pointer(&forest_x, &forest_y);
    let arena_forest = forest_trainer.train(&forest_x, &forest_y);
    let pointer_ms = median_ms(ref_samples, || {
        let out: Vec<f64> = hot_queries.iter().map(|q| pointer_forest.predict(q)).collect();
        std::hint::black_box(out);
    });
    let arena_ms = median_ms(cur_samples, || {
        std::hint::black_box(arena_forest.predict_batch(&hot_queries));
    });
    // KNN gets correlated features (low intrinsic dimension): campaign
    // features all ride the same temperature/voltage operating point, and
    // that correlation — preserved by z-scoring — is what makes a single
    // axis distance a useful lower bound on the full distance. The
    // Test-scale campaign dataset itself is too small to measure a scan
    // (34 rows), so the bench mirrors its correlation structure at
    // serving scale.
    let knn_x: Vec<Vec<f64>> = (0..600)
        .map(|_| {
            let t = hot_next() * 10.0;
            (0..forest_dim).map(|j| t * (1.0 + 0.1 * j as f64) + hot_next() * 0.3).collect()
        })
        .collect();
    let knn_y: Vec<f64> = knn_x.iter().map(|r| r[0] * 2.0 + r[3]).collect();
    // Near-miss queries (perturbed training rows): KNN's exact-hit
    // short-circuit must not mask the scan cost being compared.
    let knn_queries: Vec<Vec<f64>> = (0..2000)
        .map(|i| {
            let row = &knn_x[i % knn_x.len()];
            row.iter().enumerate().map(|(j, v)| v * 1.0009 + 0.001 * j as f64).collect()
        })
        .collect();
    let knn_model = KnnTrainer::paper_default().train(&knn_x, &knn_y);
    let knn_exhaustive_ms = median_ms(ref_samples, || {
        let out: Vec<f64> = knn_queries.iter().map(|q| knn_model.predict_exhaustive(q)).collect();
        std::hint::black_box(out);
    });
    let knn_pruned_ms = median_ms(cur_samples, || {
        std::hint::black_box(knn_model.predict_batch(&knn_queries));
    });
    let model_payload =
        train_error_model(&ml_data, MlKind::Rdf, FeatureSet::Set1).to_json().unwrap();
    let warm_tree_ms = median_ms(ref_samples, || {
        std::hint::black_box(serde_json::from_str_value::<ErrorModel>(&model_payload).unwrap());
    });
    let warm_streaming_ms = median_ms(cur_samples, || {
        std::hint::black_box(serde_json::from_str::<ErrorModel>(&model_payload).unwrap());
    });
    let hot_identical = {
        let arena: Vec<u64> =
            arena_forest.predict_batch(&hot_queries).iter().map(|p| p.to_bits()).collect();
        let pointer: Vec<u64> =
            hot_queries.iter().map(|q| pointer_forest.predict(q).to_bits()).collect();
        let pruned: Vec<u64> =
            knn_model.predict_batch(&knn_queries).iter().map(|p| p.to_bits()).collect();
        let exhaustive: Vec<u64> =
            knn_queries.iter().map(|q| knn_model.predict_exhaustive(q).to_bits()).collect();
        let streamed = serde_json::from_str::<ErrorModel>(&model_payload).unwrap();
        let treed = serde_json::from_str_value::<ErrorModel>(&model_payload).unwrap();
        arena == pointer
            && pruned == exhaustive
            && streamed.to_json().unwrap() == treed.to_json().unwrap()
    };
    sections.push(format!(
        "    \"prediction_hot_path\": {{\n      \"rows\": {},\n      \"forest_nodes\": {},\n      \"pointer_forest_ms\": {pointer_ms:.3},\n      \"arena_forest_ms\": {arena_ms:.3},\n      \"speedup_arena_vs_pointer\": {:.2},\n      \"knn_train_rows\": {},\n      \"knn_exhaustive_ms\": {knn_exhaustive_ms:.3},\n      \"knn_pruned_ms\": {knn_pruned_ms:.3},\n      \"speedup_pruned_vs_exhaustive\": {:.2},\n      \"model_payload_bytes\": {},\n      \"warm_read_tree_ms\": {warm_tree_ms:.3},\n      \"warm_read_streaming_ms\": {warm_streaming_ms:.3},\n      \"speedup_streaming_vs_tree\": {:.2},\n      \"serving_p50_ms\": {:.3},\n      \"serving_p99_ms\": {:.3},\n      \"byte_identical\": {hot_identical}\n    }}",
        hot_queries.len(),
        arena_forest.node_count(),
        pointer_ms / arena_ms.max(1e-9),
        knn_x.len(),
        knn_exhaustive_ms / knn_pruned_ms.max(1e-9),
        model_payload.len(),
        warm_tree_ms / warm_streaming_ms.max(1e-9),
        serve_report.p50_ms,
        serve_report.p99_ms,
    ));

    // The fleet sweep (ARCHITECTURE.md §15): a heterogeneous device
    // population swept cold (simulate + persist per-(shard, epoch) slice
    // artifacts into a scratch store) versus warm (pure store reads). The
    // warm engine's simulation counter must stay at zero, and the merged
    // fleet must be byte-identical cold-vs-warm and 1-thread-vs-parallel.
    eprintln!("[bench] fleet sweep: cold simulate-and-persist vs warm store reads …");
    let mut fleet_spec = wade_fleet::FleetSpec::test_default();
    if smoke {
        fleet_spec.devices = 32;
        fleet_spec.shards = 4;
        fleet_spec.epochs = 3;
        fleet_spec.max_workloads = 3;
    } else {
        fleet_spec.devices = 64;
        fleet_spec.shards = 8;
        fleet_spec.epochs = 4;
        fleet_spec.max_workloads = 4;
    }
    let fleet_seed = 7u64;
    let fleet_root = std::env::temp_dir().join(format!("wade-bench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fleet_root);
    let fleet_store = wade_store::ArtifactStore::open(&fleet_root);
    let cold_engine = wade_fleet::FleetSweep::new(fleet_spec, fleet_seed);
    let fleet_start = Instant::now();
    let fleet_cold = cold_engine.sweep_stored(&fleet_store);
    let fleet_cold_ms = fleet_start.elapsed().as_secs_f64() * 1e3;
    let warm_engine = wade_fleet::FleetSweep::new(fleet_spec, fleet_seed);
    let fleet_warm = warm_engine.sweep_stored(&fleet_store);
    let fleet_warm_sims = warm_engine.simulations();
    let fleet_warm_ms = median_ms(cur_samples, || {
        wade_fleet::FleetSweep::new(fleet_spec, fleet_seed).sweep_stored(&fleet_store);
    });
    let fleet_serial_json = {
        let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        one.install(|| wade_fleet::FleetSweep::new(fleet_spec, fleet_seed).sweep().devices_json())
    };
    let fleet_identical = fleet_cold.devices_json() == fleet_warm.devices_json()
        && fleet_cold.devices_json() == fleet_serial_json;
    let _ = std::fs::remove_dir_all(&fleet_root);
    sections.push(format!(
        "    \"fleet\": {{\n      \"devices\": {},\n      \"shards\": {},\n      \"epochs\": {},\n      \"failures\": {},\n      \"cold_simulations\": {},\n      \"cold_ms\": {fleet_cold_ms:.3},\n      \"warm_ms\": {fleet_warm_ms:.3},\n      \"speedup_warm_vs_cold\": {:.2},\n      \"warm_simulations\": {fleet_warm_sims},\n      \"byte_identical\": {fleet_identical}\n    }}",
        fleet_spec.devices,
        fleet_spec.shards,
        fleet_spec.epochs,
        fleet_cold.failures().len(),
        cold_engine.simulations(),
        fleet_cold_ms / fleet_warm_ms.max(1e-9),
    ));

    // Incremental epoch extension (the ISSUE 10 tentpole): warm a fleet at
    // E epochs, extend the same spec to E′ against the same store — the
    // persisted epoch slices are keyed by an epoch-invariant spec prefix,
    // so the extension must simulate *only* the new epochs' alive
    // device-epochs (prefix simulations counter-asserted at zero) and be
    // byte-identical to a cold full sweep at E′.
    eprintln!("[bench] fleet incremental: epoch extension vs cold full sweep …");
    let mut inc_spec = wade_fleet::FleetSpec::test_default();
    let (inc_base_epochs, inc_ext_epochs) = if smoke {
        inc_spec.devices = 48;
        inc_spec.shards = 6;
        inc_spec.max_workloads = 3;
        (10u32, 14u32)
    } else {
        inc_spec.devices = 1000;
        inc_spec.shards = 16;
        inc_spec.max_workloads = 4;
        (20u32, 24u32)
    };
    let mut inc_base_spec = inc_spec;
    inc_base_spec.epochs = inc_base_epochs;
    let mut inc_ext_spec = inc_spec;
    inc_ext_spec.epochs = inc_ext_epochs;
    let inc_root =
        std::env::temp_dir().join(format!("wade-bench-fleet-inc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&inc_root);
    let inc_store = wade_store::ArtifactStore::open(&inc_root);
    let inc_base_engine = wade_fleet::FleetSweep::new(inc_base_spec, fleet_seed);
    let inc_start = Instant::now();
    let _ = inc_base_engine.sweep_stored(&inc_store);
    let inc_base_ms = inc_start.elapsed().as_secs_f64() * 1e3;
    let inc_ext_engine = wade_fleet::FleetSweep::new(inc_ext_spec, fleet_seed);
    let inc_start = Instant::now();
    let inc_ext = inc_ext_engine.sweep_stored(&inc_store);
    let inc_ext_ms = inc_start.elapsed().as_secs_f64() * 1e3;
    let inc_delta: u64 = inc_ext
        .devices
        .iter()
        .map(|d| d.epochs.iter().filter(|e| e.epoch >= inc_base_epochs).count() as u64)
        .sum();
    let inc_prefix_sims = inc_ext_engine.simulations().saturating_sub(inc_delta);
    // Cold full reference at E′ in its own scratch store: the speedup
    // denominator and the byte-identity reference.
    let inc_cold_root =
        std::env::temp_dir().join(format!("wade-bench-fleet-inc-cold-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&inc_cold_root);
    let inc_cold_store = wade_store::ArtifactStore::open(&inc_cold_root);
    let inc_cold_engine = wade_fleet::FleetSweep::new(inc_ext_spec, fleet_seed);
    let inc_start = Instant::now();
    let inc_cold = inc_cold_engine.sweep_stored(&inc_cold_store);
    let inc_cold_ms = inc_start.elapsed().as_secs_f64() * 1e3;
    let inc_identical = inc_ext.devices_json() == inc_cold.devices_json();
    let _ = std::fs::remove_dir_all(&inc_root);
    let _ = std::fs::remove_dir_all(&inc_cold_root);
    sections.push(format!(
        "    \"fleet_incremental\": {{\n      \"devices\": {},\n      \"shards\": {},\n      \"base_epochs\": {inc_base_epochs},\n      \"extended_epochs\": {inc_ext_epochs},\n      \"base_ms\": {inc_base_ms:.3},\n      \"extension_ms\": {inc_ext_ms:.3},\n      \"cold_full_ms\": {inc_cold_ms:.3},\n      \"extension_simulations\": {},\n      \"expected_delta\": {inc_delta},\n      \"prefix_simulations\": {inc_prefix_sims},\n      \"extension_profilings\": {},\n      \"speedup_extension_vs_cold\": {:.2},\n      \"byte_identical\": {inc_identical}\n    }}",
        inc_spec.devices,
        inc_spec.shards,
        inc_ext_engine.simulations(),
        inc_ext_engine.profilings(),
        inc_cold_ms / inc_ext_ms.max(1e-9),
    ));

    let logical_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let wade_scale = std::env::var("WADE_SCALE").unwrap_or_else(|_| "unset".to_string());
    let json = format!(
        "{{\n  \"schema\": \"wade-bench-sim/1\",\n  \"threads\": {threads},\n  \"host\": {{\n    \"logical_cores\": {logical_cores},\n    \"rayon_threads\": {threads},\n    \"wade_scale\": \"{wade_scale}\"\n  }},\n  \"results\": {{\n{}\n  }}\n}}\n",
        sections.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!("{json}");
    eprintln!("[bench] wrote {out_path}");
}

/// Parses a numeric flag value, exiting with status 2 on malformed input
/// (same contract as `wade_bench::store_dir` for `--store-dir`).
fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<&'static str, String>,
    name: &str,
    default: T,
) -> T {
    match flags.get(name) {
        Some(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("error: {name} expects a number, got {v:?}");
            std::process::exit(2);
        }),
        None => default,
    }
}

/// `bench store <ls|gc|clear|torture>`: maintenance and chaos-testing of
/// the shared artifact store (`--store-dir` / `WADE_STORE_DIR` /
/// `target/wade-store`). `torture` deliberately ignores `--store-dir` and
/// runs against a scratch directory — a fault schedule must never chew
/// through the user's real cache.
fn store_command(action: Option<&str>, flags: &HashMap<&'static str, String>) {
    match action {
        Some("ls") => {
            let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
            let entries = store.ls();
            println!("store: {} ({} entries)", store.root().display(), entries.len());
            for meta in entries {
                println!(
                    "{:<10} {:>10} B  {}  {}",
                    meta.kind,
                    meta.file_bytes,
                    if meta.ok { "ok     " } else { "CORRUPT" },
                    meta.key.as_deref().unwrap_or("<unreadable>"),
                );
            }
        }
        Some("gc") => {
            let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
            let max_bytes: Option<u64> = flags.get("--max-bytes").map(|v| {
                v.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: --max-bytes expects a byte count, got {v:?}");
                    std::process::exit(2);
                })
            });
            let report = store.gc_capped(max_bytes);
            println!(
                "store: {} — kept {}, removed {} corrupt, evicted {} over cap, {} B live",
                store.root().display(),
                report.kept,
                report.removed,
                report.evicted,
                report.bytes_kept,
            );
        }
        Some("clear") => {
            let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
            let removed = store.clear();
            println!("store: {} — removed {removed} entries", store.root().display());
        }
        Some("torture") => {
            let config = wade_store::torture::TortureConfig {
                seed: flag_num(flags, "--seed", 1u64),
                ops: flag_num(flags, "--ops", 5_000u64),
                threads: flag_num(flags, "--threads", 4usize),
                fault_rate: flag_num(flags, "--fault-rate", 0.10f64),
            };
            let root = std::env::temp_dir().join(format!(
                "wade-torture-{}-{}",
                std::process::id(),
                config.seed
            ));
            let _ = std::fs::remove_dir_all(&root);
            eprintln!(
                "[torture] scratch store {} — seed {}, {} ops, {} threads, fault rate {}",
                root.display(),
                config.seed,
                config.ops,
                config.threads,
                config.fault_rate,
            );
            let start = Instant::now();
            let report = wade_store::torture::run(&root, &config);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let _ = std::fs::remove_dir_all(&root);
            println!(
                "torture: {} ops in {ms:.1} ms — {} puts ({} failed), {} gets \
                 ({} hits, {} misses), {} gc, {} ls",
                report.ops,
                report.puts,
                report.put_errors,
                report.gets,
                report.hits,
                report.misses,
                report.gcs,
                report.lss,
            );
            println!(
                "torture: {} faults injected, {} retries, {} hard I/O errors, \
                 {} corrupt-as-miss, {} ops skipped degraded (degraded at exit: {})",
                report.faults.total(),
                report.retries,
                report.io_errors,
                report.corrupt,
                report.degraded_ops,
                report.degraded,
            );
            if report.ok() {
                println!("torture: OK — 0 wrong-value reads");
            } else {
                eprintln!(
                    "torture: FAIL — {} wrong-value reads (corruption served as a hit)",
                    report.wrong_reads
                );
                std::process::exit(1);
            }
        }
        other => {
            eprintln!(
                "usage: bench store <ls|gc [--max-bytes N]|clear|torture [--seed N] \
                 [--ops M] [--threads T] [--fault-rate F]> [--store-dir DIR]   (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}

/// Boots an in-process wade-serve instance over a fresh Test-scale
/// campaign (store-free: the bench must not warm or depend on the real
/// store) and drives the seeded load generator against it with golden
/// verification on. Returns the load report and the server's batch-size
/// histogram.
fn serve_load(threads: usize, requests: u64, seed: u64) -> (wade_serve::LoadReport, Vec<u64>) {
    let data = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
        .collect(&paper_suite(Scale::Test), 8);
    let mut server =
        wade_serve::Server::start(wade_serve::ServeConfig::default(), data.clone(), None)
            .expect("bind loopback serving socket");
    let report = wade_serve::run_load(
        server.addr(),
        &data,
        Some(server.registry().as_ref()),
        wade_serve::LoadConfig { threads, requests, seed },
    )
    .expect("drive load against the loopback server");
    let hist = server.metrics().batch_histogram();
    server.shutdown();
    (report, hist)
}

/// `bench serve load [--threads T] [--requests N] [--seed S]`: the seeded
/// load generator against a live in-process server, with byte-identity
/// against direct `predict_rows` verified per response. Exits 1 on any
/// error or mismatch — the CI smoke gate.
fn serve_command(action: Option<&str>, flags: &HashMap<&'static str, String>) {
    match action {
        Some("load") => {
            let threads = flag_num(flags, "--threads", 4usize);
            let requests = flag_num(flags, "--requests", 256u64);
            let seed = flag_num(flags, "--seed", 11u64);
            eprintln!(
                "[serve] load: {threads} threads × {requests} total requests, seed {seed}"
            );
            let (report, hist) = serve_load(threads, requests, seed);
            println!(
                "serve load: {} requests ({} rows) in {:.1} ms — p50 {:.3} ms, \
                 p99 {:.3} ms, {:.0} req/s",
                report.requests,
                report.rows,
                report.elapsed_ms,
                report.p50_ms,
                report.p99_ms,
                report.throughput_rps,
            );
            println!(
                "serve load: batch-size histogram {hist:?}, {} errors, {} mismatches",
                report.errors, report.mismatches,
            );
            if report.errors > 0 || report.mismatches > 0 {
                eprintln!("serve load: FAIL — served bytes diverged from direct predictions");
                std::process::exit(1);
            }
            println!("serve load: OK — byte-identical to direct predict_batch");
        }
        other => {
            eprintln!(
                "usage: bench serve load [--threads T] [--requests N] [--seed S]   (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}

/// Pre-overhaul profiling tracer, reconstructed for an honest "before"
/// number (the original predates the batched front-end): per-access virtual
/// dispatch only, the std SipHash hasher behind the word reuse map and the
/// 32-bit write-value counts, and the first-touch double insert. Work per
/// access mirrors the seed `Tracer` exactly; the summary forces the same
/// end-of-run folds. (The current `wade_trace::Tracer` is the behavioural
/// source of truth; this exists only as a baseline.)
#[derive(Default)]
struct ReferenceTracer {
    last_touch: HashMap<u64, (u64, bool)>,
    counts: HashMap<u32, u64>,
    regions: wade_trace::RegionCounter,
    histogram: wade_trace::ReuseHistogram,
    instructions: u64,
    mem_accesses: u64,
    reads: u64,
    writes: u64,
    one_bits: u64,
    samples: u64,
    sum_distance: f64,
    reuse_count: u64,
    reused_words: u64,
}

impl ReferenceTracer {
    fn summary(&self) -> (u64, u64, f64, f64, f64) {
        let mut counts: Vec<u64> = self.counts.values().copied().collect();
        counts.sort_unstable();
        let n = self.samples.max(1) as f64;
        let entropy: f64 = counts
            .iter()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        (
            self.last_touch.len() as u64,
            self.reads,
            self.sum_distance / self.reuse_count.max(1) as f64,
            entropy,
            self.regions.spatial_entropy(),
        )
    }
}

impl wade_trace::AccessSink for ReferenceTracer {
    fn on_access(&mut self, access: wade_trace::MemAccess) {
        self.instructions += 1;
        self.mem_accesses += 1;
        if access.is_write() {
            self.writes += 1;
            let value = access.value;
            *self.counts.entry(value as u32).or_insert(0) += 1;
            *self.counts.entry((value >> 32) as u32).or_insert(0) += 1;
            self.samples += 2;
            self.one_bits += value.count_ones() as u64;
        } else {
            self.reads += 1;
        }
        // The seed ReuseTracker::touch: insert, then a second insert on
        // first touch.
        match self.last_touch.insert(access.word_index(), (self.instructions, true)) {
            Some((prev, was_reused)) => {
                if !was_reused {
                    self.reused_words += 1;
                }
                let d = self.instructions.saturating_sub(prev);
                self.histogram.record(d);
                self.sum_distance += d as f64;
                self.reuse_count += 1;
            }
            None => {
                self.last_touch.insert(access.word_index(), (self.instructions, false));
            }
        }
        self.regions.record(access.addr, access.is_write());
    }

    fn on_instructions(&mut self, count: u64) {
        self.instructions += count;
    }
}

/// The seed `ForestTrainer::train`, reconstructed for an honest "before"
/// number: every tree's bootstrap and growth draws come from **one**
/// sequential generator, so trees cannot be built independently — the
/// parallel engine replaced this with per-tree derived seed streams. The
/// tree-growth loop below is likewise the *historical* one, frozen
/// verbatim (per-candidate materialized partition vectors, `x[i][feat]`
/// re-read on every scan) — the live `DecisionTree::grow` replaced that
/// scan with a fused allocation-free pass whose output is bit-identical
/// (the accuracy goldens pin this), so the baseline must keep its own
/// copy, exactly as `reference_naive` keeps the SipHash/ChaCha12 era
/// alive for the simulator. (The current `wade_ml::ForestTrainer` is the
/// behavioural source of truth; this exists only as a baseline.)
struct SerialForest {
    trees: Vec<SerialNode>,
}

/// Pointer-tree node of the frozen pre-engine CART (the arena re-layout
/// also postdates this baseline).
enum SerialNode {
    Leaf { value: f64 },
    Split { feature: usize, threshold: f64, left: Box<SerialNode>, right: Box<SerialNode> },
}

impl SerialForest {
    fn train(x: &[Vec<f64>], y: &[f64]) -> Self {
        let mut rng = StdRng::seed_from_u64(0x00F0_FE57);
        let n = x.len();
        let dim = x[0].len();
        let mtry = ((dim as f64).sqrt().ceil() as usize).max(1);
        let trees = (0..100)
            .map(|_| {
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                serial_grow(x, y, &idx, mtry, &mut rng, 0)
            })
            .collect();
        Self { trees }
    }
}

fn serial_mean(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn serial_sse(y: &[f64], idx: &[usize]) -> f64 {
    let m = serial_mean(y, idx);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

/// The historical `build` (seed `TreeParams`: `max_depth` 12,
/// `min_split` 4), verbatim.
fn serial_grow(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    mtry: usize,
    rng: &mut StdRng,
    depth: usize,
) -> SerialNode {
    if depth >= 12 || idx.len() < 4 {
        return SerialNode::Leaf { value: serial_mean(y, idx) };
    }
    let parent_sse = serial_sse(y, idx);
    if parent_sse <= 1e-18 {
        return SerialNode::Leaf { value: serial_mean(y, idx) };
    }

    let dim = x[0].len();
    let mut features: Vec<usize> = (0..dim).collect();
    features.shuffle(rng);
    features.truncate(mtry.min(dim));

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &feat in &features {
        let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][feat]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][feat] <= threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.is_empty() || right.is_empty() {
                continue;
            }
            let gain = parent_sse - serial_sse(y, &left) - serial_sse(y, &right);
            let better = match best {
                None => true,
                Some((bf, bt, bg)) => {
                    gain > bg || (gain == bg && (feat < bf || (feat == bf && threshold < bt)))
                }
            };
            if better {
                best = Some((feat, threshold, gain));
            }
        }
    }

    match best {
        Some((feature, threshold, gain)) if gain > 1e-12 => {
            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][feature] <= threshold {
                    left_idx.push(i);
                } else {
                    right_idx.push(i);
                }
            }
            SerialNode::Split {
                feature,
                threshold,
                left: Box::new(serial_grow(x, y, &left_idx, mtry, rng, depth + 1)),
                right: Box::new(serial_grow(x, y, &right_idx, mtry, rng, depth + 1)),
            }
        }
        _ => SerialNode::Leaf { value: serial_mean(y, idx) },
    }
}

impl Regressor for SerialForest {
    fn predict(&self, features: &[f64]) -> f64 {
        let sum: f64 = self
            .trees
            .iter()
            .map(|t| {
                let mut node = t;
                loop {
                    match node {
                        SerialNode::Leaf { value } => return *value,
                        SerialNode::Split { feature, threshold, left, right } => {
                            node = if features[*feature] <= *threshold { left } else { right };
                        }
                    }
                }
            })
            .sum();
        sum / self.trees.len() as f64
    }
}

/// Serial fold-model training of the reference path: the real (serial)
/// KNN/SVR trainers, plus the sequential-stream forest above.
fn serial_train(kind: MlKind, x: &[Vec<f64>], y: &[f64]) -> Box<dyn Regressor> {
    match kind {
        MlKind::Svm => Box::new(SvrTrainer::paper_default().train(x, y)),
        MlKind::Knn => Box::new(KnnTrainer::paper_default().train(x, y)),
        MlKind::Rdf => Box::new(SerialForest::train(x, y)),
    }
}

/// The pre-engine WER evaluation: rank-at-a-time, fold-at-a-time, one
/// model per (kind, set, rank, fold) with per-row serial prediction — the
/// historical `evaluate_wer_accuracy` loop, for all models × sets.
fn serial_reference_wer(data: &CampaignData) {
    for kind in MlKind::ALL {
        for set in FeatureSet::ALL {
            let mut acc = 0.0;
            for rank in 0..RANK_COUNT {
                let ds = build_wer_dataset(data, set, rank);
                if ds.len() < 6 || ds.groups().len() < 3 {
                    continue;
                }
                for group in ds.groups() {
                    let (train, test) = ds.split_leave_group_out(&group);
                    if train.len() < 4 || test.is_empty() {
                        continue;
                    }
                    let model = serial_train(kind, &train.features(), &train.targets());
                    let preds: Vec<f64> =
                        test.features().iter().map(|r| 10f64.powf(model.predict(r))).collect();
                    let actuals: Vec<f64> =
                        test.targets().iter().map(|t| 10f64.powf(*t)).collect();
                    acc += mean_percentage_error(&preds, &actuals);
                }
            }
            std::hint::black_box(acc);
        }
    }
}

/// The pre-engine PUE evaluation (the historical `evaluate_pue_accuracy`
/// loop), for all models × sets.
fn serial_reference_pue(data: &CampaignData) {
    for kind in MlKind::ALL {
        for set in FeatureSet::ALL {
            let ds = build_pue_dataset(data, set);
            if ds.len() < 6 || ds.groups().len() < 3 {
                continue;
            }
            let mut acc = 0.0;
            for group in ds.groups() {
                let (train, test) = ds.split_leave_group_out(&group);
                if train.len() < 4 || test.is_empty() {
                    continue;
                }
                let model = serial_train(kind, &train.features(), &train.targets());
                let preds: Vec<f64> =
                    test.features().iter().map(|r| model.predict(r).clamp(0.0, 1.0)).collect();
                acc += mean_absolute_error_percent(&preds, &test.targets());
            }
            std::hint::black_box(acc);
        }
    }
}

/// Bitwise equality of two evaluated grids (NaN-safe: compares the bit
/// patterns, which is the byte-identity the engine promises).
fn grids_equal(a: &EvalGrid, b: &EvalGrid) -> bool {
    MlKind::ALL.iter().all(|&kind| {
        FeatureSet::ALL.iter().all(|&set| {
            report_eq(a.wer_report(kind, set), b.wer_report(kind, set))
                && a.pue_error(kind, set).to_bits() == b.pue_error(kind, set).to_bits()
        })
    })
}

fn report_eq(a: &AccuracyReport, b: &AccuracyReport) -> bool {
    a.average.to_bits() == b.average.to_bits()
        && a.per_rank.len() == b.per_rank.len()
        && a.per_rank.iter().zip(b.per_rank.iter()).all(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
            (None, None) => true,
            _ => false,
        })
        && a.per_workload.len() == b.per_workload.len()
        && a.per_workload
            .iter()
            .zip(b.per_workload.iter())
            .all(|((wa, ea), (wb, eb))| wa == wb && ea.to_bits() == eb.to_bits())
}

/// `bench fleet <sweep|extend|eval>`: sweep a heterogeneous device fleet
/// through the shared store (per-`(shard, epoch)` slice artifacts; warm
/// slices are pure reads); `extend` grows the same fleet's epoch count
/// reusing the persisted prefix and self-asserts the extension simulated
/// nothing but the delta; `eval` runs the field-style failure-prediction
/// evaluation on the swept histories.
fn fleet_command(action: Option<&str>, flags: &HashMap<&'static str, String>) {
    let mut spec = wade_fleet::FleetSpec::test_default();
    spec.devices = flag_num(flags, "--devices", spec.devices);
    spec.shards = flag_num(flags, "--shards", spec.shards);
    spec.epochs = flag_num(flags, "--epochs", spec.epochs);
    if let Err(err) = spec.validate() {
        eprintln!("error: invalid fleet spec: {err}");
        std::process::exit(2);
    }
    let seed = flag_num(flags, "--seed", 7u64);
    let run_sweep = || {
        let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
        let engine = wade_fleet::FleetSweep::new(spec, seed);
        let start = Instant::now();
        let outcome = engine.sweep_stored(&store);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "fleet: {} devices / {} shards / {} epochs (seed {seed}) in {ms:.1} ms — \
             {} failed, {} survived, {} simulations ({})",
            spec.devices,
            spec.shards,
            spec.epochs,
            outcome.failures().len(),
            outcome.survivors(),
            engine.simulations(),
            if engine.simulations() == 0 { "fully warm" } else { "cold slices simulated" },
        );
        println!(
            "store: {} — {} hits, {} misses, {} writes, {} B live",
            store.root().display(),
            store.hits(),
            store.misses(),
            store.writes(),
            store.live_bytes(),
        );
        (engine, outcome)
    };
    match action {
        Some("sweep") => {
            run_sweep();
        }
        Some("extend") => {
            let extend_to = flag_num(flags, "--extend-to", spec.epochs + 4);
            if extend_to <= spec.epochs {
                eprintln!(
                    "error: --extend-to must exceed --epochs ({extend_to} <= {})",
                    spec.epochs
                );
                std::process::exit(2);
            }
            let mut extended_spec = spec;
            extended_spec.epochs = extend_to;
            if let Err(err) = extended_spec.validate() {
                eprintln!("error: invalid extended fleet spec: {err}");
                std::process::exit(2);
            }
            // Warm (or verify) the base prefix first: after this, every
            // slice below `spec.epochs` is on disk, so any extension
            // simulation beyond the delta is a prefix-reuse bug.
            run_sweep();
            let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
            let engine = wade_fleet::FleetSweep::new(extended_spec, seed);
            let prefix_slices = store
                .keys_with_prefix(wade_fleet::FLEET_SLICE_KIND, &engine.slice_key_prefix())
                .len();
            let start = Instant::now();
            let outcome = engine.sweep_stored(&store);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let delta: u64 = outcome
                .devices
                .iter()
                .map(|d| d.epochs.iter().filter(|e| e.epoch >= spec.epochs).count() as u64)
                .sum();
            let prefix_sims = engine.simulations().saturating_sub(delta);
            println!(
                "fleet extend: {} → {extend_to} epochs (seed {seed}) in {ms:.1} ms — \
                 {} failed, {} survived, {} simulations for a {delta} device-epoch delta",
                spec.epochs,
                outcome.failures().len(),
                outcome.survivors(),
                engine.simulations(),
            );
            println!(
                "prefix warm: {prefix_sims} prefix simulations, {} delta simulations \
                 ({prefix_slices} slices on disk before extension)",
                engine.simulations().min(delta),
            );
            println!(
                "store: {} — {} hits, {} misses, {} writes, {} B live",
                store.root().display(),
                store.hits(),
                store.misses(),
                store.writes(),
                store.live_bytes(),
            );
            if prefix_sims != 0 || engine.simulations() > delta {
                eprintln!(
                    "error: extension re-simulated the epoch prefix \
                     ({} simulations for a {delta} device-epoch delta)",
                    engine.simulations(),
                );
                std::process::exit(1);
            }
        }
        Some("eval") => {
            let (engine, outcome) = run_sweep();
            let eval = wade_fleet::FleetEval::evaluate(
                &outcome,
                wade_fleet::FleetEvalConfig::for_spec(&spec),
            );
            for report in eval.lead_time_reports() {
                println!(
                    "lead {:>6.0} s: precision {:.3} ({}/{} alerts justified), \
                     recall {:.3} ({}/{} failures caught)",
                    report.lead_s,
                    report.precision,
                    report.justified_alerts,
                    report.alerts,
                    report.recall,
                    report.caught_failures,
                    report.caught_failures + report.missed_failures,
                );
            }
            let curve = eval.cost_curve(1.0, 25.0);
            let best = curve
                .iter()
                .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("costs are finite"))
                .expect("curve is never empty");
            let never = curve.last().expect("curve is never empty");
            println!(
                "cost (migrate 1, crash 25): best θ={:.3e} → {} migrations + {} crashes \
                 = {:.0}; never-migrate = {:.0}",
                best.threshold, best.migrations, best.crashes, best.cost, never.cost,
            );
            let store = wade_store::ArtifactStore::open(wade_bench::store_dir());
            let matrix = wade_fleet::transfer_matrix(
                &engine,
                &outcome,
                MlKind::Rdf,
                FeatureSet::Set1,
                Some(&store),
            );
            println!("transfer (Rdf/Set1, WER MPE %): train vintage ↓ / test vintage →");
            for a in 0..matrix.vintages {
                let row: Vec<String> = (0..matrix.vintages)
                    .map(|b| format!("{:>8.1}", matrix.cell(a, b).mpe))
                    .collect();
                println!("  v{a}: {}", row.join(" "));
            }
            println!(
                "transfer: in-vintage mean {:.1} %, cross-vintage mean {:.1} %",
                matrix.mean_diagonal(),
                matrix.mean_off_diagonal(),
            );
        }
        other => {
            eprintln!(
                "usage: bench fleet <sweep|extend|eval> [--devices N] [--shards S] \
                 [--epochs E] [--extend-to E2] [--seed K] [--store-dir DIR]   (got {other:?})"
            );
            std::process::exit(2);
        }
    }
}

fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// ChaCha12 — upstream rand 0.8's `StdRng`, reimplemented so the "before"
/// configuration pays the same generator cost the seed code did. Seeded
/// SplitMix64-style like `SeedableRng::seed_from_u64`.
struct ChaCha12Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    cursor: usize,
}

impl ChaCha12Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&[0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574]);
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        Self { state, buffer: [0; 16], cursor: 16 }
    }

    fn refill(&mut self) {
        const fn qr(mut x: [u32; 16], a: usize, b: usize, c: usize, d: usize) -> [u32; 16] {
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(16);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(12);
            x[a] = x[a].wrapping_add(x[b]);
            x[d] = (x[d] ^ x[a]).rotate_left(8);
            x[c] = x[c].wrapping_add(x[d]);
            x[b] = (x[b] ^ x[c]).rotate_left(7);
            x
        }
        let mut x = self.state;
        for _ in 0..6 {
            // Double round: columns, then diagonals.
            x = qr(x, 0, 4, 8, 12);
            x = qr(x, 1, 5, 9, 13);
            x = qr(x, 2, 6, 10, 14);
            x = qr(x, 3, 7, 11, 15);
            x = qr(x, 0, 5, 10, 15);
            x = qr(x, 1, 6, 11, 12);
            x = qr(x, 2, 7, 8, 13);
            x = qr(x, 3, 4, 9, 14);
        }
        for (out, (&word, &st)) in self.buffer.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *out = word.wrapping_add(st);
        }
        // 64-bit block counter in words 12/13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.cursor];
        let hi = self.buffer[self.cursor + 1];
        self.cursor += 2;
        u64::from(hi) << 32 | u64::from(lo)
    }
}

/// The pre-optimization simulator hot loop, reconstructed for an honest
/// "before" number: per rank, every Poisson-drawn weak cell samples its
/// full attribute tuple from a sequential ChaCha12 stream, collision maps
/// use the std SipHash hasher, companion probabilities cost an `exp()` per
/// manifesting cell, and events are sorted at the end — matching the old
/// code's cost structure. (The new implementation is the behavioural
/// source of truth; this exists only as a baseline.)
fn reference_naive_run(
    device: &DramDevice,
    profile: &DramUsageProfile,
    op: OperatingPoint,
    duration_s: f64,
    run_seed: u64,
) -> (usize, bool) {
    let physics = device.physics();
    let law = device.retention_law();
    let ranks = device.geometry().total_ranks();
    let region_words = (profile.footprint_words / 64).max(1);
    let coupling = 1.0 - physics.entropy_coupling * (profile.entropy_bits / 32.0).clamp(0.0, 1.0);
    let companion_scale = 71.0 * physics.multi_bit_correlation;
    let mut events: Vec<(f64, u64, u8)> = Vec::new();
    let mut crashed = false;

    for rank in 0..ranks {
        let mut rng_pop = ChaCha12Rng::seed_from_u64(device.seed() ^ (rank as u64) << 17);
        let mut rng_run =
            ChaCha12Rng::seed_from_u64(device.seed() ^ run_seed ^ ((rank as u64) << 33) | 1);
        let expected =
            device.expected_weak_cells(rank, profile.footprint_words, op.temp_c, op.vdd_v);
        let population = sample_poisson(expected, &mut rng_pop);
        let mut manifested: HashMap<u64, f64> = HashMap::new();
        let p_companion_unit = physics.weak_density(op.temp_c, op.vdd_v)
            * device.variation().factor(rank)
            * companion_scale;

        for _ in 0..population {
            let retention = law.sample(&mut rng_pop);
            let word = rng_pop.gen_range(0..profile.footprint_words);
            let lane = rng_pop.gen_range(0..72u8);
            let u_never: f64 = rng_pop.gen();
            let u_reuse: f64 = rng_pop.gen();
            let is_true_cell = rng_pop.gen_bool(physics.true_cell_fraction);
            let u_bit: f64 = rng_pop.gen();

            let t_reuse = if u_never < profile.never_reused_fraction {
                f64::INFINITY
            } else {
                profile.reuse.sample_at(u_reuse) / profile.dram_filter.max(0.05)
            };
            let t_eff = op.trefp_s.min(t_reuse);
            let stored_one = u_bit < profile.one_density.clamp(0.0, 1.0);
            if !(is_true_cell == stored_one && retention * coupling < t_eff) {
                continue;
            }
            let region = ((word as u128 * 64) / profile.footprint_words as u128) as usize;
            let share = profile.region_shares.get(region).copied().unwrap_or(0.0);
            let read_rate = profile.dram_read_rate_hz * share / region_words as f64
                + physics.scrub_rate_hz;
            if let Some(t) = discovery(physics, read_rate, duration_s, &mut rng_run) {
                let p_companion = (p_companion_unit
                    * law.fraction_below(t_eff / coupling.max(1e-9)))
                .clamp(0.0, 1.0);
                if rng_run.gen_bool(p_companion) {
                    crashed = true;
                    continue;
                }
                if manifested.insert(word, t).is_some() {
                    crashed = true;
                } else {
                    events.push((t, word, lane));
                }
            }
        }

        // OS-resident scan, as in the old implementation: full per-cell
        // sampling of the kernel-page population.
        let os_words_rank = physics.os_resident_words / ranks as u64;
        let os_expected = physics.weak_density(op.temp_c, op.vdd_v)
            * device.variation().factor(rank)
            * os_words_rank as f64
            * 72.0;
        let os_population = sample_poisson(os_expected, &mut rng_pop);
        let mut os_manifested: HashMap<u64, f64> = HashMap::new();
        for _ in 0..os_population {
            let retention = law.sample(&mut rng_pop);
            let word = rng_pop.gen_range(0..os_words_rank.max(1));
            let is_true_cell = rng_pop.gen_bool(physics.true_cell_fraction);
            let stored_one = rng_pop.gen_bool(0.5);
            if !(is_true_cell == stored_one && retention < op.trefp_s) {
                continue;
            }
            if let Some(t) = discovery(physics, physics.scrub_rate_hz, duration_s, &mut rng_run) {
                if os_manifested.insert(word, t).is_some() {
                    crashed = true;
                }
            }
        }
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    (events.len(), crashed)
}

fn discovery<R: RngCore>(
    physics: &wade_dram::ErrorPhysics,
    read_rate_hz: f64,
    duration_s: f64,
    rng: &mut R,
) -> Option<f64> {
    let mut t = sample_exp(physics.onset_rate_hz, rng) + sample_exp(read_rate_hz, rng);
    if !rng.gen_bool(physics.vrt_active_fraction) {
        t += sample_exp(physics.vrt_toggle_rate_hz, rng);
    }
    (t <= duration_s).then_some(t)
}

fn sample_poisson<R: RngCore>(mean: f64, rng: &mut R) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    Poisson::new(mean.min(5.0e7)).map(|d| d.sample(rng) as u64).unwrap_or(0)
}

fn sample_exp<R: RngCore>(rate_hz: f64, rng: &mut R) -> f64 {
    if rate_hz <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_hz
}
