//! Fig. 3 — the data-collection and validation pipeline, executed end to
//! end with stage-by-stage narration (the figure is a schematic; this
//! binary demonstrates the same flow as running code).

use wade_core::{build_wer_dataset, train_error_model, Campaign, CampaignConfig, MlKind};
use wade_features::FeatureSet;
use wade_workloads::{paper_suite, Scale};

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    println!("Fig. 3: data collection and validation pipeline\n");

    println!("[1] Profiling phase: extract program features (perf + DynamoRIO stand-ins)");
    let server = wade_bench::server();
    let suite = paper_suite(Scale::Test);
    for wl in suite.iter().take(3) {
        let p = wade_core::ProfileCache::global().profile(&server, wl.as_ref(), 1);
        println!(
            "    {:<16} {:>9} accesses, {:>9} instrs, 249 features extracted",
            p.name, p.trace.mem_accesses, p.trace.instructions
        );
    }
    println!("    … ({} workloads total)", suite.len());

    println!("\n[2] DRAM characterization phase: run workloads under varying TREFP/VDD/temp");
    let campaign = Campaign::new(server, CampaignConfig::quick());
    let data = campaign.collect(&suite, 1);
    let wer_rows = data.rows.iter().filter(|r| r.wer_run.is_some()).count();
    let pue_rows = data.rows.iter().filter(|r| !r.pue_runs.is_empty()).count();
    println!(
        "    {} rows collected ({} WER cells, {} PUE cells), {:.1} simulated hours",
        data.rows.len(),
        wer_rows,
        pue_rows,
        data.simulated_seconds / 3600.0
    );

    println!("\n[3] Build data set: MODEL INPUT = TREFP, VDD, TEMP + program features");
    let ds = build_wer_dataset(&data, FeatureSet::Set1, 0);
    println!(
        "    rank 0 WER dataset: {} samples x {} inputs, groups = {:?}",
        ds.len(),
        ds.dim(),
        ds.groups()
    );

    println!("\n[4] Training/testing: leave-one-workload-out (train on all other samples)");
    for group in ds.groups().iter().take(2) {
        let (train, test) = ds.split_leave_group_out(group);
        println!("    hold out {:<16} -> train {:>3} samples, test {:>2}", group, train.len(), test.len());
    }

    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);
    println!("\n[5] Final model: {:?}", model);
    println!("\npipeline executed end to end — see fig11/fig12 for accuracy numbers");
}
