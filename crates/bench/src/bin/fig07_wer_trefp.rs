//! Fig. 7 — WER per benchmark across TREFP ∈ {0.618, 1.173, 1.727,
//! 2.283} s at 50/60/70 °C (panels a–e), and the benchmark-average WER vs
//! TREFP (panel f, exponential growth).

use std::collections::BTreeMap;
use wade_core::OperatingPoint;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let data = wade_bench::full_campaign_data();

    // Group: temp → trefp → (workload → wer).
    let mut grid: BTreeMap<i64, BTreeMap<i64, Vec<(String, f64)>>> = BTreeMap::new();
    for row in &data.rows {
        let Some(run) = &row.wer_run else { continue };
        if run.crashed {
            continue;
        }
        grid.entry(row.op.temp_c as i64)
            .or_default()
            .entry((row.op.trefp_s * 1000.0) as i64)
            .or_default()
            .push((row.workload.clone(), run.wer));
    }

    for (temp, by_trefp) in &grid {
        println!("\nFig. 7 panel — {temp} °C (WER per benchmark)");
        let trefps: Vec<i64> = by_trefp.keys().copied().collect();
        print!("{:<18}", "benchmark");
        for t in &trefps {
            print!(" {:>10}", format!("{:.3}s", *t as f64 / 1000.0));
        }
        println!();
        let workloads: Vec<String> =
            by_trefp.values().next().map(|v| v.iter().map(|(w, _)| w.clone()).collect()).unwrap_or_default();
        for w in &workloads {
            print!("{w:<18}");
            for t in &trefps {
                let wer = by_trefp[t].iter().find(|(n, _)| n == w).map(|(_, v)| *v).unwrap_or(0.0);
                print!(" {:>10}", wade_bench::fmt_wer(wer));
            }
            println!();
        }
        // Min/max spread at the largest common TREFP (the "8×" observation).
        if let Some(t) = trefps.last() {
            let vals: Vec<f64> =
                by_trefp[t].iter().map(|(_, v)| *v).filter(|v| *v > 0.0).collect();
            if vals.len() > 2 {
                let max = vals.iter().cloned().fold(f64::MIN, f64::max);
                let min = vals.iter().cloned().fold(f64::MAX, f64::min);
                println!("spread across workloads at {:.3}s: {:.1}x (paper: up to 8x)", *t as f64 / 1000.0, max / min);
            }
        }
    }

    println!("\nFig. 7f — benchmark-average WER vs TREFP (expect exponential growth)");
    println!("{:>8} {:>14} {:>14}", "TREFP", "50C avg", "60C avg");
    let mut prev: Option<(f64, f64)> = None;
    for &t in &OperatingPoint::WER_TREFP_SWEEP {
        let avg = |temp: f64| -> f64 {
            let vals: Vec<f64> = data
                .rows
                .iter()
                .filter(|r| {
                    r.op.temp_c == temp && (r.op.trefp_s - t).abs() < 1e-9 && r.wer_run.is_some()
                })
                .filter_map(|r| r.wer_run.as_ref())
                .map(|run| run.wer)
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        let (a50, a60) = (avg(50.0), avg(60.0));
        let growth = prev
            .map(|(p50, p60)| {
                format!("  (step x{:.1} / x{:.1})", a50 / p50.max(1e-300), a60 / p60.max(1e-300))
            })
            .unwrap_or_default();
        println!("{t:>7.3}s {:>14} {:>14}{growth}", wade_bench::fmt_wer(a50), wade_bench::fmt_wer(a60));
        prev = Some((a50, a60));
    }
}
