//! Table II — the average DRAM reuse time per workload.
//!
//! Paper values (seconds, 8 GB footprint): nw 10.93/4.06, srad 2.82/1.89,
//! backprop 1.61/1.10, kmeans 0.17/0.50, fmm 8.88/2.41, memcached 0.09,
//! pagerank 0.48, bfs 0.61, bc 0.56. The shape to reproduce: nw/fmm ≫
//! srad/backprop ≫ kmeans/memcached/analytics; parallel versions lower
//! except kmeans (locality inversion).

use wade_features::schema;

fn main() {
    // Shared artifact store (--store-dir / WADE_STORE_DIR / target/wade-store).
    wade_bench::init_store();
    let server = wade_bench::server();
    let suite = wade_bench::experiment_suite();

    let paper: &[(&str, f64)] = &[
        ("nw", 10.93),
        ("nw(par)", 4.06),
        ("srad", 2.82),
        ("srad(par)", 1.89),
        ("backprop", 1.61),
        ("backprop(par)", 1.10),
        ("kmeans", 0.17),
        ("kmeans(par)", 0.50),
        ("fmm", 8.88),
        ("fmm(par)", 2.41),
        ("memcached", 0.09),
        ("pagerank", 0.48),
        ("bfs", 0.61),
        ("bc", 0.56),
    ];

    println!("Table II: average DRAM reuse time (s) at 8 GB deployment scale");
    println!("{:<18} {:>12} {:>12}", "benchmark", "paper", "measured");
    println!("{}", "-".repeat(44));
    for wl in suite.iter().take(14) {
        let p = wade_core::ProfileCache::global().profile(
            &server,
            wl.as_ref(),
            wade_bench::CAMPAIGN_SEED,
        );
        let treuse = p.features.get(schema::TREUSE);
        let paper_val = paper
            .iter()
            .find(|(n, _)| *n == wl.name())
            .map(|(_, v)| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        println!("{:<18} {:>12} {:>12.2}", wl.name(), paper_val, treuse);
    }
}
