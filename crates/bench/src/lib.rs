//! # wade-bench — experiment harness
//!
//! One binary per table/figure of the paper (see ARCHITECTURE.md §4 for the
//! index) plus Criterion benchmarks. This library holds the shared
//! plumbing: the reference server/campaign construction, the artifact-store
//! wiring every figure binary shares (profiles, campaign data and trained
//! fold models persist across *processes* — ARCHITECTURE.md §11), and small
//! table-printing helpers.
//!
//! ```no_run
//! // The shared full-grid campaign (collected once, stored on disk):
//! let data = wade_bench::full_campaign_data();
//! println!("{} rows from the reference server", data.rows.len());
//! ```

#![deny(missing_docs)]

use std::sync::Arc;
use wade_core::{Campaign, CampaignConfig, CampaignData, ProfileCache, SimulatedServer};
use wade_store::ArtifactStore;
use wade_workloads::{full_suite, Scale, Workload};

/// The reference device seed used by every experiment (the "server in the
/// lab"). Changing it re-manufactures all 72 chips.
pub const DEVICE_SEED: u64 = 39;

/// The campaign seed (run-to-run randomness: VRT states, discovery order).
pub const CAMPAIGN_SEED: u64 = 7;

/// The reference server instance.
pub fn server() -> SimulatedServer {
    SimulatedServer::with_seed(DEVICE_SEED)
}

/// Installs the process-wide artifact store every figure binary shares and
/// returns it. The directory is resolved `--store-dir DIR` (or
/// `--store-dir=DIR`) > `WADE_STORE_DIR` > `target/wade-store`, and the
/// store is attached to the global profile cache, so profiling, campaign
/// collection and fold-model training all persist across invocations —
/// `repro_all` warms the store and every standalone `fig*` binary reuses
/// it. Idempotent: the first call wins, later calls return the installed
/// store.
pub fn init_store() -> Arc<ArtifactStore> {
    let store = wade_store::install_global(Arc::new(ArtifactStore::open(store_dir())));
    ProfileCache::global().set_store(Some(store.clone()));
    store
}

/// The store directory [`init_store`] resolves (without installing).
/// Exits with an error if `--store-dir` is given without a value — falling
/// back to the default store after a malformed flag would point
/// destructive subcommands (`store clear`) at a store the user did not
/// intend to touch.
pub fn store_dir() -> std::path::PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let mut explicit: Option<String> = None;
    for (i, arg) in args.iter().enumerate() {
        if arg == "--store-dir" {
            match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => explicit = Some(dir.clone()),
                _ => {
                    eprintln!("error: --store-dir requires a directory argument");
                    std::process::exit(2);
                }
            }
        } else if let Some(dir) = arg.strip_prefix("--store-dir=") {
            explicit = Some(dir.to_string());
        }
    }
    wade_store::resolve_dir(explicit.as_deref())
}

/// The experiment scale: `Scale::Full` (the paper's inputs) unless
/// `WADE_SCALE=test` asks for the reduced CI-friendly inputs. The store
/// keys fold the scale in through the suite, so Test- and Full-scale
/// artifacts never collide.
pub fn scale() -> Scale {
    match std::env::var("WADE_SCALE") {
        Ok(v) if v.eq_ignore_ascii_case("test") => Scale::Test,
        _ => Scale::Full,
    }
}

/// The full-suite campaign data at the paper's grid ([`scale`]-sized),
/// served through the artifact store so every figure binary — and every
/// repeated invocation — shares one collection pass. The store key is
/// explicit: (campaign seed, grid config, suite at its scale, device
/// fingerprint); see `wade_core::campaign_store_key`.
pub fn full_campaign_data() -> CampaignData {
    let store = init_store();
    let config = CampaignConfig::paper_full();
    let suite = experiment_suite();
    // Probe the campaign artifact itself (profile-kind hits during a cold
    // collection must not masquerade as a campaign hit).
    let key = wade_core::campaign_store_key(&server(), &config, &suite, CAMPAIGN_SEED);
    if let Some(data) = store.get::<CampaignData>(wade_core::CAMPAIGN_KIND, &key) {
        eprintln!("[wade-bench] using stored campaign data ({})", store.root().display());
        return data;
    }
    eprintln!(
        "[wade-bench] collecting full campaign into {} (first run)…",
        store.root().display()
    );
    Campaign::new(server(), config).collect_stored(&store, &suite, CAMPAIGN_SEED)
}

/// Collects the full campaign without touching the store.
pub fn collect_full_campaign() -> CampaignData {
    let campaign = Campaign::new(server(), CampaignConfig::paper_full());
    campaign.collect(&experiment_suite(), CAMPAIGN_SEED)
}

/// The workload suite used by the experiments: the paper's 14 configs plus
/// the Fig. 13 extras (lulesh ×2 and the random data-pattern micro), at
/// [`scale`].
pub fn experiment_suite() -> Vec<Box<dyn Workload>> {
    full_suite(scale())
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Formats a WER in the paper's scientific style.
pub fn fmt_wer(wer: f64) -> String {
    if wer == 0.0 {
        "0".to_string()
    } else {
        format!("{wer:.2e}")
    }
}
