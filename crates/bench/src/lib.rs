//! # wade-bench — experiment harness
//!
//! One binary per table/figure of the paper (see ARCHITECTURE.md §4 for the
//! index) plus Criterion benchmarks. This library holds the shared
//! plumbing: the reference server/campaign construction, a disk cache for
//! the collected campaign data (so each figure binary doesn't recollect),
//! and small table-printing helpers.
//!
//! ```no_run
//! // The shared full-grid campaign (collected once, cached under target/):
//! let data = wade_bench::full_campaign_data();
//! println!("{} rows from the reference server", data.rows.len());
//! ```

#![deny(missing_docs)]

use std::fs;
use std::path::PathBuf;
use wade_core::{Campaign, CampaignConfig, CampaignData, SimulatedServer};
use wade_workloads::{full_suite, Scale, Workload};

/// The reference device seed used by every experiment (the "server in the
/// lab"). Changing it re-manufactures all 72 chips.
pub const DEVICE_SEED: u64 = 39;

/// The campaign seed (run-to-run randomness: VRT states, discovery order).
pub const CAMPAIGN_SEED: u64 = 7;

/// The reference server instance.
pub fn server() -> SimulatedServer {
    SimulatedServer::with_seed(DEVICE_SEED)
}

/// The full-suite campaign data at the paper's grid, cached on disk under
/// `target/` so figure binaries share one collection pass.
pub fn full_campaign_data() -> CampaignData {
    let cache = cache_path();
    if let Ok(json) = fs::read_to_string(&cache) {
        if let Ok(data) = CampaignData::from_json(&json) {
            eprintln!("[wade-bench] using cached campaign data ({})", cache.display());
            return data;
        }
    }
    eprintln!("[wade-bench] collecting full campaign (first run, ~1-2 min)…");
    let data = collect_full_campaign();
    if let Ok(json) = data.to_json() {
        let _ = fs::create_dir_all(cache.parent().unwrap());
        let _ = fs::write(&cache, json);
    }
    data
}

/// Collects the full campaign without touching the cache.
pub fn collect_full_campaign() -> CampaignData {
    let campaign = Campaign::new(server(), CampaignConfig::paper_full());
    campaign.collect(&experiment_suite(), CAMPAIGN_SEED)
}

/// The workload suite used by the experiments: the paper's 14 configs plus
/// the Fig. 13 extras (lulesh ×2 and the random data-pattern micro).
pub fn experiment_suite() -> Vec<Box<dyn Workload>> {
    full_suite(Scale::Full)
}

fn cache_path() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into());
    PathBuf::from(target).join("wade-campaign-cache.json")
}

/// Prints a fixed-width table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a header row plus separator.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(), widths);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Formats a WER in the paper's scientific style.
pub fn fmt_wer(wer: f64) -> String {
    if wer == 0.0 {
        "0".to_string()
    } else {
        format!("{wer:.2e}")
    }
}
