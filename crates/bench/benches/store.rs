//! Artifact-store round-trip cost per artifact kind: one `put`
//! (serialize, fingerprint, atomic write) and one verified `get` (read,
//! length/hash/key checks, deserialize), so store overhead is tracked in
//! `target/wade-bench/*.jsonl` alongside the paths it accelerates.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::path::PathBuf;
use wade_core::{train_error_model, AnyModel, Campaign, CampaignConfig, MlKind, SimulatedServer};
use wade_features::FeatureSet;
use wade_store::ArtifactStore;
use wade_workloads::{Scale, WorkloadId};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("wade-store-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Round-trips each artifact kind's representative payload: a profiled
/// workload, a quick Test-scale campaign, and a trained fold model.
fn bench_store_round_trip(c: &mut Criterion) {
    let mut group = c.benchmark_group("artifact_store");

    let server = SimulatedServer::with_seed(5);
    let wl = WorkloadId::Backprop.instantiate(1, Scale::Test);
    let profile = server.profile_workload(wl.as_ref(), 3);

    let suite = vec![
        WorkloadId::Backprop.instantiate(1, Scale::Test),
        WorkloadId::Memcached.instantiate(8, Scale::Test),
        WorkloadId::Nw.instantiate(1, Scale::Test),
    ];
    let data = Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
        .collect(&suite, 3);
    let model = train_error_model(&data, MlKind::Knn, FeatureSet::Set1);

    let dir = scratch("round-trip");
    let store = ArtifactStore::open(&dir);
    // (label, put closure, get closure) per artifact kind.
    group.bench_function("profile/put", |b| {
        b.iter(|| black_box(store.put("profile", "bench-profile", &profile).unwrap()))
    });
    group.bench_function("profile/get_verified", |b| {
        b.iter(|| {
            black_box(
                store
                    .get::<wade_core::ProfiledWorkload>("profile", "bench-profile")
                    .expect("hit"),
            )
        })
    });
    group.bench_function("campaign/put", |b| {
        b.iter(|| black_box(store.put("campaign", "bench-campaign", &data).unwrap()))
    });
    group.bench_function("campaign/get_verified", |b| {
        b.iter(|| {
            black_box(
                store
                    .get::<wade_core::CampaignData>("campaign", "bench-campaign")
                    .expect("hit"),
            )
        })
    });
    group.bench_function("model/put", |b| {
        b.iter(|| black_box(store.put("model", "bench-model", &model).unwrap()))
    });
    group.bench_function("model/get_verified", |b| {
        b.iter(|| {
            black_box(store.get::<wade_core::ErrorModel>("model", "bench-model").expect("hit"))
        })
    });
    // The deserialization halves of a warm read, head to head: the
    // streaming slice-cursor path `get` actually runs vs the tree-building
    // reference (parse to a `Value`, then convert) it replaced.
    let payload = serde_json::to_string(&model).unwrap();
    group.bench_function("model/deserialize_streaming", |b| {
        b.iter(|| {
            black_box(serde_json::from_str::<wade_core::ErrorModel>(&payload).unwrap())
        })
    });
    group.bench_function("model/deserialize_tree_reference", |b| {
        b.iter(|| {
            black_box(serde_json::from_str_value::<wade_core::ErrorModel>(&payload).unwrap())
        })
    });
    // A corrupt read (the integrity-check failure path) must stay cheap:
    // it is paid on every poisoned or foreign entry before recompute.
    let poisoned = store.put("model", "bench-poisoned", &model).unwrap();
    let mut bytes = std::fs::read(&poisoned).unwrap();
    let n = bytes.len();
    bytes[n - 2] ^= 1;
    std::fs::write(&poisoned, &bytes).unwrap();
    group.bench_function("model/get_corrupt_miss", |b| {
        b.iter(|| black_box(store.get::<AnyModel>("model", "bench-poisoned").is_none()))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_store_round_trip);
criterion_main!(benches);
