//! Learner benchmarks: training time, prediction latency (the paper's
//! "predict within 300 ms" claim, §VI.B), the KNN k ablation, and the
//! parallel training/evaluation engine (forest fan-out, grid dispatch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use wade_ml::{
    Dataset, EvalGrid, ForestTrainer, KnnTrainer, Regressor, SharedModel, SvrTrainer, Trainer,
};

/// A campaign-shaped synthetic dataset: 140 samples × `dim` features with a
/// smooth nonlinear target (mirrors a per-rank WER dataset in log space).
fn synthetic(dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = 140;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(dim);
        for j in 0..dim {
            let v = (((i * 31 + j * 17) % 97) as f64) / 97.0;
            row.push(v);
        }
        let t = -9.0 + 3.0 * row[0] + 2.0 * (row[1 % dim] * 6.0).sin();
        x.push(row);
        y.push(t);
    }
    (x, y)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    for dim in [7usize, 252] {
        let (x, y) = synthetic(dim);
        group.bench_with_input(BenchmarkId::new("knn", dim), &dim, |b, _| {
            b.iter(|| black_box(KnnTrainer::paper_default().train(&x, &y)))
        });
        group.bench_with_input(BenchmarkId::new("svr", dim), &dim, |b, _| {
            b.iter(|| black_box(SvrTrainer::paper_default().train(&x, &y)))
        });
        group.bench_with_input(BenchmarkId::new("rdf", dim), &dim, |b, _| {
            b.iter(|| black_box(ForestTrainer::new(20).train(&x, &y)))
        });
    }
    group.finish();
}

fn bench_predict_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_latency");
    let (x, y) = synthetic(7);
    let query = x[0].clone();
    let knn = KnnTrainer::paper_default().train(&x, &y);
    let svr = SvrTrainer::paper_default().train(&x, &y);
    let rdf = ForestTrainer::paper_default().train(&x, &y);
    // The paper's pitch: a prediction replaces a 2-hour characterization
    // and completes within 300 ms. Ours must be far under that.
    group.bench_function("knn", |b| b.iter(|| black_box(knn.predict(black_box(&query)))));
    group.bench_function("svr", |b| b.iter(|| black_box(svr.predict(black_box(&query)))));
    group.bench_function("rdf", |b| b.iter(|| black_box(rdf.predict(black_box(&query)))));
    group.finish();
}

fn bench_knn_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_k_sweep");
    let (x, y) = synthetic(7);
    let query = x[7].clone();
    for k in [1usize, 2, 4, 8, 16] {
        let model = KnnTrainer::new(k).train(&x, &y);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(model.predict(black_box(&query))))
        });
    }
    group.finish();
}

/// The per-tree fan-out: the same 100-tree paper-default forest on a
/// 1-thread pool versus the ambient pool (byte-identical output; see
/// `tests/ml_parallel.rs` for the identity assertion).
fn bench_forest_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_train");
    let (x, y) = synthetic(7);
    let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    group.bench_function("single_thread", |b| {
        b.iter(|| one.install(|| black_box(ForestTrainer::paper_default().train(&x, &y))))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(ForestTrainer::paper_default().train(&x, &y)))
    });
    group.finish();
}

/// The evaluation grid: 3 learners × 2 grouped datasets, all folds in one
/// dispatch, versus the fold-at-a-time serial shape.
fn bench_eval_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_grid");
    let dataset = |offset: f64| {
        let (x, y) = synthetic(7);
        let mut d = Dataset::new(7);
        for (i, (row, t)) in x.into_iter().zip(y).enumerate() {
            d.push(row, t + offset, format!("g{}", i % 7));
        }
        d
    };
    let build_grid = || {
        let mut grid = EvalGrid::new();
        grid.add_trainer(
            0,
            Box::new(|_key: &wade_ml::ModelKey, x: &[Vec<f64>], y: &[f64]| {
                Arc::new(KnnTrainer::paper_default().train(x, y)) as SharedModel
            }),
        );
        grid.add_trainer(
            1,
            Box::new(|_key: &wade_ml::ModelKey, x: &[Vec<f64>], y: &[f64]| {
                Arc::new(SvrTrainer::paper_default().train(x, y)) as SharedModel
            }),
        );
        grid.add_trainer(
            2,
            Box::new(|_key: &wade_ml::ModelKey, x: &[Vec<f64>], y: &[f64]| {
                Arc::new(ForestTrainer::new(20).train(x, y)) as SharedModel
            }),
        );
        grid.add_dataset(0, dataset(0.0));
        grid.add_dataset(1, dataset(0.5));
        grid
    };
    let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    group.bench_function("dispatch_single_thread", |b| {
        b.iter(|| one.install(|| black_box(build_grid().evaluate())))
    });
    group.bench_function("dispatch_parallel", |b| b.iter(|| black_box(build_grid().evaluate())));
    group.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_predict_latency,
    bench_knn_k_sweep,
    bench_forest_thread_scaling,
    bench_eval_grid
);
criterion_main!(benches);
