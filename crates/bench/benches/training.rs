//! Learner benchmarks: training time, prediction latency (the paper's
//! "predict within 300 ms" claim, §VI.B) and the KNN k ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wade_ml::{ForestTrainer, KnnTrainer, Regressor, SvrTrainer, Trainer};

/// A campaign-shaped synthetic dataset: 140 samples × `dim` features with a
/// smooth nonlinear target (mirrors a per-rank WER dataset in log space).
fn synthetic(dim: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = 140;
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(dim);
        for j in 0..dim {
            let v = (((i * 31 + j * 17) % 97) as f64) / 97.0;
            row.push(v);
        }
        let t = -9.0 + 3.0 * row[0] + 2.0 * (row[1 % dim] * 6.0).sin();
        x.push(row);
        y.push(t);
    }
    (x, y)
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    for dim in [7usize, 252] {
        let (x, y) = synthetic(dim);
        group.bench_with_input(BenchmarkId::new("knn", dim), &dim, |b, _| {
            b.iter(|| black_box(KnnTrainer::paper_default().train(&x, &y)))
        });
        group.bench_with_input(BenchmarkId::new("svr", dim), &dim, |b, _| {
            b.iter(|| black_box(SvrTrainer::paper_default().train(&x, &y)))
        });
        group.bench_with_input(BenchmarkId::new("rdf", dim), &dim, |b, _| {
            b.iter(|| black_box(ForestTrainer::new(20).train(&x, &y)))
        });
    }
    group.finish();
}

fn bench_predict_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_latency");
    let (x, y) = synthetic(7);
    let query = x[0].clone();
    let knn = KnnTrainer::paper_default().train(&x, &y);
    let svr = SvrTrainer::paper_default().train(&x, &y);
    let rdf = ForestTrainer::paper_default().train(&x, &y);
    // The paper's pitch: a prediction replaces a 2-hour characterization
    // and completes within 300 ms. Ours must be far under that.
    group.bench_function("knn", |b| b.iter(|| black_box(knn.predict(black_box(&query)))));
    group.bench_function("svr", |b| b.iter(|| black_box(svr.predict(black_box(&query)))));
    group.bench_function("rdf", |b| b.iter(|| black_box(rdf.predict(black_box(&query)))));
    group.finish();
}

fn bench_knn_k_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_k_sweep");
    let (x, y) = synthetic(7);
    let query = x[7].clone();
    for k in [1usize, 2, 4, 8, 16] {
        let model = KnnTrainer::new(k).train(&x, &y);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(model.predict(black_box(&query))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_predict_latency, bench_knn_k_sweep);
criterion_main!(benches);
