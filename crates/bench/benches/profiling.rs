//! Profiling front-end benchmarks: the batched sink path versus the
//! per-access reference, and the cached suite-profiling cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use wade_core::{Campaign, CampaignConfig, ProfileCache, SimulatedServer};
use wade_memsys::Soc;
use wade_trace::{FanoutSink, Tracer};
use wade_workloads::{full_suite, Scale, WorkloadId};

/// The tracer + SoC pipeline every profiling run feeds.
fn fanout() -> FanoutSink<Tracer, Soc> {
    FanoutSink::new(Tracer::new(), Soc::new(SimulatedServer::profiling_soc_config()))
}

/// Per-access vs staged slice delivery into the full profiling pipeline,
/// per kernel family (`run` = one virtual call per access, `run_buffered` =
/// one per staged batch).
fn bench_batched_sinks(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_sinks");
    for id in [WorkloadId::Backprop, WorkloadId::Nw, WorkloadId::Memcached, WorkloadId::Bfs] {
        let wl = id.instantiate(1, Scale::Test);
        group.bench_function(format!("{id}/per_access"), |b| {
            b.iter(|| {
                let mut fan = fanout();
                wl.run(&mut fan, 3);
                let (tracer, soc) = fan.into_inner();
                black_box((tracer.report(), soc.report()))
            })
        });
        group.bench_function(format!("{id}/batched"), |b| {
            b.iter(|| {
                let mut fan = fanout();
                wl.run_buffered(&mut fan, 3);
                let (tracer, soc) = fan.into_inner();
                black_box((tracer.report(), soc.report()))
            })
        });
    }
    group.finish();
}

/// Suite profiling through the campaign front-end: cold (fresh cache per
/// iteration, batched + parallel) and warm (all cache hits — the cost every
/// repeated campaign or figure binary pays).
fn bench_suite_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling_suite");
    let suite = full_suite(Scale::Test);
    let campaign = |cache: Arc<ProfileCache>| {
        Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick())
            .with_profile_cache(cache)
    };
    group.bench_function("full_suite_cold_cache", |b| {
        b.iter(|| {
            black_box(
                campaign(Arc::new(ProfileCache::new())).profile_suite(&suite, 1),
            )
        })
    });
    let warm = Arc::new(ProfileCache::new());
    campaign(warm.clone()).profile_suite(&suite, 1);
    group.bench_function("full_suite_warm_cache", |b| {
        b.iter(|| black_box(campaign(warm.clone()).profile_suite(&suite, 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_batched_sinks, bench_suite_profiling);
criterion_main!(benches);
