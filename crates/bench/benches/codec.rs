//! Substrate micro-benchmarks: SECDED codec, cache hierarchy, feature
//! extraction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wade_ecc::Secded;
use wade_features::{extract, ExtractionContext};
use wade_memsys::{Soc, SocConfig};
use wade_trace::{AccessSink, FanoutSink, MemAccess, Tracer};

fn bench_ecc(c: &mut Criterion) {
    let codec = Secded::new();
    let mut group = c.benchmark_group("ecc_codec");
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(codec.encode(black_box(i)))
        })
    });
    group.bench_function("decode_clean", |b| {
        let word = codec.encode(0xDEAD_BEEF);
        b.iter(|| black_box(codec.decode(black_box(word))))
    });
    group.bench_function("decode_corrupted", |b| {
        let word = codec.encode(0xDEAD_BEEF).with_flipped(13);
        b.iter(|| black_box(codec.decode(black_box(word))))
    });
    group.finish();
}

fn bench_cache_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("soc_10k_events", |b| {
        b.iter(|| {
            let mut soc = Soc::new(SocConfig::x_gene2());
            for i in 0..10_000u64 {
                soc.on_access(MemAccess::read((i * 64) % (1 << 22), (i % 8) as u8));
                soc.on_instructions(3);
            }
            black_box(soc.report())
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    // Prepare one run's reports, then time only the extraction.
    let mut fan = FanoutSink::new(Tracer::new(), Soc::new(SocConfig::x_gene2()));
    for i in 0..100_000u64 {
        fan.on_access(MemAccess::write(
            (i * 64) % (1 << 20),
            i.wrapping_mul(0x2545_F491_4F6C_DD1D),
            (i % 8) as u8,
        ));
        fan.on_instructions(2);
    }
    let (tracer, soc) = fan.into_inner();
    let soc_report = soc.report();
    let trace_report = tracer.report();
    let ctx = ExtractionContext { deploy_footprint_words: 1 << 30, reuse_scale: 1.0 };

    c.bench_function("feature_extract_249", |b| {
        b.iter(|| black_box(extract(&soc_report, &trace_report, &ctx)))
    });
}

criterion_group!(benches, bench_ecc, bench_cache_sim, bench_feature_extraction);
criterion_main!(benches);
