//! DRAM error-simulator benchmarks, including the ARCHITECTURE.md §5 ablations:
//! disturbance on/off and weak-cell population scaling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use wade_core::{Campaign, CampaignConfig, SimulatedServer};
use wade_dram::{DramDevice, DramUsageProfile, ErrorPhysics, ErrorSim, OperatingPoint, ServerGeometry};
use wade_workloads::{paper_suite, Scale, WorkloadId};

fn bench_characterization_run(c: &mut Criterion) {
    let device = DramDevice::with_seed(42);
    let sim = ErrorSim::new(&device);
    let mut group = c.benchmark_group("dram_sim");
    for (label, temp) in [("50C", 50.0), ("60C", 60.0), ("70C", 70.0)] {
        group.bench_with_input(BenchmarkId::new("run_2h_1GiB", label), &temp, |b, &temp| {
            let profile = DramUsageProfile::uniform_synthetic(1 << 27);
            let op = OperatingPoint::relaxed(2.283, temp);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.run(&profile, op, 7200.0, seed))
            })
        });
    }
    group.finish();
}

/// Ablation: the disturbance term's cost (and its absence).
fn bench_ablation_disturbance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_disturbance");
    let profile = DramUsageProfile::uniform_synthetic(1 << 27);
    let op = OperatingPoint::relaxed(2.283, 60.0);
    for (label, physics) in [
        ("with_disturbance", ErrorPhysics::calibrated()),
        ("without_disturbance", ErrorPhysics::calibrated().without_disturbance()),
    ] {
        let device = DramDevice::with_parts(42, ServerGeometry::x_gene2(), physics);
        group.bench_function(label, |b| {
            let sim = ErrorSim::new(&device);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.run(&profile, op, 7200.0, seed))
            })
        });
    }
    group.finish();
}

/// Ablation: simulation cost vs footprint (weak-cell population scales
/// linearly; WER estimates stay stable — see tests/ablation.rs).
fn bench_ablation_scale(c: &mut Criterion) {
    let device = DramDevice::with_seed(42);
    let sim = ErrorSim::new(&device);
    let mut group = c.benchmark_group("ablation_scale");
    for shift in [24u32, 26, 28, 30] {
        let words = 1u64 << shift;
        group.bench_with_input(BenchmarkId::from_parameter(format!("2^{shift}_words")), &words, |b, &words| {
            let profile = DramUsageProfile::uniform_synthetic(words);
            let op = OperatingPoint::relaxed(2.283, 60.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(sim.run(&profile, op, 7200.0, seed))
            })
        });
    }
    group.finish();
}

fn bench_workload_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_kernels");
    for id in [WorkloadId::Backprop, WorkloadId::Nw, WorkloadId::Memcached, WorkloadId::Bfs] {
        group.bench_function(id.to_string(), |b| {
            let wl = id.instantiate(1, Scale::Test);
            b.iter(|| {
                let mut tracer = wade_trace::Tracer::new();
                wl.run(&mut tracer, 3);
                black_box(tracer.report())
            })
        });
    }
    group.finish();
}

/// The Fig. 3 data-collection grid (quick config × the paper suite at test
/// scale) on the shared rayon pool — the campaign-layer cost future PRs
/// track alongside the per-run simulator numbers.
fn bench_campaign_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_grid");
    let suite = paper_suite(Scale::Test);
    group.bench_function("quick_collect_paper_suite", |b| {
        b.iter(|| {
            let campaign =
                Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
            black_box(campaign.collect(&suite, 1))
        })
    });
    // The same grid pinned to one worker, so the jsonl history records the
    // scaling headroom, not just the wall time of whatever machine ran it.
    let single = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    group.bench_function("quick_collect_paper_suite_1thread", |b| {
        b.iter(|| {
            single.install(|| {
                let campaign =
                    Campaign::new(SimulatedServer::with_seed(5), CampaignConfig::quick());
                black_box(campaign.collect(&suite, 1))
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_characterization_run,
    bench_ablation_disturbance,
    bench_ablation_scale,
    bench_workload_kernels,
    bench_campaign_grid
);
criterion_main!(benches);
