//! Field-style evaluation of a swept fleet: sliding-window failure
//! prediction, lead-time precision/recall, mitigation-cost curves and the
//! cross-vintage transfer matrix.
//!
//! The evaluation replays the fleet's timeline the way an operator would
//! see it: at the end of every *completed* epoch a device reports the mean
//! WER over its trailing observation window; a report at or above the
//! alert threshold is a migration alert. A failure is *caught at lead `L`*
//! if an alert fired within `[T_f − L, T_f)`; an alert is *justified at
//! lead `L`* if the device failed within `(t, t + L]`. Both notions are
//! monotone non-decreasing in `L` by construction — the property
//! `tests/fleet_properties.rs` pins.
//!
//! Decision extraction is streaming and linear: devices are folded one at
//! a time through [`FleetEvalBuilder`] (so an evaluation can consume
//! [`crate::sweep::FleetSweep::sweep_stored_visit`] without materializing
//! the fleet), and the trailing observation window advances with a
//! two-pointer — O(epochs · window) per device, not O(epochs²) — while
//! summing each window ascending from zero so the scores stay
//! bit-identical to a naive rescan.

use std::hash::Hasher as _;

use crate::sweep::{DeviceHistory, FleetOutcome, FleetSweep};
use wade_core::{
    op_augmented_row, CampaignData, CampaignRow, CharacterizationOutcome, MlKind,
    MIN_CE_COUNT, TRAINER_CONFIG_VERSION,
};
use wade_dram::OperatingPoint;
use wade_features::FeatureSet;
use wade_ml::metrics::{mean_percentage_error, precision_recall};
use wade_ml::Regressor as _;
use wade_store::ArtifactStore;

/// Artifact kind of fleet-trained per-vintage models.
pub const FLEET_MODEL_KIND: &str = "fleet_model";

/// Configuration of the sliding-window evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvalConfig {
    /// Trailing observation window the WER score is averaged over (s).
    pub observation_s: f64,
    /// Alert threshold on the windowed mean WER.
    pub score_threshold: f64,
    /// Lead times the precision/recall reports are computed at (s).
    pub lead_times_s: Vec<f64>,
}

impl FleetEvalConfig {
    /// A config matched to a spec's epoch grid: observe two epochs, report
    /// at one-, two- and four-epoch lead times, alert on any observed CE
    /// (threshold 0 is exclusive — the score must be positive).
    pub fn for_spec(spec: &crate::spec::FleetSpec) -> Self {
        Self {
            observation_s: 2.0 * spec.epoch_s,
            score_threshold: f64::MIN_POSITIVE,
            lead_times_s: vec![spec.epoch_s, 2.0 * spec.epoch_s, 4.0 * spec.epoch_s],
        }
    }
}

/// One decision point: a device's windowed WER score at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionPoint {
    /// Device index.
    pub device: u32,
    /// Absolute decision time (end of the completed epoch, s).
    pub t_s: f64,
    /// Mean WER over the trailing observation window.
    pub score: f64,
}

/// Precision/recall at one lead time and threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadTimeReport {
    /// Lead time the report is computed at (s).
    pub lead_s: f64,
    /// Alert threshold in force.
    pub threshold: f64,
    /// Alerts fired (decision points at or above threshold).
    pub alerts: u64,
    /// Alerts whose device failed within the lead window after the alert.
    pub justified_alerts: u64,
    /// Failures with an alert inside `[T_f − lead, T_f)`.
    pub caught_failures: u64,
    /// Failures with no alert inside the lead window.
    pub missed_failures: u64,
    /// `justified / alerts` (1 when no alerts fired).
    pub precision: f64,
    /// `caught / failures` (1 when nothing failed).
    pub recall: f64,
}

/// One point of the mitigation-cost curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostPoint {
    /// Alert threshold of this operating point.
    pub threshold: f64,
    /// Devices migrated (any alert during their observed life).
    pub migrations: u64,
    /// Devices that crashed unmitigated.
    pub crashes: u64,
    /// Total mitigation cost at this threshold.
    pub cost: f64,
}

/// The streaming accumulator behind [`FleetEval`]: devices are pushed one
/// at a time (e.g. straight out of
/// [`crate::sweep::FleetSweep::sweep_stored_visit`]), so peak memory is
/// the decision points plus one device history — never the fleet.
#[derive(Debug, Clone)]
pub struct FleetEvalBuilder {
    epoch_s: f64,
    config: FleetEvalConfig,
    decisions: Vec<DecisionPoint>,
    failures: Vec<(u32, f64)>,
    devices: usize,
}

impl FleetEvalBuilder {
    /// An empty evaluation over an epoch grid of `epoch_s` seconds.
    pub fn new(epoch_s: f64, config: FleetEvalConfig) -> Self {
        Self { epoch_s, config, decisions: Vec::new(), failures: Vec::new(), devices: 0 }
    }

    /// Folds one device's history in: its failure (if any) and one
    /// decision point per completed epoch. Crashing epochs produce no
    /// decision (the device is gone before the boundary), so every
    /// decision predates its device's failure.
    ///
    /// The observation window is tracked with a two-pointer: `lo` — the
    /// first epoch inside the window — only ever advances, because both
    /// the decision time and the window start grow with the epoch index.
    /// The window *sum* is still recomputed ascending from zero each epoch
    /// (never subtract-on-evict), so every score performs the exact
    /// additions of a naive rescan and the decisions stay bit-identical.
    pub fn push(&mut self, device: &DeviceHistory) {
        self.devices += 1;
        if let Some(t_f) = device.failed_at_s {
            self.failures.push((device.index, t_f));
        }
        let mut lo = 0usize;
        for (e, epoch) in device.epochs.iter().enumerate() {
            let t_s = (e + 1) as f64 * self.epoch_s;
            let window_start = t_s - self.config.observation_s;
            while lo <= e && (lo + 1) as f64 * self.epoch_s <= window_start {
                lo += 1;
            }
            if epoch.crashed {
                continue;
            }
            let score = if lo > e {
                0.0
            } else {
                let mut sum = 0.0;
                for past in &device.epochs[lo..=e] {
                    sum += past.wer;
                }
                sum / (e - lo + 1) as f64
            };
            self.decisions.push(DecisionPoint { device: device.index, t_s, score });
        }
    }

    /// Finishes the fold.
    pub fn finish(self) -> FleetEval {
        FleetEval {
            config: self.config,
            decisions: self.decisions,
            failures: self.failures,
            devices: self.devices,
        }
    }
}

/// The sliding-window evaluation of one swept fleet.
#[derive(Debug, Clone)]
pub struct FleetEval {
    config: FleetEvalConfig,
    decisions: Vec<DecisionPoint>,
    failures: Vec<(u32, f64)>,
    devices: usize,
}

impl FleetEval {
    /// Replays `outcome` under `config`, collecting every decision point
    /// and failure — the materialized convenience over
    /// [`FleetEvalBuilder`].
    pub fn evaluate(outcome: &FleetOutcome, config: FleetEvalConfig) -> Self {
        let mut builder = FleetEvalBuilder::new(outcome.spec.epoch_s, config);
        for device in &outcome.devices {
            builder.push(device);
        }
        builder.finish()
    }

    /// All decision points, in device/time order.
    pub fn decisions(&self) -> &[DecisionPoint] {
        &self.decisions
    }

    /// The failures under evaluation.
    pub fn failures(&self) -> &[(u32, f64)] {
        &self.failures
    }

    /// Precision/recall at an explicit lead time and threshold.
    pub fn report_at(&self, lead_s: f64, threshold: f64) -> LeadTimeReport {
        let alerts: Vec<&DecisionPoint> =
            self.decisions.iter().filter(|d| d.score >= threshold).collect();
        let justified = alerts
            .iter()
            .filter(|a| {
                self.failures
                    .iter()
                    .any(|&(dev, t_f)| dev == a.device && t_f > a.t_s && t_f <= a.t_s + lead_s)
            })
            .count() as u64;
        let caught = self
            .failures
            .iter()
            .filter(|&&(dev, t_f)| {
                alerts.iter().any(|a| a.device == dev && a.t_s >= t_f - lead_s && a.t_s < t_f)
            })
            .count() as u64;
        let alerts = alerts.len() as u64;
        let missed = self.failures.len() as u64 - caught;
        let (precision, _) = precision_recall(justified, alerts - justified, 0);
        let (_, recall) = precision_recall(caught, 0, missed);
        LeadTimeReport {
            lead_s,
            threshold,
            alerts,
            justified_alerts: justified,
            caught_failures: caught,
            missed_failures: missed,
            precision,
            recall,
        }
    }

    /// Reports at the config's lead times and threshold.
    pub fn lead_time_reports(&self) -> Vec<LeadTimeReport> {
        self.config
            .lead_times_s
            .iter()
            .map(|&lead| self.report_at(lead, self.config.score_threshold))
            .collect()
    }

    /// The `q`-quantile of the decision scores (for threshold selection).
    pub fn score_quantile(&self, q: f64) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        let mut scores: Vec<f64> = self.decisions.iter().map(|d| d.score).collect();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        let idx = ((q.clamp(0.0, 1.0) * (scores.len() - 1) as f64).round()) as usize;
        scores[idx]
    }

    /// The mitigation-cost curve over the threshold sweep: at each
    /// candidate threshold (every distinct score, plus `+∞` for
    /// "never migrate"), a device with any alert is migrated at
    /// `migration_cost`; a failing device with no alert crashes at
    /// `crash_cost`. Migrated and crashed sets are disjoint, so the total
    /// is bounded by `devices × max(migration_cost, crash_cost)`.
    pub fn cost_curve(&self, migration_cost: f64, crash_cost: f64) -> Vec<CostPoint> {
        let mut thresholds: Vec<f64> = self.decisions.iter().map(|d| d.score).collect();
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
        thresholds.dedup();
        thresholds.push(f64::INFINITY);
        thresholds
            .into_iter()
            .map(|threshold| {
                let migrated: Vec<u32> = {
                    let mut m: Vec<u32> = self
                        .decisions
                        .iter()
                        .filter(|d| d.score >= threshold)
                        .map(|d| d.device)
                        .collect();
                    m.sort_unstable();
                    m.dedup();
                    m
                };
                let crashes = self
                    .failures
                    .iter()
                    .filter(|&&(dev, _)| migrated.binary_search(&dev).is_err())
                    .count() as u64;
                let migrations = migrated.len() as u64;
                CostPoint {
                    threshold,
                    migrations,
                    crashes,
                    cost: migrations as f64 * migration_cost + crashes as f64 * crash_cost,
                }
            })
            .collect()
    }

    /// Number of devices under evaluation.
    pub fn devices(&self) -> usize {
        self.devices
    }
}

/// One cell of the cross-vintage transfer matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferCell {
    /// Vintage the model was trained on.
    pub train_vintage: u32,
    /// Vintage the model was tested on.
    pub test_vintage: u32,
    /// Mean percentage error of the WER predictions (NaN when either side
    /// has no trainable rows).
    pub mpe: f64,
    /// Training rows available.
    pub train_rows: usize,
    /// Test rows evaluated.
    pub test_rows: usize,
}

/// Train-on-A / test-on-B WER error for every ordered vintage pair.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// Number of vintages (the matrix is `vintages × vintages`).
    pub vintages: u32,
    /// Cells in row-major `(train, test)` order.
    pub cells: Vec<TransferCell>,
}

impl TransferMatrix {
    /// The cell for training vintage `a`, test vintage `b`.
    pub fn cell(&self, a: u32, b: u32) -> &TransferCell {
        &self.cells[(a * self.vintages + b) as usize]
    }

    /// Mean in-vintage (diagonal) error, skipping NaN cells.
    pub fn mean_diagonal(&self) -> f64 {
        mean_of(self.cells.iter().filter(|c| c.train_vintage == c.test_vintage))
    }

    /// Mean cross-vintage (off-diagonal) error, skipping NaN cells.
    pub fn mean_off_diagonal(&self) -> f64 {
        mean_of(self.cells.iter().filter(|c| c.train_vintage != c.test_vintage))
    }
}

fn mean_of<'a>(cells: impl Iterator<Item = &'a TransferCell>) -> f64 {
    let finite: Vec<f64> = cells.map(|c| c.mpe).filter(|m| m.is_finite()).collect();
    if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    }
}

/// The trainable rows of one vintage: op-augmented features plus the
/// utilization factor, targets `log₁₀(WER)`. Crashed epochs and epochs
/// below the `MIN_CE_COUNT` telemetry floor carry no trainable WER signal
/// and are skipped, mirroring the campaign dataset builders.
fn vintage_rows(
    sweep: &FleetSweep,
    outcome: &FleetOutcome,
    set: FeatureSet,
    vintage: u32,
) -> (Vec<Vec<f64>>, Vec<f64>) {
    let profiles = sweep.profiles();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for device in outcome.devices.iter().filter(|d| d.vintage == vintage) {
        for epoch in &device.epochs {
            if epoch.crashed || (epoch.ce_count as f64) < MIN_CE_COUNT {
                continue;
            }
            let profiled = profiles
                .iter()
                .find(|p| p.name == epoch.workload)
                .expect("epoch workload has a profile");
            let op = OperatingPoint::relaxed(outcome.spec.trefp_s, epoch.temp_c);
            let mut row = op_augmented_row(&profiled.features, set, op);
            row.push(epoch.utilization);
            x.push(row);
            y.push(epoch.wer.log10());
        }
    }
    (x, y)
}

/// Order-stable digest of a training set, for the model store key.
fn dataset_fingerprint(x: &[Vec<f64>], y: &[f64]) -> u64 {
    let mut hasher = rustc_hash::FxHasher::default();
    for row in x {
        for v in row {
            hasher.write_u64(v.to_bits());
        }
    }
    for v in y {
        hasher.write_u64(v.to_bits());
    }
    hasher.finish()
}

/// Trains one model per vintage (store-backed when `store` is given, under
/// kind [`FLEET_MODEL_KIND`]) and scores every ordered train/test pair by
/// the mean percentage error of the de-logged WER predictions.
pub fn transfer_matrix(
    sweep: &FleetSweep,
    outcome: &FleetOutcome,
    kind: MlKind,
    set: FeatureSet,
    store: Option<&ArtifactStore>,
) -> TransferMatrix {
    let vintages = outcome.spec.vintages;
    let per_vintage: Vec<(Vec<Vec<f64>>, Vec<f64>)> =
        (0..vintages).map(|v| vintage_rows(sweep, outcome, set, v)).collect();
    let models: Vec<Option<wade_core::AnyModel>> = per_vintage
        .iter()
        .enumerate()
        .map(|(v, (x, y))| {
            if x.is_empty() {
                return None;
            }
            let train = || kind.train_any(x, y);
            Some(match store {
                Some(s) => {
                    let key = format!(
                        "fleet_model|kind={}|cfg=v{TRAINER_CONFIG_VERSION}|set={set:?}|\
                         vintage={v}|rows={}|data={:016x}",
                        kind.label(),
                        x.len(),
                        dataset_fingerprint(x, y),
                    );
                    s.get_or_put(FLEET_MODEL_KIND, &key, train)
                }
                None => train(),
            })
        })
        .collect();
    let mut cells = Vec::with_capacity((vintages * vintages) as usize);
    for a in 0..vintages {
        for b in 0..vintages {
            let (test_x, test_y) = &per_vintage[b as usize];
            let mpe = match &models[a as usize] {
                Some(model) if !test_x.is_empty() => {
                    let pred: Vec<f64> =
                        test_x.iter().map(|row| 10f64.powf(model.predict(row))).collect();
                    let actual: Vec<f64> = test_y.iter().map(|t| 10f64.powf(*t)).collect();
                    mean_percentage_error(&pred, &actual)
                }
                _ => f64::NAN,
            };
            cells.push(TransferCell {
                train_vintage: a,
                test_vintage: b,
                mpe,
                train_rows: per_vintage[a as usize].0.len(),
                test_rows: test_x.len(),
            });
        }
    }
    TransferMatrix { vintages, cells }
}

/// Repackages a swept fleet as [`CampaignData`] — one row per simulated
/// epoch, carrying the profiled features, the epoch's operating point and
/// its characterization outcome as both the WER run and a single PUE
/// repeat. The existing store-backed trainers and the serving registry
/// consume this with no fleet-specific code.
pub fn fleet_campaign_data(sweep: &FleetSweep, outcome: &FleetOutcome) -> CampaignData {
    let profiles = sweep.profiles();
    let mut rows = Vec::new();
    let mut simulated_seconds = 0.0;
    for device in &outcome.devices {
        for epoch in &device.epochs {
            let profiled = profiles
                .iter()
                .find(|p| p.name == epoch.workload)
                .expect("epoch workload has a profile");
            let characterization = CharacterizationOutcome {
                wer: epoch.wer,
                wer_per_rank: epoch.wer_per_rank,
                crashed: epoch.crashed,
                ue_rank: epoch.ue_rank,
            };
            simulated_seconds += epoch.ue_t_s.unwrap_or(outcome.spec.epoch_s);
            rows.push(CampaignRow {
                workload: epoch.workload.clone(),
                op: OperatingPoint::relaxed(outcome.spec.trefp_s, epoch.temp_c),
                features: profiled.features.clone(),
                wer_run: Some(characterization.clone()),
                pue_runs: vec![characterization],
            });
        }
    }
    CampaignData { rows, simulated_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FleetSpec;
    use crate::sweep::{DeviceHistory, EpochOutcome};

    /// A hand-built two-device fleet: device 0 fails in epoch 2, device 1
    /// survives. Epoch length 100 s.
    fn toy_outcome() -> FleetOutcome {
        let spec = {
            let mut s = FleetSpec::test_default();
            s.devices = 2;
            s.shards = 1;
            s.epochs = 3;
            s.epoch_s = 100.0;
            s
        };
        let epoch = |e: u32, wer: f64, crashed: bool| EpochOutcome {
            epoch: e,
            workload: "toy".into(),
            temp_c: 60.0,
            utilization: 1.0,
            ce_count: (wer * 1e6) as u64,
            wer,
            wer_per_rank: [wer / 8.0; 8],
            crashed,
            ue_t_s: crashed.then_some(50.0),
            ue_rank: crashed.then_some(0),
        };
        let failing = DeviceHistory {
            index: 0,
            seed: 1,
            vintage: 0,
            fingerprint: 1,
            epochs: vec![epoch(0, 1e-6, false), epoch(1, 5e-5, false), epoch(2, 1e-4, true)],
            failed_at_s: Some(250.0),
        };
        let healthy = DeviceHistory {
            index: 1,
            seed: 2,
            vintage: 1,
            fingerprint: 2,
            epochs: vec![epoch(0, 0.0, false), epoch(1, 0.0, false), epoch(2, 0.0, false)],
            failed_at_s: None,
        };
        FleetOutcome { spec, seed: 9, devices: vec![failing, healthy] }
    }

    #[test]
    fn decisions_exclude_crashing_epochs() {
        let eval = FleetEval::evaluate(
            &toy_outcome(),
            FleetEvalConfig { observation_s: 100.0, score_threshold: 1e-9, lead_times_s: vec![] },
        );
        // Device 0: epochs 0 and 1 decide; epoch 2 crashed. Device 1: 3.
        assert_eq!(eval.decisions().len(), 5);
        assert!(eval.decisions().iter().all(|d| d.t_s <= 300.0));
    }

    #[test]
    fn leads_catch_the_failure_exactly_when_long_enough() {
        let eval = FleetEval::evaluate(
            &toy_outcome(),
            FleetEvalConfig { observation_s: 100.0, score_threshold: 1e-9, lead_times_s: vec![] },
        );
        // Failure at 250 s; alerts from device 0 at 100 s and 200 s.
        let short = eval.report_at(40.0, 1e-9); // window [210, 250): no alert
        assert_eq!(short.caught_failures, 0);
        assert_eq!(short.recall, 0.0);
        let one = eval.report_at(100.0, 1e-9); // window [150, 250): catches 200 s
        assert_eq!(one.caught_failures, 1);
        assert_eq!(one.recall, 1.0);
        // The healthy device's zero-score epochs never alert at θ > 0.
        assert_eq!(one.alerts, 2);
        assert_eq!(one.justified_alerts, 1); // the 200 s alert; 100 s is > lead away
        assert!((one.precision - 0.5).abs() < 1e-12);
    }

    /// The two-pointer window fold must reproduce a naive O(epochs²)
    /// rescan bit for bit, including partial windows at the start and the
    /// degenerate zero-width window.
    #[test]
    fn two_pointer_scores_match_a_naive_rescan() {
        let outcome = toy_outcome();
        for observation_s in [0.0, 50.0, 100.0, 150.0, 250.0, 1000.0] {
            let config = FleetEvalConfig {
                observation_s,
                score_threshold: 1e-9,
                lead_times_s: vec![],
            };
            let eval = FleetEval::evaluate(&outcome, config.clone());
            let mut naive = Vec::new();
            for device in &outcome.devices {
                for (e, epoch) in device.epochs.iter().enumerate() {
                    if epoch.crashed {
                        continue;
                    }
                    let t_s = (e + 1) as f64 * outcome.spec.epoch_s;
                    let window_start = t_s - config.observation_s;
                    let mut sum = 0.0;
                    let mut n = 0u32;
                    for (e2, past) in device.epochs.iter().take(e + 1).enumerate() {
                        if (e2 + 1) as f64 * outcome.spec.epoch_s > window_start {
                            sum += past.wer;
                            n += 1;
                        }
                    }
                    let score = if n == 0 { 0.0 } else { sum / n as f64 };
                    naive.push(DecisionPoint { device: device.index, t_s, score });
                }
            }
            assert_eq!(eval.decisions(), naive.as_slice(), "obs={observation_s}");
        }
    }

    #[test]
    fn cost_curve_endpoints_and_disjointness() {
        let eval = FleetEval::evaluate(
            &toy_outcome(),
            FleetEvalConfig { observation_s: 100.0, score_threshold: 1e-9, lead_times_s: vec![] },
        );
        let curve = eval.cost_curve(1.0, 10.0);
        let last = curve.last().unwrap();
        assert_eq!(last.threshold, f64::INFINITY);
        assert_eq!((last.migrations, last.crashes), (0, 1));
        assert_eq!(last.cost, 10.0);
        for p in &curve {
            assert!(p.migrations + p.crashes <= 2);
            assert!(p.cost <= 2.0 * 10.0);
        }
        // At a tiny positive threshold the failing device migrates (cost 1)
        // and the healthy zero-score device does not.
        let eager = curve.iter().find(|p| p.threshold > 0.0).unwrap();
        assert_eq!((eager.migrations, eager.crashes), (1, 0));
    }
}
