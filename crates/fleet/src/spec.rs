//! The fleet specification: how N heterogeneous devices are manufactured
//! from one seed.
//!
//! Everything a device is — its geometry variant, its vintage-skewed
//! physics, its thermal/utilization trace — derives from
//! `mix64(fleet_seed, device_index)` through salted domain streams, the
//! same keyed-not-streamed discipline as the simulator's seeding contract:
//! device `k` is a pure function of `(spec, fleet_seed, k)`, independent of
//! every other device, of shard boundaries and of thread count — and its
//! epoch `e` re-keys its own run randomness, independent of the spec's
//! total epoch count. That is what makes per-`(shard, epoch)` slice
//! artifacts replayable at every epoch boundary and lets a single device
//! be re-manufactured in isolation (asserted by `tests/fleet_scale.rs`
//! and `tests/fleet_incremental.rs`).

use wade_dram::{DramDevice, ErrorPhysics, ServerGeometry};
use wade_fault::mix64;
use wade_workloads::Scale;

/// Artifact kind of persisted per-`(shard, epoch)` fleet slices in a
/// [`wade_store::ArtifactStore`].
pub const FLEET_SLICE_KIND: &str = "fleet_slice";

/// Version of the fleet keying/stream contract, embedded in every store
/// key via [`FleetSpec::describe_prefix`]. v2 re-domained the seasonal
/// thermal term from "one period per spec lifetime" to the fixed
/// [`SEASON_PERIOD_EPOCHS`] period so every per-device stream is a pure
/// function of `(spec prefix, fleet_seed, index, epoch)` — the property
/// that makes epoch-slice boundaries replay points. Bump again whenever a
/// stream must be re-domained; old artifacts then read as misses, never
/// as stale hits.
pub const FLEET_KEY_VERSION: u32 = 2;

/// Fixed period of the seasonal thermal sine, in epochs. Deliberately
/// **not** derived from [`FleetSpec::epochs`]: extending a spec's epoch
/// count must not re-plan the epochs already simulated, or per-epoch
/// slices could never be reused across extensions.
pub const SEASON_PERIOD_EPOCHS: f64 = 8.0;

/// Domain salts for the per-device derived streams. Part of the fleet
/// determinism contract: changing any of them re-manufactures the fleet,
/// so they are folded into [`FleetSpec::fingerprint`].
const PHYSICS_SALT: u64 = 0xF1EE_7000_0000_0001;
const PLAN_SALT: u64 = 0xF1EE_7000_0000_0002;
const PHASE_SALT: u64 = 0xF1EE_7000_0000_0003;
const DEVICE_SALT: u64 = 0xF1EE_7000_0000_0004;
pub(crate) const RUN_SALT: u64 = 0xF1EE_7000_0000_0005;
pub(crate) const PROFILE_SALT: u64 = 0xF1EE_7000_0000_0006;

/// Uniform `[0, 1)` from 64 mixed bits (SplitMix64 output convention).
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// One epoch of a device's field schedule: which workload runs, at what
/// DIMM temperature, at what utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochPlan {
    /// Index into the sweep's profiled workload list.
    pub workload: usize,
    /// DIMM temperature during the epoch (°C).
    pub temp_c: f64,
    /// Utilization factor in `(0, 1]`, scaling the profile's DRAM rates.
    pub utilization: f64,
}

/// Specification of a simulated device fleet.
///
/// The spec is embedded **verbatim** (via [`FleetSpec::describe`]) in every
/// shard store key, so two specs can never alias an artifact; the compact
/// [`FleetSpec::fingerprint`] exists for display and log lines only.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetSpec {
    /// Number of devices manufactured.
    pub devices: u32,
    /// Number of store-addressable shards the fleet is split into.
    pub shards: u32,
    /// Number of device generations (vintages) in the population.
    pub vintages: u32,
    /// Field epochs simulated per device (until the device fails).
    pub epochs: u32,
    /// Simulated duration of one epoch (s).
    pub epoch_s: f64,
    /// Relaxed refresh period every device runs at (s).
    pub trefp_s: f64,
    /// Fleet-wide mean DIMM temperature (°C).
    pub base_temp_c: f64,
    /// Seasonal swing amplitude of each device's thermal trace (°C).
    pub temp_swing_c: f64,
    /// Lower bound of the per-epoch utilization draw, in `(0, 1]`.
    pub utilization_floor: f64,
    /// Number of workloads taken from the front of the suite for the
    /// per-device schedules (bounds profiling cost in CI-sized fleets).
    pub max_workloads: u32,
    /// Problem-size preset of the workload suite the traces are built from.
    pub scale: Scale,
}

impl FleetSpec {
    /// A CI-sized fleet: hundreds of devices across 3 vintages, small
    /// enough to sweep cold in seconds at [`Scale::Test`].
    pub fn test_default() -> Self {
        Self {
            devices: 192,
            shards: 8,
            vintages: 3,
            epochs: 6,
            epoch_s: 900.0,
            trefp_s: 2.283,
            base_temp_c: 58.0,
            temp_swing_c: 12.0,
            utilization_floor: 0.35,
            max_workloads: 8,
            scale: Scale::Test,
        }
    }

    /// Validates the spec against the simulator's modelled ranges.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("fleet needs at least one device".into());
        }
        if self.shards == 0 || self.shards > self.devices {
            return Err(format!("shards {} outside 1..=devices", self.shards));
        }
        if self.vintages == 0 {
            return Err("fleet needs at least one vintage".into());
        }
        if self.epochs == 0 || self.epoch_s.is_nan() || self.epoch_s <= 0.0 {
            return Err("epochs and epoch_s must be positive".into());
        }
        if !(self.trefp_s > 0.0 && self.trefp_s <= 10.0) {
            return Err(format!("refresh period {} s out of modelled range", self.trefp_s));
        }
        // The thermal trace adds the swing, ±5 °C of per-device base skew
        // and ±1.5 °C of epoch jitter on top of the base; every draw must
        // stay inside the operating-point model's 0–110 °C.
        let excursion = self.temp_swing_c.abs() + 6.5;
        if !(self.base_temp_c - excursion >= 0.0 && self.base_temp_c + excursion <= 110.0) {
            return Err(format!(
                "thermal trace {} ± {excursion} °C leaves the modelled 0–110 °C range",
                self.base_temp_c
            ));
        }
        if !(self.utilization_floor > 0.0 && self.utilization_floor <= 1.0) {
            return Err(format!("utilization floor {} outside (0, 1]", self.utilization_floor));
        }
        if self.max_workloads == 0 {
            return Err("fleet needs at least one workload".into());
        }
        Ok(())
    }

    /// The **epoch-invariant** verbatim key component: the key version,
    /// every field except `epochs` (in declaration order), and the
    /// device-stream salts (the fleet analogue of the simulator's salt
    /// fingerprint — changing a stream re-manufactures the fleet, so it
    /// must re-key every slice). Two specs differing only in `epochs`
    /// share this prefix by construction — that sharing is what lets an
    /// epoch-count extension load its prefix slices warm.
    pub fn describe_prefix(&self) -> String {
        format!(
            "fleetv={FLEET_KEY_VERSION};devices={};shards={};vintages={};epoch_s={:016x};\
             trefp={:016x};base_c={:016x};swing_c={:016x};util_floor={:016x};workloads={};\
             scale={:?};salts={:016x}",
            self.devices,
            self.shards,
            self.vintages,
            self.epoch_s.to_bits(),
            self.trefp_s.to_bits(),
            self.base_temp_c.to_bits(),
            self.temp_swing_c.to_bits(),
            self.utilization_floor.to_bits(),
            self.max_workloads,
            self.scale,
            PHYSICS_SALT ^ PLAN_SALT.rotate_left(13) ^ PHASE_SALT.rotate_left(29)
                ^ DEVICE_SALT.rotate_left(43) ^ RUN_SALT.rotate_left(53),
        )
    }

    /// Verbatim key component: [`FleetSpec::describe_prefix`] plus the
    /// epoch count — the full spec, for display and the spec fingerprint.
    pub fn describe(&self) -> String {
        format!("{};epochs={}", self.describe_prefix(), self.epochs)
    }

    /// Order-stable 64-bit digest of [`FleetSpec::describe`], for display
    /// and log lines (store keys embed the description verbatim).
    pub fn fingerprint(&self) -> u64 {
        wade_store::fingerprint64(&self.describe())
    }

    /// Manufacturing seed of device `index` under `fleet_seed`.
    pub fn device_seed(&self, fleet_seed: u64, index: u32) -> u64 {
        mix64(fleet_seed ^ DEVICE_SALT, index as u64)
    }

    /// The generation device `index` belongs to. Vintages stripe across
    /// the index space so every shard holds a balanced mix.
    pub fn vintage_of(&self, index: u32) -> u32 {
        index % self.vintages
    }

    /// Geometry variant of a vintage. All variants keep the simulator's
    /// fixed 8-rank address space (`RANK_COUNT`) and vary the DIMM
    /// arrangement, capacity and row size — the axes field populations
    /// actually differ on.
    pub fn geometry_for(&self, vintage: u32) -> ServerGeometry {
        match vintage % 3 {
            0 => ServerGeometry::x_gene2(),
            1 => ServerGeometry {
                dimms: 2,
                ranks_per_dimm: 4,
                data_chips_per_dimm: 32,
                ecc_chips_per_dimm: 4,
                dimm_bytes: 16 << 30,
                row_bytes: 8 << 10,
            },
            _ => ServerGeometry {
                dimms: 8,
                ranks_per_dimm: 1,
                data_chips_per_dimm: 8,
                ecc_chips_per_dimm: 1,
                dimm_bytes: 4 << 30,
                row_bytes: 16 << 10,
            },
        }
    }

    /// Vintage-skewed, per-device-jittered physics. Newer generations
    /// (higher vintage index modulo 3) model denser process nodes: more
    /// weak cells, steeper temperature sensitivity and a larger
    /// uncorrectable-burst coefficient — the generation gap the
    /// cross-vintage transfer matrix exists to expose. On top of the
    /// generation skew each device draws ±20 % manufacturing jitter from
    /// its own seed stream.
    pub fn physics_for(&self, vintage: u32, device_seed: u64) -> ErrorPhysics {
        let mut physics = ErrorPhysics::calibrated();
        let generation = (vintage % 3) as usize;
        let gen_lambda = [1.0, 1.9, 3.4][generation];
        let gen_beta = [0.33, 0.31, 0.35][generation];
        let gen_burst = [1.0, 1.7, 2.8][generation];
        let jitter = |salt: u64| 0.8 + 0.4 * unit(mix64(device_seed, PHYSICS_SALT ^ salt));
        physics.lambda0_per_bit *= gen_lambda * jitter(1);
        physics.beta_per_c = gen_beta;
        physics.ue_burst_coeff *= gen_burst * jitter(2);
        physics
    }

    /// Manufactures device `index`: derived seed, vintage geometry,
    /// vintage-skewed jittered physics.
    pub fn manufacture(&self, fleet_seed: u64, index: u32) -> DramDevice {
        let seed = self.device_seed(fleet_seed, index);
        let vintage = self.vintage_of(index);
        DramDevice::with_parts(seed, self.geometry_for(vintage), self.physics_for(vintage, seed))
    }

    /// The field schedule of device `index` at `epoch`: workload pick,
    /// thermal-trace temperature (per-device base skew + seasonal sine +
    /// epoch jitter) and utilization draw, all from salted device streams.
    /// `workload_count` is the length of the profiled workload list the
    /// pick indexes into.
    ///
    /// The plan is a pure function of `(describe_prefix(), fleet_seed,
    /// index, epoch)` — nothing here may read [`FleetSpec::epochs`], or
    /// per-epoch slice artifacts would silently stop being reusable across
    /// epoch-count extensions (the seasonal sine therefore runs on the
    /// fixed [`SEASON_PERIOD_EPOCHS`] period, not the spec lifetime).
    pub fn epoch_plan(
        &self,
        fleet_seed: u64,
        index: u32,
        epoch: u32,
        workload_count: usize,
    ) -> EpochPlan {
        let seed = self.device_seed(fleet_seed, index);
        let draw = |salt: u64| unit(mix64(seed ^ PLAN_SALT, (epoch as u64) << 3 | salt));
        let base_skew = 10.0 * (unit(mix64(seed, PHASE_SALT ^ 1)) - 0.5);
        let phase = std::f64::consts::TAU * unit(mix64(seed, PHASE_SALT ^ 2));
        let season = std::f64::consts::TAU * epoch as f64 / SEASON_PERIOD_EPOCHS;
        let temp_c = (self.base_temp_c
            + base_skew / 2.0
            + self.temp_swing_c * (season + phase).sin()
            + 3.0 * (draw(1) - 0.5))
            .clamp(1.0, 109.0);
        let utilization =
            self.utilization_floor + (1.0 - self.utilization_floor) * draw(2);
        let workload = (draw(0) * workload_count as f64) as usize % workload_count.max(1);
        EpochPlan { workload, temp_c, utilization }
    }

    /// Device-index range of shard `shard` (contiguous blocks; the last
    /// shard absorbs the remainder).
    pub fn shard_range(&self, shard: u32) -> std::ops::Range<u32> {
        let per = self.devices.div_ceil(self.shards);
        let start = (shard * per).min(self.devices);
        let end = ((shard + 1) * per).min(self.devices);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_default_validates() {
        assert!(FleetSpec::test_default().validate().is_ok());
    }

    #[test]
    fn shard_ranges_cover_every_device_exactly_once() {
        let mut spec = FleetSpec::test_default();
        spec.devices = 101;
        spec.shards = 7;
        let mut covered = Vec::new();
        for s in 0..spec.shards {
            covered.extend(spec.shard_range(s));
        }
        assert_eq!(covered, (0..101).collect::<Vec<_>>());
    }

    #[test]
    fn devices_are_heterogeneous_and_deterministic() {
        let spec = FleetSpec::test_default();
        let a = spec.manufacture(7, 3);
        let b = spec.manufacture(7, 3);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same device twice");
        let c = spec.manufacture(7, 4);
        assert_ne!(a.fingerprint(), c.fingerprint(), "distinct devices");
        // Distinct vintages get distinct geometries, same 8-rank space.
        let g0 = spec.geometry_for(0);
        let g1 = spec.geometry_for(1);
        assert_ne!(g0, g1);
        assert_eq!(g0.total_ranks(), g1.total_ranks());
    }

    #[test]
    fn epoch_plans_stay_in_modelled_ranges() {
        let spec = FleetSpec::test_default();
        for index in 0..64 {
            for epoch in 0..spec.epochs {
                let plan = spec.epoch_plan(11, index, epoch, 8);
                assert!(plan.workload < 8);
                assert!((1.0..=109.0).contains(&plan.temp_c), "{}", plan.temp_c);
                assert!(plan.utilization > 0.0 && plan.utilization <= 1.0);
            }
        }
    }

    #[test]
    fn describe_distinguishes_specs() {
        let a = FleetSpec::test_default();
        let mut b = a;
        b.devices += 1;
        assert_ne!(a.describe(), b.describe());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn epoch_extension_preserves_the_prefix_and_every_planned_epoch() {
        // The slice-reuse contract: specs differing only in epoch count
        // share the key prefix, and every epoch inside the shorter span is
        // planned identically — otherwise slice boundaries would not be
        // replay points and extensions could never load the prefix warm.
        let a = FleetSpec::test_default();
        let mut b = a;
        b.epochs += 4;
        assert_eq!(a.describe_prefix(), b.describe_prefix());
        assert_ne!(a.describe(), b.describe(), "the full spec still keys the epoch count");
        for index in 0..16 {
            for epoch in 0..a.epochs {
                assert_eq!(
                    a.epoch_plan(7, index, epoch, 8),
                    b.epoch_plan(7, index, epoch, 8),
                    "device {index} epoch {epoch} re-planned under extension"
                );
            }
        }
    }
}
