//! The epoch-sliced fleet sweep: simulate every device's field schedule,
//! persist each `(shard, epoch)` slice as a store artifact, assemble
//! shards by folding slices in epoch order.
//!
//! # Slicing / keying / merge contract (normative)
//!
//! - Devices are assigned to shards in **contiguous index blocks**
//!   ([`FleetSpec::shard_range`]); the merged fleet is the concatenation of
//!   shards in shard order, so the merge is order-stable by construction
//!   and the swept fleet is byte-identical at any thread count.
//! - A device's epoch is a pure function of `(spec prefix, fleet_seed,
//!   index, epoch)` — never of its shard, of neighbouring devices, or of
//!   the spec's *total* epoch count ([`FleetSpec::epoch_plan`] is
//!   epoch-invariant by contract; `fleetv` in the key prefix versions that
//!   contract). Every slice boundary is therefore a **replay point**: any
//!   `(shard, epoch)` slice can be recomputed in isolation, and a single
//!   device can be replayed end to end ([`FleetSweep::device_history`]).
//! - The unit of persistence is the **epoch slice**: kind
//!   [`FLEET_SLICE_KIND`], key `fleet|seed=…|det=…|soc=…|spec=<epoch-
//!   invariant prefix>|shard=s|epoch=e` ([`FleetSweep::slice_key`]). A
//!   slice holds one [`EpochOutcome`] per device **alive entering** that
//!   epoch (crashed devices leave the population, so later slices shrink).
//!   Because the key omits `epochs`, extending a spec E→E′ finds slices
//!   `0..E` warm — zero simulations, zero profiling, counter-asserted —
//!   and simulates only the `E..E′` delta. Any re-baselining event —
//!   simulator (`det`), profiler (`soc`), stream contract (`fleetv`) or
//!   spec prefix — turns warm slices into misses, never stale hits.
//! - Shard assembly is a **bounded-memory fold**:
//!   [`FleetSweep::sweep_stored_visit`] walks shards sequentially and, per
//!   shard, slices in epoch order, carrying only the shard's accumulating
//!   histories and alive set; peak memory is O(shard), not O(fleet). A
//!   missing slice (cold, evicted, or failed under a degraded store)
//!   recomputes exactly the alive devices of that one `(shard, epoch)`
//!   cell and republishes — the fold is byte-identical either way.
//! - A warm [`FleetSweep::sweep_stored`] performs **zero** simulations and
//!   zero workload profiling ([`FleetSweep::simulations`] /
//!   [`FleetSweep::profilings`]): the workload suite is profiled lazily,
//!   only once some slice actually misses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::spec::{FleetSpec, FLEET_SLICE_KIND, PROFILE_SALT, RUN_SALT};
use serde::{Deserialize, Serialize};
use wade_core::{pool, ProfiledWorkload, SimulatedServer};
use wade_dram::{DramDevice, DramUsageProfile, ErrorSim, OperatingPoint, RANK_COUNT};
use wade_fault::mix64;
use wade_store::ArtifactStore;
use wade_workloads::full_suite;

/// One simulated field epoch of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Epoch index within the device's schedule.
    pub epoch: u32,
    /// Workload that ran during the epoch.
    pub workload: String,
    /// DIMM temperature during the epoch (°C).
    pub temp_c: f64,
    /// Utilization factor applied to the workload's DRAM rates.
    pub utilization: f64,
    /// Unique corrected-error words observed.
    pub ce_count: u64,
    /// Word error rate of the epoch run (eq. 2).
    pub wer: f64,
    /// Per-rank WER split.
    pub wer_per_rank: [f64; RANK_COUNT],
    /// Whether the epoch ended in an uncorrectable error (device failure).
    pub crashed: bool,
    /// Seconds into the epoch at which the UE fired, if it did.
    pub ue_t_s: Option<f64>,
    /// Rank blamed for the UE, if one fired.
    pub ue_rank: Option<usize>,
}

/// The full simulated field history of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceHistory {
    /// Fleet-wide device index.
    pub index: u32,
    /// Derived manufacturing seed.
    pub seed: u64,
    /// Generation the device belongs to.
    pub vintage: u32,
    /// The device's manufacturing fingerprint (seed + geometry + physics
    /// + simulator determinism contract).
    pub fingerprint: u64,
    /// Epoch outcomes, ending early at the failing epoch.
    pub epochs: Vec<EpochOutcome>,
    /// Absolute failure time from field start (s), if the device failed.
    pub failed_at_s: Option<f64>,
}

/// One device's outcome within a persisted epoch slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceRow {
    /// Fleet-wide device index.
    pub index: u32,
    /// The device's outcome for the slice's epoch.
    pub outcome: EpochOutcome,
}

/// One persisted `(shard, epoch)` slice: the epoch outcomes of every
/// device of the shard that was still alive entering the epoch, in fleet
/// index order. The unit of store persistence (kind [`FLEET_SLICE_KIND`]);
/// see the module docs for the keying contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSlice {
    /// Shard index.
    pub shard: u32,
    /// Epoch index.
    pub epoch: u32,
    /// Alive devices' outcomes, in fleet index order.
    pub rows: Vec<SliceRow>,
}

/// One assembled shard: a contiguous block of device histories (an
/// in-memory fold of its epoch slices; shards themselves are no longer
/// persisted — the slice is the artifact).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetShard {
    /// Shard index.
    pub shard: u32,
    /// Histories of the shard's devices, in fleet index order.
    pub devices: Vec<DeviceHistory>,
}

/// The merged result of a fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The spec the fleet was manufactured from.
    pub spec: FleetSpec,
    /// The fleet seed.
    pub seed: u64,
    /// Every device's history, in index order.
    pub devices: Vec<DeviceHistory>,
}

impl FleetOutcome {
    /// `(device index, absolute failure time)` of every failed device.
    pub fn failures(&self) -> Vec<(u32, f64)> {
        self.devices.iter().filter_map(|d| d.failed_at_s.map(|t| (d.index, t))).collect()
    }

    /// Devices that survived the whole observation span.
    pub fn survivors(&self) -> usize {
        self.devices.iter().filter(|d| d.failed_at_s.is_none()).count()
    }

    /// Canonical JSON of the device histories — the byte-identity currency
    /// of the fleet test pyramid (the spec itself is keyed, not stored).
    ///
    /// # Panics
    /// Panics if serialization fails (it cannot for these types).
    pub fn devices_json(&self) -> String {
        serde_json::to_string(&self.devices).expect("device histories serialize")
    }
}

/// A reusable sweep engine: owns the profiling server, the lazily
/// profiled workload suite and the simulation/profiling counters.
///
/// The counters are how tests *counter-assert* the warm path: a warm
/// [`FleetSweep::sweep_stored`] must leave both [`FleetSweep::simulations`]
/// and [`FleetSweep::profilings`] untouched — and an epoch-count extension
/// must leave exactly `simulations == alive device-epochs of the delta`
/// (zero prefix simulations).
pub struct FleetSweep {
    spec: FleetSpec,
    seed: u64,
    server: SimulatedServer,
    profiles: OnceLock<Vec<ProfiledWorkload>>,
    simulations: AtomicU64,
    profilings: AtomicU64,
}

impl FleetSweep {
    /// Builds a sweep engine for `spec` under `seed`.
    ///
    /// # Panics
    /// Panics if the spec fails [`FleetSpec::validate`].
    pub fn new(spec: FleetSpec, seed: u64) -> Self {
        spec.validate().expect("invalid fleet spec");
        Self {
            spec,
            seed,
            server: SimulatedServer::with_seed(seed),
            profiles: OnceLock::new(),
            simulations: AtomicU64::new(0),
            profilings: AtomicU64::new(0),
        }
    }

    /// The spec in force.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The fleet seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of `ErrorSim` runs performed so far by this engine. Zero
    /// after a fully warm [`FleetSweep::sweep_stored`]; exactly the
    /// delta's alive device-epochs after a prefix-warm extension.
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Number of workload-suite profiling passes performed (0 or 1; the
    /// suite is profiled at most once per engine). Zero after a fully warm
    /// [`FleetSweep::sweep_stored`].
    pub fn profilings(&self) -> u64 {
        self.profilings.load(Ordering::Relaxed)
    }

    /// The profiled workload suite the schedules draw from, profiling it
    /// on first use. Profiling happens at most once per engine and not at
    /// all on a fully warm stored sweep.
    ///
    /// Forced *before* any pool fan-out so the one-time initialisation
    /// (itself parallel) never runs under a worker blocked by another
    /// worker's `OnceLock` wait.
    pub fn profiles(&self) -> &[ProfiledWorkload] {
        self.profiles.get_or_init(|| {
            self.profilings.fetch_add(1, Ordering::Relaxed);
            let suite: Vec<_> = full_suite(self.spec.scale)
                .into_iter()
                .take(self.spec.max_workloads as usize)
                .enumerate()
                .collect();
            let profile_seed = mix64(self.seed, PROFILE_SALT);
            pool::fan_out(suite, |(i, w)| {
                self.server.profile_workload(w.as_ref(), mix64(profile_seed, i as u64))
            })
        })
    }

    /// Simulates one epoch of one (already manufactured) device — the
    /// replay unit behind both the device-major in-memory path and the
    /// epoch-major slice path; both produce bit-identical outcomes because
    /// all randomness is keyed by `(spec, seed, index, epoch)`.
    fn simulate_epoch(
        &self,
        device: &DramDevice,
        index: u32,
        epoch: u32,
        profiles: &[ProfiledWorkload],
    ) -> EpochOutcome {
        let plan = self.spec.epoch_plan(self.seed, index, epoch, profiles.len());
        let profiled = &profiles[plan.workload];
        let profile = scaled_profile(&profiled.profile, plan.utilization);
        let op = OperatingPoint::relaxed(self.spec.trefp_s, plan.temp_c);
        let run_seed = mix64(mix64(self.seed ^ RUN_SALT, device.seed()), epoch as u64);
        self.simulations.fetch_add(1, Ordering::Relaxed);
        let run = ErrorSim::new(device).run(&profile, op, self.spec.epoch_s, run_seed);
        EpochOutcome {
            epoch,
            workload: profiled.name.clone(),
            temp_c: plan.temp_c,
            utilization: plan.utilization,
            ce_count: run.ce_events.len() as u64,
            wer: run.wer(),
            wer_per_rank: run.wer_per_rank(),
            crashed: run.crashed(),
            ue_t_s: run.ue.map(|ue| ue.t_s),
            ue_rank: run.ue.map(|ue| ue.rank.index()),
        }
    }

    /// An empty history skeleton for device `index`: derived seed, vintage
    /// and manufacturing fingerprint, no epochs. Cheap (no profiling, no
    /// simulation) — the slice fold fills in the epochs.
    fn skeleton(&self, index: u32) -> DeviceHistory {
        let device = self.spec.manufacture(self.seed, index);
        DeviceHistory {
            index,
            seed: device.seed(),
            vintage: self.spec.vintage_of(index),
            fingerprint: device.fingerprint(),
            epochs: Vec::new(),
            failed_at_s: None,
        }
    }

    /// Folds one slice row into its accumulating history, returning
    /// whether the device survived the epoch. `failed_at_s` reconstructs
    /// exactly the simulation-time rule: a UE at `t` inside `epoch` fails
    /// the device at `epoch · epoch_s + min(t, epoch_s)`.
    fn fold_row(&self, history: &mut DeviceHistory, epoch: u32, outcome: EpochOutcome) -> bool {
        if let Some(t) = outcome.ue_t_s {
            history.failed_at_s =
                Some(epoch as f64 * self.spec.epoch_s + t.min(self.spec.epoch_s));
        }
        let alive = !outcome.crashed;
        history.epochs.push(outcome);
        alive
    }

    /// Simulates the full field history of device `index` — the isolation
    /// drill-down: the result is byte-identical to the same device's slice
    /// of a full sweep.
    pub fn device_history(&self, index: u32) -> DeviceHistory {
        let profiles = self.profiles();
        let device = self.spec.manufacture(self.seed, index);
        let mut history = self.skeleton(index);
        for epoch in 0..self.spec.epochs {
            let outcome = self.simulate_epoch(&device, index, epoch, profiles);
            if !self.fold_row(&mut history, epoch, outcome) {
                break;
            }
        }
        history
    }

    /// Simulates shard `shard` in memory (its contiguous device block,
    /// device-major, in order).
    pub fn shard(&self, shard: u32) -> FleetShard {
        let devices = self.spec.shard_range(shard).map(|k| self.device_history(k)).collect();
        FleetShard { shard, devices }
    }

    /// Store key of the `(shard, epoch)` slice — seed, determinism
    /// version, profiling SoC fingerprint, **epoch-invariant** spec
    /// prefix, shard and epoch indices. See the module docs for why each
    /// component is load-bearing, and why `spec.epochs` must not appear.
    pub fn slice_key(&self, shard: u32, epoch: u32) -> String {
        format!("{}{shard}|epoch={epoch}", self.slice_key_prefix())
    }

    /// The shared prefix of every slice key of this `(spec prefix, seed)`
    /// — the enumeration handle for
    /// [`wade_store::ArtifactStore::keys_with_prefix`] (e.g. to count how
    /// many slices of a spec are already persisted, at *any* epoch count).
    pub fn slice_key_prefix(&self) -> String {
        format!(
            "fleet|seed={}|det={}|soc={:016x}|spec={}|shard=",
            self.seed,
            wade_dram::DETERMINISM_VERSION,
            self.server.soc_fingerprint(),
            self.spec.describe_prefix(),
        )
    }

    /// Simulates the `(shard, epoch)` slice for the given alive devices
    /// (epoch-major: devices fan out over the pool, order-stable).
    fn simulate_slice(&self, shard: u32, epoch: u32, alive: &[u32]) -> FleetSlice {
        let profiles = self.profiles();
        let rows = pool::fan_out(alive.to_vec(), |index| {
            let device = self.spec.manufacture(self.seed, index);
            SliceRow { index, outcome: self.simulate_epoch(&device, index, epoch, profiles) }
        });
        FleetSlice { shard, epoch, rows }
    }

    /// Assembles shard `shard` through `store`: slices are read in epoch
    /// order; warm slices fold straight in (zero simulation, zero
    /// profiling), missing ones — cold, evicted, or unreadable under a
    /// degraded store — are simulated for exactly the devices still alive
    /// and republished. The fold stops early once every device of the
    /// shard has failed.
    pub fn shard_stored(&self, store: &ArtifactStore, shard: u32) -> FleetShard {
        let range = self.spec.shard_range(shard);
        let start = range.start;
        let mut devices: Vec<DeviceHistory> = range.map(|k| self.skeleton(k)).collect();
        let mut alive: Vec<u32> = devices.iter().map(|d| d.index).collect();
        for epoch in 0..self.spec.epochs {
            if alive.is_empty() {
                break;
            }
            let key = self.slice_key(shard, epoch);
            let slice = match store.get::<FleetSlice>(FLEET_SLICE_KIND, &key) {
                Some(slice) => slice,
                None => {
                    let slice = self.simulate_slice(shard, epoch, &alive);
                    let _ = store.put(FLEET_SLICE_KIND, &key, &slice);
                    slice
                }
            };
            debug_assert_eq!(
                slice.rows.iter().map(|r| r.index).collect::<Vec<_>>(),
                alive,
                "slice {shard}/{epoch} disagrees with the alive set — keying bug"
            );
            alive.clear();
            for row in slice.rows {
                let history = &mut devices[(row.index - start) as usize];
                if self.fold_row(history, epoch, row.outcome) {
                    alive.push(row.index);
                }
            }
        }
        FleetShard { shard, devices }
    }

    /// Sweeps the whole fleet in memory: shards fan out over the pool,
    /// the merge concatenates them in shard order.
    pub fn sweep(&self) -> FleetOutcome {
        self.profiles();
        let shards =
            pool::fan_out((0..self.spec.shards).collect(), |s| self.shard(s));
        self.merge(shards)
    }

    /// The streaming sweep: walks shards in shard order through `store`
    /// (see [`FleetSweep::shard_stored`]) and hands each finished device
    /// history to `visit` in fleet index order. Peak memory is one shard's
    /// histories, not the fleet's — the bounded-memory path `sweep_stored`
    /// and the streaming evaluation build on.
    pub fn sweep_stored_visit(
        &self,
        store: &ArtifactStore,
        mut visit: impl FnMut(DeviceHistory),
    ) {
        for shard in 0..self.spec.shards {
            for device in self.shard_stored(store, shard).devices {
                visit(device);
            }
        }
    }

    /// Sweeps through `store`, materializing the full outcome: warm slices
    /// are read back (zero simulation, zero profiling), cold slices are
    /// simulated and persisted. A store running degraded (see
    /// `wade-fault`) simply yields more recomputes — the merged outcome is
    /// byte-identical either way.
    pub fn sweep_stored(&self, store: &ArtifactStore) -> FleetOutcome {
        let mut devices: Vec<DeviceHistory> =
            Vec::with_capacity(self.spec.devices as usize);
        self.sweep_stored_visit(store, |d| devices.push(d));
        assert_eq!(devices.len() as u32, self.spec.devices, "sweep lost devices");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.index, i as u32, "sweep broke device order");
        }
        FleetOutcome { spec: self.spec, seed: self.seed, devices }
    }

    /// Order-stable merge: concatenation in shard order, with the device
    /// index sequence asserted contiguous.
    fn merge(&self, shards: Vec<FleetShard>) -> FleetOutcome {
        let devices: Vec<DeviceHistory> =
            shards.into_iter().flat_map(|s| s.devices).collect();
        assert_eq!(devices.len() as u32, self.spec.devices, "merge lost devices");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.index, i as u32, "merge broke device order");
        }
        FleetOutcome { spec: self.spec, seed: self.seed, devices }
    }
}

/// A profile at reduced utilization: the DRAM traffic rates scale with the
/// utilization factor; footprint and content statistics stay those of the
/// profiled workload.
fn scaled_profile(profile: &DramUsageProfile, utilization: f64) -> DramUsageProfile {
    let mut scaled = profile.clone();
    scaled.dram_read_rate_hz *= utilization;
    scaled.dram_write_rate_hz *= utilization;
    scaled.row_activation_rate_hz *= utilization;
    scaled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        let mut spec = FleetSpec::test_default();
        spec.devices = 6;
        spec.shards = 3;
        spec.epochs = 2;
        spec.max_workloads = 2;
        spec
    }

    #[test]
    fn sweep_is_reproducible_and_ordered() {
        let a = FleetSweep::new(tiny_spec(), 42).sweep();
        let b = FleetSweep::new(tiny_spec(), 42).sweep();
        assert_eq!(a.devices_json(), b.devices_json());
        assert_eq!(a.devices.len(), 6);
        let other = FleetSweep::new(tiny_spec(), 43).sweep();
        assert_ne!(a.devices_json(), other.devices_json(), "seed must matter");
    }

    #[test]
    fn device_histories_are_shard_independent() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        let full = sweep.sweep();
        let solo = sweep.device_history(4);
        assert_eq!(solo, full.devices[4]);
    }

    #[test]
    fn simulations_and_profilings_are_counted() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        assert_eq!((sweep.simulations(), sweep.profilings()), (0, 0));
        let outcome = sweep.sweep();
        let epochs: u64 = outcome.devices.iter().map(|d| d.epochs.len() as u64).sum();
        assert_eq!(sweep.simulations(), epochs);
        assert_eq!(sweep.profilings(), 1, "the suite is profiled exactly once");
    }

    #[test]
    fn slice_keys_separate_shards_epochs_seeds_and_specs() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        assert_ne!(sweep.slice_key(0, 0), sweep.slice_key(1, 0));
        assert_ne!(sweep.slice_key(0, 0), sweep.slice_key(0, 1));
        assert_ne!(sweep.slice_key(0, 0), FleetSweep::new(tiny_spec(), 8).slice_key(0, 0));
        let mut wider = tiny_spec();
        wider.devices += 1;
        assert_ne!(sweep.slice_key(0, 0), FleetSweep::new(wider, 7).slice_key(0, 0));
        // The load-bearing sharing: a spec differing only in epoch count
        // addresses the *same* slices — that is what prefix reuse is.
        let mut grown = tiny_spec();
        grown.epochs += 3;
        assert_eq!(sweep.slice_key(0, 0), FleetSweep::new(grown, 7).slice_key(0, 0));
        assert_eq!(sweep.slice_key_prefix(), FleetSweep::new(grown, 7).slice_key_prefix());
    }
}
