//! The sharded fleet sweep: simulate every device's field schedule,
//! fan shards over the pool, persist each shard as a store artifact.
//!
//! # Sharding / keying / merge contract (normative)
//!
//! - Devices are assigned to shards in **contiguous index blocks**
//!   ([`FleetSpec::shard_range`]); the merged fleet is the concatenation of
//!   shards in shard order, so the merge is order-stable by construction
//!   and the swept fleet is byte-identical at any thread count.
//! - A device's history is a pure function of `(spec, fleet_seed, index)`
//!   — never of its shard or of neighbouring devices — so re-sharding the
//!   same spec only re-groups bytes, and a single device can be replayed
//!   in isolation ([`FleetSweep::device_history`]).
//! - Each shard persists under kind [`FLEET_SHARD_KIND`] with a key that
//!   embeds the fleet seed, the simulator's `DETERMINISM_VERSION`, the
//!   profiling SoC fingerprint and the **verbatim** spec description plus
//!   the shard index ([`FleetSweep::shard_key`]). Any re-baselining event
//!   — simulator, profiler or spec — turns warm shards into misses, never
//!   stale hits.
//! - A warm [`FleetSweep::sweep_stored`] performs **zero** simulations and
//!   zero workload profiling: the workload suite is profiled lazily, only
//!   once some shard actually misses.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::spec::{FleetSpec, FLEET_SHARD_KIND, PROFILE_SALT, RUN_SALT};
use serde::{Deserialize, Serialize};
use wade_core::{pool, ProfiledWorkload, SimulatedServer};
use wade_dram::{DramUsageProfile, ErrorSim, OperatingPoint, RANK_COUNT};
use wade_fault::mix64;
use wade_store::ArtifactStore;
use wade_workloads::full_suite;

/// One simulated field epoch of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    /// Epoch index within the device's schedule.
    pub epoch: u32,
    /// Workload that ran during the epoch.
    pub workload: String,
    /// DIMM temperature during the epoch (°C).
    pub temp_c: f64,
    /// Utilization factor applied to the workload's DRAM rates.
    pub utilization: f64,
    /// Unique corrected-error words observed.
    pub ce_count: u64,
    /// Word error rate of the epoch run (eq. 2).
    pub wer: f64,
    /// Per-rank WER split.
    pub wer_per_rank: [f64; RANK_COUNT],
    /// Whether the epoch ended in an uncorrectable error (device failure).
    pub crashed: bool,
    /// Seconds into the epoch at which the UE fired, if it did.
    pub ue_t_s: Option<f64>,
    /// Rank blamed for the UE, if one fired.
    pub ue_rank: Option<usize>,
}

/// The full simulated field history of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceHistory {
    /// Fleet-wide device index.
    pub index: u32,
    /// Derived manufacturing seed.
    pub seed: u64,
    /// Generation the device belongs to.
    pub vintage: u32,
    /// The device's manufacturing fingerprint (seed + geometry + physics
    /// + simulator determinism contract).
    pub fingerprint: u64,
    /// Epoch outcomes, ending early at the failing epoch.
    pub epochs: Vec<EpochOutcome>,
    /// Absolute failure time from field start (s), if the device failed.
    pub failed_at_s: Option<f64>,
}

/// One persisted shard: a contiguous block of device histories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetShard {
    /// Shard index.
    pub shard: u32,
    /// Histories of the shard's devices, in fleet index order.
    pub devices: Vec<DeviceHistory>,
}

/// The merged result of a fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The spec the fleet was manufactured from.
    pub spec: FleetSpec,
    /// The fleet seed.
    pub seed: u64,
    /// Every device's history, in index order.
    pub devices: Vec<DeviceHistory>,
}

impl FleetOutcome {
    /// `(device index, absolute failure time)` of every failed device.
    pub fn failures(&self) -> Vec<(u32, f64)> {
        self.devices.iter().filter_map(|d| d.failed_at_s.map(|t| (d.index, t))).collect()
    }

    /// Devices that survived the whole observation span.
    pub fn survivors(&self) -> usize {
        self.devices.iter().filter(|d| d.failed_at_s.is_none()).count()
    }

    /// Canonical JSON of the device histories — the byte-identity currency
    /// of the fleet test pyramid (the spec itself is keyed, not stored).
    ///
    /// # Panics
    /// Panics if serialization fails (it cannot for these types).
    pub fn devices_json(&self) -> String {
        serde_json::to_string(&self.devices).expect("device histories serialize")
    }
}

/// A reusable sweep engine: owns the profiling server, the lazily
/// profiled workload suite and the simulation counter.
///
/// The counter is how tests *counter-assert* the warm path: a warm
/// [`FleetSweep::sweep_stored`] must leave [`FleetSweep::simulations`]
/// untouched.
pub struct FleetSweep {
    spec: FleetSpec,
    seed: u64,
    server: SimulatedServer,
    profiles: OnceLock<Vec<ProfiledWorkload>>,
    simulations: AtomicU64,
}

impl FleetSweep {
    /// Builds a sweep engine for `spec` under `seed`.
    ///
    /// # Panics
    /// Panics if the spec fails [`FleetSpec::validate`].
    pub fn new(spec: FleetSpec, seed: u64) -> Self {
        spec.validate().expect("invalid fleet spec");
        Self {
            spec,
            seed,
            server: SimulatedServer::with_seed(seed),
            profiles: OnceLock::new(),
            simulations: AtomicU64::new(0),
        }
    }

    /// The spec in force.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// The fleet seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of `ErrorSim` runs performed so far by this engine. Zero
    /// after a fully warm [`FleetSweep::sweep_stored`].
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// The profiled workload suite the schedules draw from, profiling it
    /// on first use. Profiling happens at most once per engine and not at
    /// all on a fully warm stored sweep.
    ///
    /// Forced *before* any pool fan-out so the one-time initialisation
    /// (itself parallel) never runs under a worker blocked by another
    /// worker's `OnceLock` wait.
    pub fn profiles(&self) -> &[ProfiledWorkload] {
        self.profiles.get_or_init(|| {
            let suite: Vec<_> = full_suite(self.spec.scale)
                .into_iter()
                .take(self.spec.max_workloads as usize)
                .enumerate()
                .collect();
            let profile_seed = mix64(self.seed, PROFILE_SALT);
            pool::fan_out(suite, |(i, w)| {
                self.server.profile_workload(w.as_ref(), mix64(profile_seed, i as u64))
            })
        })
    }

    /// Simulates the full field history of device `index` — the isolation
    /// drill-down: the result is byte-identical to the same device's slice
    /// of a full sweep.
    pub fn device_history(&self, index: u32) -> DeviceHistory {
        let profiles = self.profiles();
        let device = self.spec.manufacture(self.seed, index);
        let device_seed = device.seed();
        let sim = ErrorSim::new(&device);
        let mut epochs = Vec::new();
        let mut failed_at_s = None;
        for epoch in 0..self.spec.epochs {
            let plan = self.spec.epoch_plan(self.seed, index, epoch, profiles.len());
            let profiled = &profiles[plan.workload];
            let profile = scaled_profile(&profiled.profile, plan.utilization);
            let op = OperatingPoint::relaxed(self.spec.trefp_s, plan.temp_c);
            let run_seed = mix64(mix64(self.seed ^ RUN_SALT, device_seed), epoch as u64);
            self.simulations.fetch_add(1, Ordering::Relaxed);
            let run = sim.run(&profile, op, self.spec.epoch_s, run_seed);
            let crashed = run.crashed();
            if let Some(ue) = run.ue {
                failed_at_s =
                    Some(epoch as f64 * self.spec.epoch_s + ue.t_s.min(self.spec.epoch_s));
            }
            epochs.push(EpochOutcome {
                epoch,
                workload: profiled.name.clone(),
                temp_c: plan.temp_c,
                utilization: plan.utilization,
                ce_count: run.ce_events.len() as u64,
                wer: run.wer(),
                wer_per_rank: run.wer_per_rank(),
                crashed,
                ue_t_s: run.ue.map(|ue| ue.t_s),
                ue_rank: run.ue.map(|ue| ue.rank.index()),
            });
            if crashed {
                break;
            }
        }
        DeviceHistory {
            index,
            seed: device_seed,
            vintage: self.spec.vintage_of(index),
            fingerprint: device.fingerprint(),
            epochs,
            failed_at_s,
        }
    }

    /// Simulates shard `shard` (its contiguous device block, in order).
    pub fn shard(&self, shard: u32) -> FleetShard {
        let devices = self.spec.shard_range(shard).map(|k| self.device_history(k)).collect();
        FleetShard { shard, devices }
    }

    /// Store key of shard `shard` — seed, determinism version, profiling
    /// SoC fingerprint, verbatim spec, shard index. See the module docs
    /// for why each component is load-bearing.
    pub fn shard_key(&self, shard: u32) -> String {
        format!(
            "fleet|seed={}|det={}|soc={:016x}|spec={}|shard={shard}",
            self.seed,
            wade_dram::DETERMINISM_VERSION,
            self.server.soc_fingerprint(),
            self.spec.describe(),
        )
    }

    /// Sweeps the whole fleet in memory: shards fan out over the pool,
    /// the merge concatenates them in shard order.
    pub fn sweep(&self) -> FleetOutcome {
        self.profiles();
        let shards =
            pool::fan_out((0..self.spec.shards).collect(), |s| self.shard(s));
        self.merge(shards)
    }

    /// Sweeps through `store`: warm shards are read back (zero simulation,
    /// zero profiling), cold shards are simulated and persisted. A store
    /// running degraded (see `wade-fault`) simply yields more recomputes —
    /// the merged outcome is byte-identical either way.
    pub fn sweep_stored(&self, store: &ArtifactStore) -> FleetOutcome {
        let keys: Vec<String> =
            (0..self.spec.shards).map(|s| self.shard_key(s)).collect();
        let cached: Vec<Option<FleetShard>> =
            keys.iter().map(|k| store.get(FLEET_SHARD_KIND, k)).collect();
        if cached.iter().any(Option::is_none) {
            self.profiles();
        }
        let shards = pool::fan_out(
            cached.into_iter().enumerate().collect::<Vec<_>>(),
            |(s, hit)| {
                hit.unwrap_or_else(|| {
                    let shard = self.shard(s as u32);
                    let _ = store.put(FLEET_SHARD_KIND, &keys[s], &shard);
                    shard
                })
            },
        );
        self.merge(shards)
    }

    /// Order-stable merge: concatenation in shard order, with the device
    /// index sequence asserted contiguous.
    fn merge(&self, shards: Vec<FleetShard>) -> FleetOutcome {
        let devices: Vec<DeviceHistory> =
            shards.into_iter().flat_map(|s| s.devices).collect();
        assert_eq!(devices.len() as u32, self.spec.devices, "merge lost devices");
        for (i, d) in devices.iter().enumerate() {
            assert_eq!(d.index, i as u32, "merge broke device order");
        }
        FleetOutcome { spec: self.spec, seed: self.seed, devices }
    }
}

/// A profile at reduced utilization: the DRAM traffic rates scale with the
/// utilization factor; footprint and content statistics stay those of the
/// profiled workload.
fn scaled_profile(profile: &DramUsageProfile, utilization: f64) -> DramUsageProfile {
    let mut scaled = profile.clone();
    scaled.dram_read_rate_hz *= utilization;
    scaled.dram_write_rate_hz *= utilization;
    scaled.row_activation_rate_hz *= utilization;
    scaled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> FleetSpec {
        let mut spec = FleetSpec::test_default();
        spec.devices = 6;
        spec.shards = 3;
        spec.epochs = 2;
        spec.max_workloads = 2;
        spec
    }

    #[test]
    fn sweep_is_reproducible_and_ordered() {
        let a = FleetSweep::new(tiny_spec(), 42).sweep();
        let b = FleetSweep::new(tiny_spec(), 42).sweep();
        assert_eq!(a.devices_json(), b.devices_json());
        assert_eq!(a.devices.len(), 6);
        let other = FleetSweep::new(tiny_spec(), 43).sweep();
        assert_ne!(a.devices_json(), other.devices_json(), "seed must matter");
    }

    #[test]
    fn device_histories_are_shard_independent() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        let full = sweep.sweep();
        let solo = sweep.device_history(4);
        assert_eq!(solo, full.devices[4]);
    }

    #[test]
    fn simulations_are_counted() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        assert_eq!(sweep.simulations(), 0);
        let outcome = sweep.sweep();
        let epochs: u64 = outcome.devices.iter().map(|d| d.epochs.len() as u64).sum();
        assert_eq!(sweep.simulations(), epochs);
    }

    #[test]
    fn shard_keys_separate_shards_seeds_and_specs() {
        let sweep = FleetSweep::new(tiny_spec(), 7);
        assert_ne!(sweep.shard_key(0), sweep.shard_key(1));
        assert_ne!(sweep.shard_key(0), FleetSweep::new(tiny_spec(), 8).shard_key(0));
        let mut grown = tiny_spec();
        grown.epochs += 1;
        assert_ne!(sweep.shard_key(0), FleetSweep::new(grown, 7).shard_key(0));
    }
}
