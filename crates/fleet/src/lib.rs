//! # wade-fleet — the fleet-scale scenario engine
//!
//! Everything below WADE simulates **one** server very well. This crate
//! turns that into a *population*: a [`FleetSpec`] manufactures hundreds
//! to thousands of heterogeneous devices from a single fleet seed —
//! per-device derived seeds, vintage-dependent geometry variants,
//! vintage-skewed and device-jittered error physics, and per-device
//! thermal/utilization field schedules built from the profiled workload
//! suite — then [`FleetSweep`] simulates every device's field life in
//! order-stable shards over the worker pool and persists each
//! `(shard, epoch)` **slice** as a `wade-store` artifact under an
//! epoch-invariant key, so a warm sweep is pure store reads (zero
//! simulation, zero profiling — counter-asserted by the fleet tests) and
//! extending a spec's epoch count reuses the entire prefix, simulating
//! only the new epochs. Shard assembly is a bounded-memory fold over
//! slices; [`FleetSweep::sweep_stored_visit`] streams finished device
//! histories one shard at a time.
//!
//! On top of the swept histories, [`FleetEval`] replays the fleet the way
//! an operator would see it: sliding observation windows (two-pointer,
//! linear in epochs) score each device at every epoch boundary, alerts
//! are graded into precision/recall at configurable lead times, and a
//! threshold sweep yields the mitigation-cost curve (migration cost vs
//! unmitigated-crash cost). [`FleetEvalBuilder`] consumes streamed device
//! histories so evaluation memory stays O(shard), not O(fleet).
//! [`transfer_matrix`] trains one WER model per vintage on the existing
//! store-backed trainers and scores every train-on-A/test-on-B pair, and
//! [`fleet_campaign_data`] repackages a swept fleet as ordinary
//! `CampaignData` so the serving registry loads fleet-trained models with
//! no fleet-specific code.
//!
//! The slicing/keying/merge contract lives in [`sweep`]'s module docs and
//! is normative; `ARCHITECTURE.md` §15 mirrors it.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod eval;
pub mod spec;
pub mod sweep;

pub use eval::{
    fleet_campaign_data, transfer_matrix, CostPoint, DecisionPoint, FleetEval, FleetEvalBuilder,
    FleetEvalConfig, LeadTimeReport, TransferCell, TransferMatrix, FLEET_MODEL_KIND,
};
pub use spec::{EpochPlan, FleetSpec, FLEET_KEY_VERSION, FLEET_SLICE_KIND, SEASON_PERIOD_EPOCHS};
pub use sweep::{
    DeviceHistory, EpochOutcome, FleetOutcome, FleetShard, FleetSlice, FleetSweep, SliceRow,
};
