//! # wade-memsys — the SoC substrate (X-Gene2 stand-in)
//!
//! The paper's experimental framework is an AppliedMicro X-Gene2: eight
//! 64-bit ARMv8 cores at 2.4 GHz, private L1 caches, L2 shared per two-core
//! module, and four DDR3 memory-controller units (MCUs). The 247
//! hardware-performance-counter features of the paper are read from this
//! machine with `perf`.
//!
//! This crate models that machine at the fidelity the prediction pipeline
//! needs: a trace-driven cache hierarchy with an in-order timing model and
//! MCU command accounting. It consumes the same instrumented executions as
//! [`wade_trace`] (via [`wade_trace::AccessSink`]) and produces a
//! [`SocReport`] holding every counter the feature schema reads.
//!
//! ```
//! use wade_memsys::{Soc, SocConfig};
//! use wade_trace::{AccessSink, MemAccess};
//!
//! let mut soc = Soc::new(SocConfig::x_gene2());
//! for i in 0..10_000u64 {
//!     soc.on_access(MemAccess::read((i * 64) % (1 << 20), (i % 8) as u8));
//!     soc.on_instructions(3);
//! }
//! let report = soc.report();
//! assert!(report.total_instructions() > 0);
//! assert!(report.ipc() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cache;
mod config;
mod counters;
mod mcu;
mod soc;

pub use cache::{AccessResult, Cache, CacheConfig};
pub use config::SocConfig;
pub use counters::{CoreCounters, McuCounters, SocReport};
pub use mcu::{Mcu, MCU_COUNT};
pub use soc::Soc;
