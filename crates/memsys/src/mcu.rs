//! Memory Controller Unit (MCU) model.
//!
//! The X-Gene2 has four DDR3 MCUs; cache lines interleave across them on
//! low-order line-address bits. Each MCU counts read/write commands and
//! tracks per-bank open rows to estimate row activations — the quantity
//! behind the disturbance (cell-to-cell interference) component of the DRAM
//! error model.

use serde::{Deserialize, Serialize};

/// Number of memory channels / MCUs on the modelled SoC.
pub const MCU_COUNT: usize = 4;

/// Bank-level parallelism tracked per MCU: 8 banks × 8 ranks' worth of
/// open rows. The index XOR-folds high address bits (bank hashing), as
/// real controllers do so that distinct working-set regions map to
/// distinct banks instead of conflicting.
const BANKS: usize = 64;

/// Row size in bytes used for open-row tracking (8 KiB row buffer).
const ROW_SHIFT: u32 = 13;

/// One memory-controller channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mcu {
    open_row: Vec<Option<u64>>,
    read_cmds: u64,
    write_cmds: u64,
    row_activations: u64,
    rowbuffer_hits: u64,
}

impl Mcu {
    /// A fresh channel with all banks closed.
    pub fn new() -> Self {
        Self {
            open_row: vec![None; BANKS],
            read_cmds: 0,
            write_cmds: 0,
            row_activations: 0,
            rowbuffer_hits: 0,
        }
    }

    /// Which MCU serves the cache line at `addr` (64-byte interleave).
    pub fn route(addr: u64) -> usize {
        ((addr >> 6) & (MCU_COUNT as u64 - 1)) as usize
    }

    /// Issues one DRAM command for the line at `addr`.
    pub fn command(&mut self, addr: u64, is_write: bool) {
        if is_write {
            self.write_cmds += 1;
        } else {
            self.read_cmds += 1;
        }
        // Row-major mapping with XOR bank hashing: sequential streams stay
        // in one bank per 8 KiB row (97% row-buffer hits), while working
        // sets at distinct megabyte-scale bases land in distinct banks.
        let bank = (((addr >> ROW_SHIFT) ^ (addr >> 19)) & (BANKS as u64 - 1)) as usize;
        let row = addr >> ROW_SHIFT;
        if self.open_row[bank] == Some(row) {
            self.rowbuffer_hits += 1;
        } else {
            self.row_activations += 1;
            self.open_row[bank] = Some(row);
        }
    }

    /// Read commands issued.
    pub fn read_cmds(&self) -> u64 {
        self.read_cmds
    }

    /// Write commands issued.
    pub fn write_cmds(&self) -> u64 {
        self.write_cmds
    }

    /// Total commands issued.
    pub fn total_cmds(&self) -> u64 {
        self.read_cmds + self.write_cmds
    }

    /// Row activations (row-buffer misses).
    pub fn row_activations(&self) -> u64 {
        self.row_activations
    }

    /// Row-buffer hit ratio (0 when idle).
    pub fn rowbuffer_hit_rate(&self) -> f64 {
        let total = self.total_cmds();
        if total == 0 {
            0.0
        } else {
            self.rowbuffer_hits as f64 / total as f64
        }
    }
}

impl Default for Mcu {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_interleaves_lines() {
        assert_eq!(Mcu::route(0), 0);
        assert_eq!(Mcu::route(64), 1);
        assert_eq!(Mcu::route(128), 2);
        assert_eq!(Mcu::route(192), 3);
        assert_eq!(Mcu::route(256), 0);
    }

    #[test]
    fn commands_are_counted_by_kind() {
        let mut m = Mcu::new();
        m.command(0, false);
        m.command(0, false);
        m.command(0, true);
        assert_eq!(m.read_cmds(), 2);
        assert_eq!(m.write_cmds(), 1);
        assert_eq!(m.total_cmds(), 3);
    }

    #[test]
    fn same_row_hits_rowbuffer() {
        let mut m = Mcu::new();
        m.command(0, false); // activation
        m.command(64, false); // same bank (low bits 0), same row
        assert_eq!(m.row_activations(), 1);
        assert!(m.rowbuffer_hit_rate() > 0.0);
    }

    #[test]
    fn row_change_activates() {
        let mut m = Mcu::new();
        m.command(0, false); // bank 0, row 0
        // Row 65 also hashes to bank 0 (65 ^ 1 = 64 ≡ 0 mod 64): a genuine
        // same-bank row change.
        m.command(65 << ROW_SHIFT, false);
        assert_eq!(m.row_activations(), 2);
    }

    #[test]
    fn banks_have_independent_open_rows() {
        let mut m = Mcu::new();
        m.command(0, false); // bank 0
        m.command(1 << ROW_SHIFT, false); // bank 1
        m.command(0, false); // bank 0 again, still open
        assert_eq!(m.row_activations(), 2);
        assert_eq!(m.rowbuffer_hit_rate(), 1.0 / 3.0);
    }

    #[test]
    fn bank_hash_separates_thread_regions() {
        // Two sequential streams at megabyte-distant bases (distinct
        // threads' working sets) must keep their row-buffer locality
        // instead of thrashing one bank.
        let mut m = Mcu::new();
        for i in 0..64u64 {
            m.command(i * 256, false);
            m.command((1 << 20) + i * 256, false);
        }
        assert!(
            m.rowbuffer_hit_rate() > 0.8,
            "hashed banks must keep locality: {}",
            m.rowbuffer_hit_rate()
        );
    }
}
