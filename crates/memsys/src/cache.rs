//! Set-associative, write-back, write-allocate cache with LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways/line, capacity not a
    /// multiple of `ways × line_bytes`, or a non-power-of-two set count).
    pub fn sets(&self) -> u64 {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate cache geometry");
        let way_bytes = self.ways as u64 * self.line_bytes as u64;
        assert!(
            self.capacity_bytes.is_multiple_of(way_bytes),
            "capacity {} not a multiple of ways×line {}",
            self.capacity_bytes,
            way_bytes
        );
        let sets = self.capacity_bytes / way_bytes;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two");
        sets
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was filled; if a dirty victim was evicted its line-aligned
    /// byte address is reported so callers can forward the writeback.
    Miss {
        /// Dirty victim evicted by this fill, if any.
        writeback: Option<u64>,
    },
}

impl AccessResult {
    /// True when the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A single cache level.
///
/// The model tracks tags, dirtiness and LRU age only — no data payload, as
/// the simulator never needs stored bytes (values flow through
/// [`wade_trace`] instead).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: u64,
    set_shift: u32,
    lines: Vec<Line>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Self {
            config,
            sets,
            set_shift: config.line_bytes.trailing_zeros(),
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.set_shift) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.set_shift + self.sets.trailing_zeros())
    }

    /// Accesses `addr`; `is_write` marks the line dirty on hit/fill.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.clock += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = (set * self.config.ways as u64) as usize;
        let ways = self.config.ways as usize;

        for way in 0..ways {
            let line = &mut self.lines[base + way];
            if line.valid && line.tag == tag {
                line.lru = self.clock;
                line.dirty |= is_write;
                self.hits += 1;
                return AccessResult::Hit;
            }
        }

        self.misses += 1;
        // Victim: invalid line first, else LRU.
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for way in 0..ways {
            let line = &self.lines[base + way];
            if !line.valid {
                victim = way;
                break;
            }
            if line.lru < oldest {
                oldest = line.lru;
                victim = way;
            }
        }
        let line = &mut self.lines[base + victim];
        let writeback = if line.valid && line.dirty {
            self.writebacks += 1;
            // Reconstruct the victim's line address.
            let victim_addr =
                (line.tag << (self.set_shift + self.sets.trailing_zeros())) | (set << self.set_shift);
            Some(victim_addr)
        } else {
            None
        };
        *line = Line { tag, valid: true, dirty: is_write, lru: self.clock };
        AccessResult::Miss { writeback }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Total accesses (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in 0..=1 (0 when never accessed).
    pub fn miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(CacheConfig { capacity_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0, false).is_hit());
        assert!(c.access(0, false).is_hit());
        assert!(c.access(63, false).is_hit(), "same line");
        assert!(!c.access(64, false).is_hit(), "next line");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [8..] as tag; 4 sets × 64 B.
        let a = 0u64; // set 0
        let b = 4 * 64; // set 0, different tag
        let d = 8 * 64; // set 0, third tag
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // refresh a
        c.access(d, false); // evicts b
        assert!(c.access(a, false).is_hit());
        assert!(!c.access(b, false).is_hit());
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty line in set 0
        c.access(4 * 64, false);
        match c.access(8 * 64, false) {
            AccessResult::Miss { writeback: Some(addr) } => assert_eq!(addr, 0),
            other => panic!("expected writeback of line 0, got {other:?}"),
        }
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(4 * 64, false);
        match c.access(8 * 64, false) {
            AccessResult::Miss { writeback } => assert!(writeback.is_none()),
            AccessResult::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn miss_rate_tracks_ratio() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 64 distinct lines (4 KiB) in a 512 B cache, repeated sweeps: LRU on
        // a sweep pattern yields ~100 % misses.
        for _ in 0..4 {
            for i in 0..64u64 {
                c.access(i * 64, false);
            }
        }
        assert!(c.miss_rate() > 0.95);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        Cache::new(CacheConfig { capacity_bytes: 768, ways: 2, line_bytes: 64 }).access(0, false);
    }
}
