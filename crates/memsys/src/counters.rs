//! Performance-counter reports (the `perf` stand-in).

use crate::mcu::MCU_COUNT;
use serde::{Deserialize, Serialize};

/// Raw counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CoreCounters {
    /// Instructions retired (memory + non-memory).
    pub instructions: u64,
    /// Cycles consumed (instructions + exposed stalls).
    pub cycles: u64,
    /// Load instructions.
    pub mem_reads: u64,
    /// Store instructions.
    pub mem_writes: u64,
    /// L1D lookups.
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 lookups caused by this core.
    pub l2_accesses: u64,
    /// L2 misses caused by this core.
    pub l2_misses: u64,
    /// L3 lookups caused by this core.
    pub l3_accesses: u64,
    /// L3 misses caused by this core.
    pub l3_misses: u64,
    /// Stall cycles spent waiting for the memory hierarchy.
    pub wait_cycles: u64,
    /// Dirty lines this core pushed down the hierarchy.
    pub writebacks: u64,
}

impl CoreCounters {
    /// Total memory accesses.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }

    /// Instructions per cycle (0 when idle).
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Cycles per instruction (0 when idle).
    pub fn cpi(&self) -> f64 {
        ratio(self.cycles, self.instructions)
    }

    /// Memory accesses per cycle — the paper's dominant feature.
    pub fn mem_accesses_per_cycle(&self) -> f64 {
        ratio(self.mem_accesses(), self.cycles)
    }

    /// L1D miss ratio.
    pub fn l1d_miss_rate(&self) -> f64 {
        ratio(self.l1d_misses, self.l1d_accesses)
    }

    /// L2 miss ratio.
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }

    /// L3 miss ratio.
    pub fn l3_miss_rate(&self) -> f64 {
        ratio(self.l3_misses, self.l3_accesses)
    }

    /// Stall fraction: wait cycles over total cycles (the paper's
    /// `wait cycles` feature).
    pub fn wait_cycle_ratio(&self) -> f64 {
        ratio(self.wait_cycles, self.cycles)
    }

    /// L1D misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        1000.0 * ratio(self.l1d_misses, self.instructions)
    }

    /// Loads as a fraction of memory accesses.
    pub fn read_fraction(&self) -> f64 {
        ratio(self.mem_reads, self.mem_accesses())
    }
}

/// Raw counters for one MCU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct McuCounters {
    /// DRAM read commands issued.
    pub read_cmds: u64,
    /// DRAM write commands issued.
    pub write_cmds: u64,
    /// Row activations.
    pub row_activations: u64,
    /// Row-buffer hits.
    pub rowbuffer_hits: u64,
}

impl McuCounters {
    /// Total commands.
    pub fn total_cmds(&self) -> u64 {
        self.read_cmds + self.write_cmds
    }

    /// Row-buffer hit ratio.
    pub fn rowbuffer_hit_rate(&self) -> f64 {
        ratio(self.rowbuffer_hits, self.total_cmds())
    }
}

/// Counter snapshot of a complete SoC run; the source of the 247
/// perf-counter features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocReport {
    /// Per-core counters (fixed 8 cores on the modelled SoC).
    pub cores: Vec<CoreCounters>,
    /// Per-MCU counters (fixed [`MCU_COUNT`] channels).
    pub mcus: [McuCounters; MCU_COUNT],
    /// Core clock in Hz.
    pub clock_hz: f64,
}

impl SocReport {
    /// Wall-clock cycles of the run: the busiest core bounds the run on an
    /// in-order machine with barrier-free workloads.
    pub fn wall_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Wall-clock seconds of the run.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_cycles() as f64 / self.clock_hz
    }

    /// Total instructions across cores.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Total cycles summed over cores (for utilisation).
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).sum()
    }

    /// Aggregate IPC over the wall clock.
    pub fn ipc(&self) -> f64 {
        ratio(self.total_instructions(), self.wall_cycles())
    }

    /// Aggregate CPI (inverse of [`SocReport::ipc`]).
    pub fn cpi(&self) -> f64 {
        ratio(self.wall_cycles(), self.total_instructions())
    }

    /// Total loads.
    pub fn mem_reads(&self) -> u64 {
        self.cores.iter().map(|c| c.mem_reads).sum()
    }

    /// Total stores.
    pub fn mem_writes(&self) -> u64 {
        self.cores.iter().map(|c| c.mem_writes).sum()
    }

    /// Total memory accesses.
    pub fn mem_accesses(&self) -> u64 {
        self.mem_reads() + self.mem_writes()
    }

    /// Memory accesses per wall-clock cycle (the paper's top feature).
    pub fn mem_accesses_per_cycle(&self) -> f64 {
        ratio(self.mem_accesses(), self.wall_cycles())
    }

    /// Total wait cycles.
    pub fn wait_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.wait_cycles).sum()
    }

    /// Wait cycles over total cycles (the paper's `wait cycles` feature).
    pub fn wait_cycle_ratio(&self) -> f64 {
        ratio(self.wait_cycles(), self.total_cycles())
    }

    /// Core-utilisation: busy cycles over `cores × wall cycles`.
    pub fn cpu_utilization(&self) -> f64 {
        let wall = self.wall_cycles();
        if wall == 0 {
            return 0.0;
        }
        self.total_cycles() as f64 / (wall as f64 * self.cores.len() as f64)
    }

    /// Cores that retired at least one instruction.
    pub fn active_cores(&self) -> usize {
        self.cores.iter().filter(|c| c.instructions > 0).count()
    }

    /// Total DRAM read commands.
    pub fn dram_read_cmds(&self) -> u64 {
        self.mcus.iter().map(|m| m.read_cmds).sum()
    }

    /// Total DRAM write commands.
    pub fn dram_write_cmds(&self) -> u64 {
        self.mcus.iter().map(|m| m.write_cmds).sum()
    }

    /// Total DRAM commands.
    pub fn dram_cmds(&self) -> u64 {
        self.dram_read_cmds() + self.dram_write_cmds()
    }

    /// Total row activations across MCUs.
    pub fn row_activations(&self) -> u64 {
        self.mcus.iter().map(|m| m.row_activations).sum()
    }

    /// Row activations per wall-clock second.
    pub fn row_activation_rate_hz(&self) -> f64 {
        let secs = self.wall_seconds();
        if secs <= 0.0 {
            0.0
        } else {
            self.row_activations() as f64 / secs
        }
    }

    /// DRAM accesses (commands) per wall-clock second.
    pub fn dram_access_rate_hz(&self) -> f64 {
        let secs = self.wall_seconds();
        if secs <= 0.0 {
            0.0
        } else {
            self.dram_cmds() as f64 / secs
        }
    }

    /// Aggregate row-buffer hit rate.
    pub fn rowbuffer_hit_rate(&self) -> f64 {
        let hits: u64 = self.mcus.iter().map(|m| m.rowbuffer_hits).sum();
        ratio(hits, self.dram_cmds())
    }
}

pub(crate) fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SocReport {
        let mut cores = vec![CoreCounters::default(); 8];
        cores[0] = CoreCounters {
            instructions: 1000,
            cycles: 2000,
            mem_reads: 300,
            mem_writes: 100,
            l1d_accesses: 400,
            l1d_misses: 40,
            l2_accesses: 40,
            l2_misses: 8,
            l3_accesses: 8,
            l3_misses: 4,
            wait_cycles: 800,
            writebacks: 2,
        };
        cores[1] = CoreCounters { instructions: 500, cycles: 1000, ..Default::default() };
        let mut mcus = [McuCounters::default(); MCU_COUNT];
        mcus[0] = McuCounters { read_cmds: 4, write_cmds: 2, row_activations: 3, rowbuffer_hits: 3 };
        SocReport { cores, mcus, clock_hz: 2.4e9 }
    }

    #[test]
    fn core_derived_metrics() {
        let c = sample().cores[0];
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.cpi() - 2.0).abs() < 1e-12);
        assert!((c.l1d_miss_rate() - 0.1).abs() < 1e-12);
        assert!((c.wait_cycle_ratio() - 0.4).abs() < 1e-12);
        assert!((c.mem_accesses_per_cycle() - 0.2).abs() < 1e-12);
        assert!((c.read_fraction() - 0.75).abs() < 1e-12);
        assert!((c.mpki() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn soc_aggregates() {
        let r = sample();
        assert_eq!(r.wall_cycles(), 2000);
        assert_eq!(r.total_instructions(), 1500);
        assert_eq!(r.active_cores(), 2);
        assert!((r.ipc() - 0.75).abs() < 1e-12);
        assert!((r.cpu_utilization() - 3000.0 / 16000.0).abs() < 1e-12);
        assert_eq!(r.dram_cmds(), 6);
        assert!((r.rowbuffer_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idle_report_is_all_zero() {
        let r = SocReport { cores: vec![CoreCounters::default(); 8], mcus: Default::default(), clock_hz: 1.0 };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.wall_seconds(), 0.0);
        assert_eq!(r.dram_access_rate_hz(), 0.0);
        assert_eq!(r.active_cores(), 0);
    }

    #[test]
    fn rates_use_wall_seconds() {
        let r = sample();
        let secs = 2000.0 / 2.4e9;
        assert!((r.dram_access_rate_hz() - 6.0 / secs).abs() < 1.0);
    }
}
