//! The SoC assembly: cores + cache hierarchy + MCUs as one `AccessSink`.

use crate::cache::Cache;
use crate::config::SocConfig;
use crate::counters::{CoreCounters, McuCounters, SocReport};
use crate::mcu::{Mcu, MCU_COUNT};
use wade_trace::{AccessSink, MemAccess, StagedAccess};

/// Trace-driven model of the eight-core server SoC.
///
/// Accesses are routed by thread id to a core, then through that core's L1D,
/// the two-core module's shared L2, the shared L3 and finally one of four
/// MCUs. Timing is in-order: every instruction costs one cycle and each miss
/// adds (partially exposed) stall cycles, which accumulate into the
/// `wait cycles` counter the paper highlights.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct Soc {
    config: SocConfig,
    cores: Vec<CoreCounters>,
    l1d: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    mcus: [Mcu; MCU_COUNT],
    current_tid: u8,
}

impl Soc {
    /// Builds an idle SoC.
    pub fn new(config: SocConfig) -> Self {
        Self {
            cores: vec![CoreCounters::default(); config.cores],
            l1d: (0..config.cores).map(|_| Cache::new(config.l1d)).collect(),
            l2: (0..config.pmds()).map(|_| Cache::new(config.l2)).collect(),
            l3: Cache::new(config.l3),
            mcus: Default::default(),
            current_tid: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    fn stall(&self, penalty: u64) -> u64 {
        (penalty as f64 * self.config.stall_exposure).round() as u64
    }

    /// Snapshot of all counters.
    pub fn report(&self) -> SocReport {
        let mut mcus = [McuCounters::default(); MCU_COUNT];
        for (out, m) in mcus.iter_mut().zip(self.mcus.iter()) {
            *out = McuCounters {
                read_cmds: m.read_cmds(),
                write_cmds: m.write_cmds(),
                row_activations: m.row_activations(),
                rowbuffer_hits: (m.rowbuffer_hit_rate() * m.total_cmds() as f64).round() as u64,
            };
        }
        SocReport { cores: self.cores.clone(), mcus, clock_hz: self.config.clock_hz }
    }
}

impl Soc {
    /// The shared per-access routing of both sink paths.
    #[inline]
    fn route_access(&mut self, access: MemAccess) {
        let core_id = (access.tid as usize) % self.config.cores;
        self.current_tid = access.tid;
        let is_write = access.is_write();
        let addr = access.addr;

        // Retire the memory instruction itself.
        {
            let core = &mut self.cores[core_id];
            core.instructions += 1;
            core.cycles += 1;
            if is_write {
                core.mem_writes += 1;
            } else {
                core.mem_reads += 1;
            }
            core.l1d_accesses += 1;
        }

        // L1D.
        let l1_result = self.l1d[core_id].access(addr, is_write);
        if let crate::cache::AccessResult::Miss { writeback } = l1_result {
            let stall_l2 = self.stall(self.config.l2_latency);
            let pmd = core_id / 2;
            {
                let core = &mut self.cores[core_id];
                core.l1d_misses += 1;
                core.cycles += stall_l2;
                core.wait_cycles += stall_l2;
                core.l2_accesses += 1;
            }
            if let Some(victim) = writeback {
                self.cores[core_id].writebacks += 1;
                // Victim is installed into L2 (write-back, no recursive fill).
                let _ = self.l2[pmd].access(victim, true);
            }

            // L2.
            let l2_result = self.l2[pmd].access(addr, is_write);
            if let crate::cache::AccessResult::Miss { writeback } = l2_result {
                let stall_l3 = self.stall(self.config.l3_latency);
                {
                    let core = &mut self.cores[core_id];
                    core.l2_misses += 1;
                    core.cycles += stall_l3;
                    core.wait_cycles += stall_l3;
                    core.l3_accesses += 1;
                }
                if let Some(victim) = writeback {
                    self.cores[core_id].writebacks += 1;
                    let _ = self.l3.access(victim, true);
                }

                // L3.
                let l3_result = self.l3.access(addr, is_write);
                if let crate::cache::AccessResult::Miss { writeback } = l3_result {
                    let stall_dram = self.stall(self.config.dram_latency);
                    {
                        let core = &mut self.cores[core_id];
                        core.l3_misses += 1;
                        core.cycles += stall_dram;
                        core.wait_cycles += stall_dram;
                    }
                    if let Some(victim) = writeback {
                        self.cores[core_id].writebacks += 1;
                        self.mcus[Mcu::route(victim)].command(victim, true);
                    }
                    // Line fill from DRAM.
                    self.mcus[Mcu::route(addr)].command(addr, false);
                }
            }
        }
    }

    /// Non-memory instructions are attributed to the core of the most
    /// recent access (kernels interleave gap batches with their accesses).
    #[inline]
    fn retire_gap(&mut self, count: u64) {
        let core_id = (self.current_tid as usize) % self.config.cores;
        let core = &mut self.cores[core_id];
        core.instructions += count;
        core.cycles += count;
    }
}

impl AccessSink for Soc {
    fn on_access(&mut self, access: MemAccess) {
        self.route_access(access);
    }

    fn on_instructions(&mut self, count: u64) {
        self.retire_gap(count);
    }

    fn on_accesses(&mut self, batch: &[StagedAccess]) {
        // One virtual boundary per slice. Each gap retires on the core of
        // the access *preceding* it (`current_tid` is still that access's
        // thread), exactly as in the interleaved call stream.
        for staged in batch {
            if staged.gap_before > 0 {
                self.retire_gap(staged.gap_before);
            }
            self.route_access(staged.access);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wade_trace::synthetic::{RandomAccess, StridedSweep, ValuePattern};

    #[test]
    fn small_working_set_stays_in_l1() {
        let mut soc = Soc::new(SocConfig::x_gene2());
        // 2 KiB working set swept many times fits the 32 KiB L1D.
        let sweep = StridedSweep { words: 256, passes: 50, stride: 1, pattern: ValuePattern::Zeros, gap: 2 };
        sweep.run(&mut soc, 1);
        let r = soc.report();
        assert!(r.cores[0].l1d_miss_rate() < 0.01, "{}", r.cores[0].l1d_miss_rate());
        assert!(r.cores[0].ipc() > 0.9);
    }

    #[test]
    fn huge_working_set_reaches_dram() {
        let mut soc = Soc::new(SocConfig::tiny_for_tests());
        let gen = RandomAccess {
            words: 1 << 18, // 2 MiB >> 16 KiB tiny L3
            accesses: 50_000,
            write_fraction: 0.3,
            pattern: ValuePattern::Random,
            gap: 1,
        };
        gen.run(&mut soc, 2);
        let r = soc.report();
        assert!(r.dram_cmds() > 10_000, "dram cmds: {}", r.dram_cmds());
        assert!(r.wait_cycle_ratio() > 0.3);
        assert!(r.ipc() < 1.0);
    }

    #[test]
    fn threads_spread_across_cores() {
        let mut soc = Soc::new(SocConfig::x_gene2());
        for tid in 0..8u8 {
            for i in 0..100u64 {
                soc.on_access(MemAccess::read(i * 64 + ((tid as u64) << 20), tid));
                soc.on_instructions(5);
            }
        }
        let r = soc.report();
        assert_eq!(r.active_cores(), 8);
        assert!(r.cpu_utilization() > 0.9);
    }

    #[test]
    fn writebacks_generate_dram_writes() {
        let mut soc = Soc::new(SocConfig::tiny_for_tests());
        // Write-sweep far beyond the hierarchy: every fill eventually evicts
        // a dirty line all the way out to DRAM.
        let sweep = StridedSweep {
            words: 1 << 17, // 1 MiB
            passes: 2,
            stride: 8, // one access per line
            pattern: ValuePattern::Random,
            gap: 0,
        };
        sweep.run(&mut soc, 3);
        let r = soc.report();
        assert!(r.dram_write_cmds() > 1000, "writes: {}", r.dram_write_cmds());
    }

    #[test]
    fn instruction_batches_attribute_to_last_tid() {
        let mut soc = Soc::new(SocConfig::x_gene2());
        soc.on_access(MemAccess::read(0, 5));
        soc.on_instructions(100);
        let r = soc.report();
        assert_eq!(r.cores[5].instructions, 101);
    }

    #[test]
    fn wall_cycles_is_max_core() {
        let mut soc = Soc::new(SocConfig::x_gene2());
        soc.on_access(MemAccess::read(0, 0));
        soc.on_instructions(10);
        soc.on_access(MemAccess::read(1 << 22, 1));
        let r = soc.report();
        assert_eq!(r.wall_cycles(), r.cores.iter().map(|c| c.cycles).max().unwrap());
    }
}
