//! SoC configuration (defaults model the X-Gene2 used in the paper).

use crate::cache::CacheConfig;
use serde::{Deserialize, Serialize};

/// Full SoC configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Number of cores (the X-Gene2 has 8).
    pub cores: usize,
    /// Core clock in Hz (2.4 GHz on the X-Gene2).
    pub clock_hz: f64,
    /// Private L1 data cache per core.
    pub l1d: CacheConfig,
    /// L2 cache shared by each two-core module (PMD).
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub l3: CacheConfig,
    /// Extra stall cycles for an L1 miss that hits L2.
    pub l2_latency: u64,
    /// Extra stall cycles for an L2 miss that hits L3.
    pub l3_latency: u64,
    /// Extra stall cycles for an L3 miss served by DRAM.
    pub dram_latency: u64,
    /// Fraction of a miss penalty actually exposed as stall on the in-order
    /// pipeline (models limited memory-level parallelism; 1.0 = fully
    /// exposed).
    pub stall_exposure: f64,
}

impl SocConfig {
    /// The X-Gene2-like default: 8 cores @ 2.4 GHz, 32 KiB L1D, 256 KiB L2
    /// per two-core PMD, 8 MiB shared L3, DDR3-1866 latencies.
    pub fn x_gene2() -> Self {
        Self {
            cores: 8,
            clock_hz: 2.4e9,
            l1d: CacheConfig { capacity_bytes: 32 << 10, ways: 8, line_bytes: 64 },
            l2: CacheConfig { capacity_bytes: 256 << 10, ways: 8, line_bytes: 64 },
            l3: CacheConfig { capacity_bytes: 8 << 20, ways: 16, line_bytes: 64 },
            l2_latency: 10,
            l3_latency: 35,
            dram_latency: 150,
            stall_exposure: 0.7,
        }
    }

    /// A scaled-down configuration for fast unit tests: same shape, tiny
    /// caches so misses are easy to provoke.
    pub fn tiny_for_tests() -> Self {
        Self {
            cores: 8,
            clock_hz: 2.4e9,
            l1d: CacheConfig { capacity_bytes: 1 << 10, ways: 2, line_bytes: 64 },
            l2: CacheConfig { capacity_bytes: 4 << 10, ways: 4, line_bytes: 64 },
            l3: CacheConfig { capacity_bytes: 16 << 10, ways: 4, line_bytes: 64 },
            l2_latency: 10,
            l3_latency: 35,
            dram_latency: 150,
            stall_exposure: 0.7,
        }
    }

    /// Number of two-core modules (PMDs) sharing an L2.
    pub fn pmds(&self) -> usize {
        self.cores.div_ceil(2)
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        Self::x_gene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_x_gene2() {
        let c = SocConfig::default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.pmds(), 4);
        assert_eq!(c.l1d.sets(), 64);
    }

    #[test]
    fn tiny_config_is_valid() {
        let c = SocConfig::tiny_for_tests();
        assert!(c.l1d.sets() > 0);
        assert!(c.l2.sets() > 0);
        assert!(c.l3.sets() > 0);
    }
}
