//! Datasets with group labels (groups = workloads, for LOWO-CV).

use serde::{Deserialize, Serialize};

/// One training sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input features.
    pub features: Vec<f64>,
    /// Regression target.
    pub target: f64,
    /// Group label; the paper's cross-validation leaves one *workload's*
    /// samples out at a time (§III-F, Fig. 3).
    pub group: String,
}

/// A labelled dataset with a fixed feature dimension.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    samples: Vec<Sample>,
}

impl Dataset {
    /// An empty dataset of `dim`-dimensional samples.
    pub fn new(dim: usize) -> Self {
        Self { dim, samples: Vec::new() }
    }

    /// Adds one sample.
    ///
    /// # Panics
    /// Panics on dimension mismatch or non-finite values.
    pub fn push(&mut self, features: Vec<f64>, target: f64, group: String) {
        assert_eq!(features.len(), self.dim, "feature dimension mismatch");
        assert!(features.iter().all(|v| v.is_finite()), "non-finite feature");
        assert!(target.is_finite(), "non-finite target");
        self.samples.push(Sample { features, target, group });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are present.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The samples in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Feature matrix (row per sample).
    pub fn features(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.features.clone()).collect()
    }

    /// Target vector.
    pub fn targets(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.target).collect()
    }

    /// Distinct group labels, in first-appearance order.
    pub fn groups(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for s in &self.samples {
            if !seen.contains(&s.group) {
                seen.push(s.group.clone());
            }
        }
        seen
    }

    /// Splits into (train, test) leaving out one group — the paper's
    /// leave-one-out partitioning (Fig. 3's validation process).
    pub fn split_leave_group_out(&self, group: &str) -> (Dataset, Dataset) {
        let mut train = Dataset::new(self.dim);
        let mut test = Dataset::new(self.dim);
        for s in &self.samples {
            if s.group == group {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        (train, test)
    }

    /// Splits directly into the `(train_x, train_y, test_x, test_y)`
    /// matrices trainers consume, leaving out one group. Equivalent to
    /// `split_leave_group_out` followed by `features()`/`targets()` on both
    /// halves — same rows, same order — but with a single clone per sample
    /// instead of two (the intermediate `Dataset`s cloned every `Sample`
    /// only to be cloned again into matrices; this is the EvalGrid hot
    /// path).
    #[allow(clippy::type_complexity)]
    pub fn split_xy_leave_group_out(
        &self,
        group: &str,
    ) -> (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>) {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut test_y = Vec::new();
        for s in &self.samples {
            if s.group == group {
                test_x.push(s.features.clone());
                test_y.push(s.target);
            } else {
                train_x.push(s.features.clone());
                train_y.push(s.target);
            }
        }
        (train_x, train_y, test_x, test_y)
    }

    /// Column `j` across all samples (for correlation studies).
    pub fn column(&self, j: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s.features[j]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(2);
        d.push(vec![1.0, 2.0], 10.0, "a".into());
        d.push(vec![3.0, 4.0], 20.0, "b".into());
        d.push(vec![5.0, 6.0], 30.0, "a".into());
        d
    }

    #[test]
    fn push_and_query() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.groups(), vec!["a".to_string(), "b".to_string()]);
        assert_eq!(d.column(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(d.targets(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn leave_group_out_partitions() {
        let d = toy();
        let (train, test) = d.split_leave_group_out("a");
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 2);
        assert!(test.samples().iter().all(|s| s.group == "a"));
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        toy().push(vec![1.0], 0.0, "x".into());
    }

    #[test]
    #[should_panic(expected = "non-finite target")]
    fn nan_target_panics() {
        toy().push(vec![1.0, 2.0], f64::NAN, "x".into());
    }
}
