//! Leave-one-group-out cross-validation (the paper's §III-F protocol).
//!
//! Folds are independent — each trains on its own copy of the remaining
//! groups — so [`leave_one_group_out`] fans them out on the shared rayon
//! pool and merges outcomes back in group order. Output is byte-identical
//! at any thread count (`tests/ml_parallel.rs`).

use crate::dataset::Dataset;
use crate::model::{Regressor, Trainer};
use rayon::prelude::*;

/// Per-group cross-validation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupCvOutcome {
    /// The held-out group (a workload name in WADE).
    pub group: String,
    /// Predictions on the held-out samples, in dataset order.
    pub predictions: Vec<f64>,
    /// Ground-truth targets for those samples.
    pub actuals: Vec<f64>,
}

impl GroupCvOutcome {
    /// Applies a metric function to this group's predictions.
    pub fn score(&self, metric: impl Fn(&[f64], &[f64]) -> f64) -> f64 {
        metric(&self.predictions, &self.actuals)
    }
}

/// Runs leave-one-group-out CV: for every group, trains on all other
/// groups' samples and predicts the held-out ones — exactly the paper's
/// "copy all samples except the specific workload's into the training set"
/// loop (Fig. 3, right).
///
/// Folds run in parallel on the shared rayon pool; outcomes come back in
/// group (first-appearance) order, byte-identical at any thread count.
///
/// Groups whose removal would leave an empty training set are skipped.
pub fn leave_one_group_out<T: Trainer + Sync>(data: &Dataset, trainer: &T) -> Vec<GroupCvOutcome> {
    data.groups()
        .into_par_iter()
        .map(|group| {
            let (train, test) = data.split_leave_group_out(&group);
            if train.is_empty() || test.is_empty() {
                return None;
            }
            let model = trainer.train(&train.features(), &train.targets());
            let predictions = model.predict_batch(&test.features());
            Some(GroupCvOutcome { group, predictions, actuals: test.targets() })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnTrainer;
    use crate::metrics::mean_percentage_error;

    fn smooth_dataset() -> Dataset {
        // Target = 10·x0 + x1; every x0 value appears in every group, so a
        // held-out group is always interpolable from the others.
        let mut d = Dataset::new(2);
        for i in 0..80 {
            let x0 = ((i / 4) % 8) as f64;
            let x1 = (i / 32) as f64;
            d.push(vec![x0, x1], 10.0 * x0 + x1 + 1.0, format!("g{}", i % 4));
        }
        d
    }

    #[test]
    fn every_group_is_tested_once() {
        let data = smooth_dataset();
        let outcomes = leave_one_group_out(&data, &KnnTrainer::new(3));
        assert_eq!(outcomes.len(), 4);
        let tested: usize = outcomes.iter().map(|o| o.predictions.len()).sum();
        assert_eq!(tested, data.len());
    }

    #[test]
    fn smooth_targets_cross_validate_well() {
        let data = smooth_dataset();
        let outcomes = leave_one_group_out(&data, &KnnTrainer::new(3));
        for o in &outcomes {
            let mpe = o.score(mean_percentage_error);
            assert!(mpe < 40.0, "group {} mpe {mpe}", o.group);
        }
    }

    #[test]
    fn single_group_dataset_yields_nothing() {
        let mut d = Dataset::new(1);
        d.push(vec![1.0], 1.0, "only".into());
        d.push(vec![2.0], 2.0, "only".into());
        assert!(leave_one_group_out(&d, &KnnTrainer::new(1)).is_empty());
    }
}
