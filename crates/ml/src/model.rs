//! The regressor/trainer abstractions.

/// A trained regression model.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    fn predict(&self, features: &[f64]) -> f64;

    /// Predicts a batch (convenience; object-safe).
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

/// A training procedure producing a [`Regressor`].
///
/// Trainers own their hyper-parameters; `train` is deterministic for a
/// given trainer configuration and input (seeded internally where
/// randomness is needed).
pub trait Trainer {
    /// The model type produced.
    type Model: Regressor;

    /// Fits a model to the given rows and targets.
    ///
    /// # Panics
    /// Implementations panic on empty input or ragged rows.
    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> Self::Model;
}

/// Validates a training matrix: non-empty, consistent dims, finite values.
pub(crate) fn validate_training_input(x: &[Vec<f64>], y: &[f64]) -> usize {
    assert!(!x.is_empty(), "training set must not be empty");
    assert_eq!(x.len(), y.len(), "feature/target count mismatch");
    let dim = x[0].len();
    assert!(dim > 0, "features must not be empty");
    for row in x {
        assert_eq!(row.len(), dim, "ragged feature rows");
        assert!(row.iter().all(|v| v.is_finite()), "non-finite feature");
    }
    assert!(y.iter().all(|v| v.is_finite()), "non-finite target");
    dim
}

#[cfg(test)]
mod tests {
    use super::*;

    struct MeanModel(f64);

    impl Regressor for MeanModel {
        fn predict(&self, _features: &[f64]) -> f64 {
            self.0
        }
    }

    #[test]
    fn batch_prediction_uses_predict() {
        let m = MeanModel(7.0);
        assert_eq!(m.predict_batch(&[vec![1.0], vec![2.0]]), vec![7.0, 7.0]);
    }

    #[test]
    fn validation_accepts_good_input() {
        assert_eq!(validate_training_input(&[vec![1.0, 2.0]], &[3.0]), 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn validation_rejects_empty() {
        validate_training_input(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn validation_rejects_ragged() {
        validate_training_input(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 0.0]);
    }
}
