//! The parallel evaluation grid: every (trainer × dataset × fold) unit of a
//! model-comparison study in **one pool dispatch**, with trained models
//! memoized per `(trainer, dataset, fold)` key.
//!
//! The paper's headline results come from a systematic grid — model
//! families × input feature sets × targets, each cell leave-one-group-out
//! cross-validated (§III-F). Evaluated naively that is a triple-nested
//! serial loop whose innermost body (training) is the expensive part, and
//! whose consumers (figure binaries, summary tables) re-train overlapping
//! cells. [`EvalGrid`] flattens the whole study into independent fold
//! units, fans them out on the shared rayon pool and merges results back in
//! deterministic (trainer-major, dataset, fold) order — byte-identical at
//! any thread count, because every unit is a pure function of its inputs
//! (trainers must be deterministic, as the [`Trainer`](crate::Trainer)
//! contract requires).
//!
//! [`ModelCache`] is the memo: a fold's trained model is keyed by
//! `(trainer key, dataset key, held-out group)`, so consumers that request
//! overlapping cells after the dispatch (or interleaved smaller grids)
//! never pay for a training twice. Since training is deterministic, a memo
//! hit is bit-identical to a fresh training.
//!
//! Domain-specific wiring (which datasets exist, how fold predictions
//! aggregate into accuracy numbers) lives one layer up, in
//! `wade-core::EvalGrid`.

use crate::cv::GroupCvOutcome;
use crate::dataset::Dataset;
use crate::model::Regressor;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A trained model shared between evaluation units and consumers.
pub type SharedModel = Arc<dyn Regressor + Send + Sync>;

/// A boxed training function: `(fold key, features, targets) → model`.
/// Must be deterministic (same inputs, same model) for the grid's
/// byte-identity guarantee to hold. The [`ModelKey`] identifies the
/// (trainer, dataset, held-out group) unit being trained, so persistence
/// layers wrapping a trainer can address durable artifacts per fold
/// (wade-core's store-backed grid does exactly that) — plain trainers
/// simply ignore it.
pub type TrainFn<'a> = Box<dyn Fn(&ModelKey, &[Vec<f64>], &[f64]) -> SharedModel + Sync + 'a>;

/// Memo key of one trained fold model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Caller-chosen key identifying the trainer configuration.
    pub trainer: u64,
    /// Caller-chosen key identifying the dataset (target × feature view).
    pub dataset: u64,
    /// The held-out group of this fold (empty string = trained on all).
    pub fold: String,
}

/// Concurrent memo of trained models, keyed by [`ModelKey`].
#[derive(Default)]
pub struct ModelCache {
    map: Mutex<HashMap<ModelKey, SharedModel>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ModelCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized model for `key`, training it via `train` on a
    /// miss. Training runs outside the lock: a racing duplicate costs one
    /// redundant training but never stalls the pool, and because training
    /// is deterministic the result is the same whichever insertion wins.
    pub fn get_or_train(&self, key: ModelKey, train: impl FnOnce() -> SharedModel) -> SharedModel {
        if let Some(model) = self.map.lock().expect("model cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return model.clone();
        }
        let model = train();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().expect("model cache poisoned").entry(key).or_insert(model).clone()
    }

    /// Number of memo hits served so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of trainings performed (memo misses).
    pub fn trainings(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct models currently memoized.
    pub fn len(&self) -> usize {
        self.map.lock().expect("model cache poisoned").len()
    }

    /// True when nothing has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One evaluated grid cell: a trainer LOGO-cross-validated on a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The trainer key of this cell.
    pub trainer: u64,
    /// The dataset key of this cell.
    pub dataset: u64,
    /// Per-fold outcomes, in group (first-appearance) order. Folds whose
    /// training split fell below the grid's `min_train` floor are absent.
    pub folds: Vec<GroupCvOutcome>,
}

/// The grid harness: registered trainers × registered datasets, evaluated
/// with leave-one-group-out CV in one parallel dispatch (see the module
/// docs for the determinism contract).
pub struct EvalGrid<'a> {
    trainers: Vec<(u64, TrainFn<'a>)>,
    datasets: Vec<(u64, Dataset)>,
    min_train: usize,
    cache: ModelCache,
}

impl<'a> EvalGrid<'a> {
    /// An empty grid with no training-fold floor (`min_train = 1`).
    pub fn new() -> Self {
        Self::with_min_train(1)
    }

    /// An empty grid that skips folds whose training split has fewer than
    /// `min_train` samples (the paper-protocol guard one layer up).
    pub fn with_min_train(min_train: usize) -> Self {
        Self {
            trainers: Vec::new(),
            datasets: Vec::new(),
            min_train: min_train.max(1),
            cache: ModelCache::new(),
        }
    }

    /// Registers a trainer under a caller-chosen key.
    pub fn add_trainer(&mut self, key: u64, train: TrainFn<'a>) {
        self.trainers.push((key, train));
    }

    /// Registers a dataset under a caller-chosen key.
    pub fn add_dataset(&mut self, key: u64, dataset: Dataset) {
        self.datasets.push((key, dataset));
    }

    /// The model memo (hit/training counters included).
    pub fn cache(&self) -> &ModelCache {
        &self.cache
    }

    /// Evaluates every (trainer × dataset × fold) cell in one dispatch on
    /// the shared rayon pool. The parallel unit is a (dataset, fold) pair:
    /// the train/test split is materialized once and shared by all
    /// registered trainers (splitting clones the feature matrix, so
    /// per-trainer units would redo that work T times). Cells come back
    /// trainer-major in registration order; fold outcomes in group order.
    /// Byte-identical at any thread count.
    pub fn evaluate(&self) -> Vec<CellOutcome> {
        // Flatten the study into independent (dataset, fold) units.
        let mut units: Vec<(usize, String)> = Vec::new();
        for (di, (_, ds)) in self.datasets.iter().enumerate() {
            for group in ds.groups() {
                units.push((di, group));
            }
        }
        // Per unit: one outcome slot per trainer.
        let mut outcomes: Vec<Vec<Option<GroupCvOutcome>>> =
            units.par_iter().map(|(di, group)| self.run_unit(*di, group)).collect();

        // Order-stable merge back into trainer-major cells, consuming the
        // outcome slots (no re-clone of fold predictions). Dataset di's
        // units occupy a contiguous run of the unit list.
        let mut dataset_start = Vec::with_capacity(self.datasets.len());
        let mut at = 0;
        for (_, ds) in &self.datasets {
            dataset_start.push(at);
            at += ds.groups().len();
        }
        let mut cells: Vec<CellOutcome> =
            Vec::with_capacity(self.trainers.len() * self.datasets.len());
        for (ti, (tkey, _)) in self.trainers.iter().enumerate() {
            for (di, (dkey, ds)) in self.datasets.iter().enumerate() {
                let start = dataset_start[di];
                let folds = outcomes[start..start + ds.groups().len()]
                    .iter_mut()
                    .filter_map(|unit| unit[ti].take())
                    .collect();
                cells.push(CellOutcome { trainer: *tkey, dataset: *dkey, folds });
            }
        }
        cells
    }

    /// One (dataset, fold) unit: split once, gate on the training floor,
    /// then train every registered trainer through the memo and predict
    /// the held-out samples.
    fn run_unit(&self, di: usize, group: &str) -> Vec<Option<GroupCvOutcome>> {
        let (dkey, ds) = &self.datasets[di];
        // Split straight into matrices: the intermediate Dataset halves of
        // `split_leave_group_out` would clone every sample a second time on
        // the way to `features()`/`targets()`, and this runs per fold.
        let (train_x, train_y, test_x, actuals) = ds.split_xy_leave_group_out(group);
        if train_x.len() < self.min_train || test_x.is_empty() {
            return vec![None; self.trainers.len()];
        }
        self.trainers
            .iter()
            .map(|(tkey, train_fn)| {
                let key =
                    ModelKey { trainer: *tkey, dataset: *dkey, fold: group.to_string() };
                let model = self
                    .cache
                    .get_or_train(key.clone(), || train_fn(&key, &train_x, &train_y));
                Some(GroupCvOutcome {
                    group: group.to_string(),
                    predictions: model.predict_batch(&test_x),
                    actuals: actuals.clone(),
                })
            })
            .collect()
    }
}

impl Default for EvalGrid<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnTrainer;
    use crate::model::Trainer;

    fn dataset(offset: f64) -> Dataset {
        let mut d = Dataset::new(1);
        for i in 0..24 {
            let x = (i % 8) as f64;
            d.push(vec![x], 3.0 * x + offset, format!("g{}", i % 4));
        }
        d
    }

    fn knn_grid(min_train: usize) -> EvalGrid<'static> {
        let mut grid = EvalGrid::with_min_train(min_train);
        for k in [1u64, 3] {
            grid.add_trainer(
                k,
                Box::new(move |_key: &ModelKey, x: &[Vec<f64>], y: &[f64]| {
                    Arc::new(KnnTrainer::new(k as usize).train(x, y)) as SharedModel
                }),
            );
        }
        grid.add_dataset(0, dataset(0.0));
        grid.add_dataset(1, dataset(10.0));
        grid
    }

    #[test]
    fn grid_covers_every_cell_and_fold() {
        let grid = knn_grid(1);
        let cells = grid.evaluate();
        assert_eq!(cells.len(), 4, "2 trainers × 2 datasets");
        for cell in &cells {
            assert_eq!(cell.folds.len(), 4, "one outcome per group");
            let tested: usize = cell.folds.iter().map(|f| f.predictions.len()).sum();
            assert_eq!(tested, 24);
        }
        // One training per (trainer, dataset, fold) — nothing trained twice.
        assert_eq!(grid.cache().trainings(), 16);
        assert_eq!(grid.cache().hits(), 0);
    }

    #[test]
    fn grid_matches_fold_at_a_time_cv() {
        let grid = knn_grid(1);
        let cells = grid.evaluate();
        let reference = crate::cv::leave_one_group_out(&dataset(0.0), &KnnTrainer::new(1));
        assert_eq!(cells[0].folds, reference);
    }

    #[test]
    fn memo_serves_repeat_evaluations() {
        let grid = knn_grid(1);
        grid.evaluate();
        let trained = grid.cache().trainings();
        let again = grid.evaluate();
        assert_eq!(grid.cache().trainings(), trained, "no re-training on the second pass");
        assert_eq!(grid.cache().hits(), trained);
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn min_train_floor_skips_thin_folds() {
        // 4 groups × 6 samples: leaving one group out trains on 18, so a
        // floor of 19 skips every fold.
        let grid = knn_grid(19);
        let cells = grid.evaluate();
        assert!(cells.iter().all(|c| c.folds.is_empty()));
        assert_eq!(grid.cache().trainings(), 0);
    }
}
