//! CART regression trees (variance-reduction splits).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree growth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_split: usize,
    /// Features considered per split (`mtry`); `0` = all features.
    pub mtry: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self { max_depth: 12, min_split: 4, mtry: 0 }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
}

impl DecisionTree {
    /// Grows a tree on the index subset `idx` of `(x, y)` using `rng` for
    /// feature subsampling.
    pub fn grow(x: &[Vec<f64>], y: &[f64], idx: &[usize], params: TreeParams, rng: &mut StdRng) -> Self {
        assert!(!idx.is_empty(), "cannot grow a tree on no samples");
        let root = build(x, y, idx, params, rng, 0);
        Self { root }
    }

    /// Predicts the target for one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// The root node's `(feature, threshold)`, or `None` if the tree is a
    /// single leaf. Exposed for split-stability tests and introspection.
    pub fn root_split(&self) -> Option<(usize, f64)> {
        match &self.root {
            Node::Leaf { .. } => None,
            Node::Split { feature, threshold, .. } => Some((*feature, *threshold)),
        }
    }

    /// Depth of the tree (leaves at depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Appends this tree's nodes to the forest's SoA arena in preorder and
    /// returns the root's arena index. Layout convention: a split's left
    /// child is the next node (`i + 1`), its right child is `rights[i]`;
    /// leaves carry [`ARENA_LEAF`] in `features`, their value in
    /// `thresholds`, and their **own index** in `rights` — a leaf
    /// self-loops, so `rights` is total (no dummy sentinel) and a walk
    /// that steps a parked node stays parked. Preorder is a pure function
    /// of the tree shape, so the arena is as deterministic as the tree it
    /// came from.
    pub(crate) fn flatten_into(
        &self,
        features: &mut Vec<u16>,
        thresholds: &mut Vec<f64>,
        rights: &mut Vec<u32>,
    ) -> u32 {
        let root = u32::try_from(features.len()).expect("arena exceeds u32 node indices");
        flatten(&self.root, features, thresholds, rights);
        root
    }
}

/// Sentinel feature index marking a leaf in the flat-arena encoding.
pub(crate) const ARENA_LEAF: u16 = u16::MAX;

fn flatten(
    node: &Node,
    features: &mut Vec<u16>,
    thresholds: &mut Vec<f64>,
    rights: &mut Vec<u32>,
) {
    match node {
        Node::Leaf { value } => {
            let me = u32::try_from(features.len()).expect("arena exceeds u32 node indices");
            features.push(ARENA_LEAF);
            thresholds.push(*value);
            rights.push(me);
        }
        Node::Split { feature, threshold, left, right } => {
            assert!(
                *feature < ARENA_LEAF as usize,
                "feature index {feature} overflows the u16 arena encoding"
            );
            let me = features.len();
            features.push(*feature as u16);
            thresholds.push(*threshold);
            // Placeholder: the right child's index is known only after the
            // left subtree is laid out.
            rights.push(0);
            flatten(left, features, thresholds, rights);
            rights[me] = u32::try_from(features.len()).expect("arena exceeds u32 node indices");
            flatten(right, features, thresholds, rights);
        }
    }
}

fn mean(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse(y: &[f64], idx: &[usize]) -> f64 {
    let m = mean(y, idx);
    idx.iter().map(|&i| (y[i] - m).powi(2)).sum()
}

fn build(
    x: &[Vec<f64>],
    y: &[f64],
    idx: &[usize],
    params: TreeParams,
    rng: &mut StdRng,
    depth: usize,
) -> Node {
    if depth >= params.max_depth || idx.len() < params.min_split {
        return Node::Leaf { value: mean(y, idx) };
    }
    let parent_sse = sse(y, idx);
    if parent_sse <= 1e-18 {
        return Node::Leaf { value: mean(y, idx) };
    }

    let dim = x[0].len();
    let mut features: Vec<usize> = (0..dim).collect();
    let consider = if params.mtry == 0 { dim } else { params.mtry.min(dim) };
    features.shuffle(rng);
    features.truncate(consider);

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &feat in &features {
        // The node's (feature value, target) pairs, cached once per
        // feature: the candidate loop below scans them ~|idx| times, and
        // reading `x[i][feat]` through two indirections each time is what
        // the scan's cost was made of.
        let pairs: Vec<(f64, f64)> = idx.iter().map(|&i| (x[i][feat], y[i])).collect();
        // Candidate thresholds: midpoints of sorted unique values.
        let mut vals: Vec<f64> = pairs.iter().map(|&(v, _)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            // Fused allocation-free partition: each side's sums accumulate
            // in the same (idx-filtered) order the materialized left/right
            // index vectors produced, so every mean, SSE and gain below is
            // bit-identical to the historical two-vector scan.
            let (mut sum_l, mut n_l, mut sum_r, mut n_r) = (0.0f64, 0usize, 0.0f64, 0usize);
            for &(v, t) in &pairs {
                if v <= threshold {
                    sum_l += t;
                    n_l += 1;
                } else {
                    sum_r += t;
                    n_r += 1;
                }
            }
            if n_l == 0 || n_r == 0 {
                continue;
            }
            let (m_l, m_r) = (sum_l / n_l as f64, sum_r / n_r as f64);
            let (mut sse_l, mut sse_r) = (0.0f64, 0.0f64);
            for &(v, t) in &pairs {
                if v <= threshold {
                    sse_l += (t - m_l).powi(2);
                } else {
                    sse_r += (t - m_r).powi(2);
                }
            }
            let gain = parent_sse - sse_l - sse_r;
            // Duplicate gains break ties on the lowest (feature, threshold)
            // pair, so the chosen split never depends on the order the
            // shuffled feature subset was visited in — the grown tree is a
            // pure function of (data, params, rng draws), which the parallel
            // forest's determinism contract relies on.
            let better = match best {
                None => true,
                Some((bf, bt, bg)) => {
                    gain > bg || (gain == bg && (feat < bf || (feat == bf && threshold < bt)))
                }
            };
            if better {
                best = Some((feat, threshold, gain));
            }
        }
    }

    match best {
        Some((feature, threshold, gain)) if gain > 1e-12 => {
            let (mut left_idx, mut right_idx) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][feature] <= threshold {
                    left_idx.push(i);
                } else {
                    right_idx.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(x, y, &left_idx, params, rng, depth + 1)),
                right: Box::new(build(x, y, &right_idx, params, rng, depth + 1)),
            }
        }
        _ => Node::Leaf { value: mean(y, idx) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let idx: Vec<usize> = (0..20).collect();
        let tree = DecisionTree::grow(&x, &y, &idx, TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[3.0]), 1.0);
        assert_eq!(tree.predict(&[15.0]), 5.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..64).collect();
        let tree = DecisionTree::grow(
            &x,
            &y,
            &idx,
            TreeParams { max_depth: 3, min_split: 2, mtry: 0 },
            &mut rng(),
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn pure_leaves_stop_early() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![2.0; 10];
        let idx: Vec<usize> = (0..10).collect();
        let tree = DecisionTree::grow(&x, &y, &idx, TreeParams::default(), &mut rng());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[100.0]), 2.0);
    }

    #[test]
    fn splits_use_the_informative_feature() {
        // Feature 0 is noise, feature 1 determines the target.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            x.push(vec![(i * 7 % 13) as f64, (i % 2) as f64]);
            y.push(if i % 2 == 0 { 0.0 } else { 10.0 });
        }
        let idx: Vec<usize> = (0..30).collect();
        let tree = DecisionTree::grow(&x, &y, &idx, TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[5.0, 0.0]), 0.0);
        assert_eq!(tree.predict(&[5.0, 1.0]), 10.0);
    }

    #[test]
    fn duplicate_gain_prefers_the_lowest_feature_index() {
        // Features 0 and 1 are exact copies, so every candidate split on
        // feature 1 has the same gain as its twin on feature 0. Whatever
        // order the rng visits them in, the tie must resolve to feature 0.
        let x: Vec<Vec<f64>> = (0..16).map(|i| vec![(i % 2) as f64, (i % 2) as f64]).collect();
        let y: Vec<f64> = (0..16).map(|i| (i % 2) as f64 * 10.0).collect();
        let idx: Vec<usize> = (0..16).collect();
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = DecisionTree::grow(&x, &y, &idx, TreeParams::default(), &mut rng);
            match tree.root_split() {
                Some((feature, threshold)) => {
                    assert_eq!(feature, 0, "seed {seed} split on the higher twin");
                    assert_eq!(threshold, 0.5);
                }
                None => panic!("seed {seed} grew a leaf-only tree"),
            }
        }
    }

    #[test]
    fn extrapolation_is_piecewise_constant() {
        // Trees cannot extrapolate: queries beyond the data return edge
        // leaf values (this is why RDF loses to KNN on the exponential
        // TREFP trend — the paper's Fig. 11 observation).
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| (i as f64).exp()).collect();
        let idx: Vec<usize> = (0..10).collect();
        let tree = DecisionTree::grow(&x, &y, &idx, TreeParams::default(), &mut rng());
        assert_eq!(tree.predict(&[100.0]), tree.predict(&[9.0]));
    }
}
