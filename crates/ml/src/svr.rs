//! ε-insensitive support vector regression with an RBF kernel.
//!
//! Trained by kernel coordinate descent on the bias-free dual (targets are
//! centred instead, a standard SMO simplification): each pass solves the
//! one-dimensional sub-problem for `β_i ∈ [−C, C]` in closed form
//! (soft-thresholding by ε), which converges to the dual optimum of the
//! bias-free ε-SVR.

use crate::model::{validate_training_input, Regressor, Trainer};
use crate::scale::StandardScaler;
use serde::{Deserialize, Serialize};

/// SVR trainer (hyper-parameters: C, ε, RBF γ, iteration budget).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvrTrainer {
    /// Box constraint (regularisation).
    pub c: f64,
    /// ε-insensitive tube half-width.
    pub epsilon: f64,
    /// RBF kernel width: `k(a,b) = exp(−γ‖a−b‖²)`. `None` = `1/dim`
    /// (scikit-learn's `gamma="auto"`).
    pub gamma: Option<f64>,
    /// Coordinate-descent sweeps.
    pub max_passes: usize,
}

impl SvrTrainer {
    /// A reasonable default configuration for z-scored features.
    pub fn paper_default() -> Self {
        Self { c: 10.0, epsilon: 0.01, gamma: None, max_passes: 60 }
    }
}

impl Trainer for SvrTrainer {
    type Model = SvrRegressor;

    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> SvrRegressor {
        let dim = validate_training_input(x, y);
        let scaler = StandardScaler::fit(x);
        let xs = scaler.transform_batch(x);
        let gamma = self.gamma.unwrap_or(1.0 / dim as f64);
        let n = xs.len();

        // Centre the targets; the mean acts as the bias term.
        let bias = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - bias).collect();

        // Dense kernel matrix (campaign datasets are a few hundred rows).
        let mut kernel = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = rbf(&xs[i], &xs[j], gamma);
                kernel[i * n + j] = k;
                kernel[j * n + i] = k;
            }
        }

        // Coordinate descent on β.
        let mut beta = vec![0.0; n];
        let mut f = vec![0.0; n]; // f_i = Σ_j β_j K_ij
        for _pass in 0..self.max_passes {
            let mut max_delta = 0.0f64;
            for i in 0..n {
                let k_ii = kernel[i * n + i].max(1e-12);
                let residual = yc[i] - (f[i] - beta[i] * k_ii);
                // Closed-form minimiser with the ε-insensitive penalty:
                // soft-threshold the residual by ε, then box-clip.
                let unconstrained = soft_threshold(residual, self.epsilon) / k_ii;
                let new_beta = unconstrained.clamp(-self.c, self.c);
                let delta = new_beta - beta[i];
                if delta.abs() > 1e-12 {
                    for j in 0..n {
                        f[j] += delta * kernel[i * n + j];
                    }
                    beta[i] = new_beta;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < 1e-8 {
                break;
            }
        }

        // Keep only support vectors.
        let mut support = Vec::new();
        let mut coeffs = Vec::new();
        for (i, &b) in beta.iter().enumerate() {
            if b.abs() > 1e-10 {
                support.push(xs[i].clone());
                coeffs.push(b);
            }
        }
        SvrRegressor { support, coeffs, bias, gamma, scaler }
    }
}

fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y).powi(2)).sum();
    (-gamma * d2).exp()
}

fn soft_threshold(v: f64, eps: f64) -> f64 {
    if v > eps {
        v - eps
    } else if v < -eps {
        v + eps
    } else {
        0.0
    }
}

/// Trained SVR model: support vectors, dual coefficients and bias.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvrRegressor {
    support: Vec<Vec<f64>>,
    coeffs: Vec<f64>,
    bias: f64,
    gamma: f64,
    scaler: StandardScaler,
}

impl SvrRegressor {
    /// Number of support vectors kept.
    pub fn support_count(&self) -> usize {
        self.support.len()
    }
}

impl Regressor for SvrRegressor {
    fn predict(&self, features: &[f64]) -> f64 {
        let q = self.scaler.transform(features);
        let mut acc = self.bias;
        for (sv, &b) in self.support.iter().zip(self.coeffs.iter()) {
            acc += b * rbf(sv, &q, self.gamma);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_smooth_function() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 4.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0]).sin()).collect();
        let model = SvrTrainer::paper_default().train(&x, &y);
        for (xi, yi) in x.iter().zip(y.iter()) {
            let p = model.predict(xi);
            assert!((p - yi).abs() < 0.15, "f({}) = {p}, want {yi}", xi[0]);
        }
    }

    #[test]
    fn epsilon_tube_sparsifies() {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 0.01 * r[0]).collect();
        let tight = SvrTrainer { epsilon: 0.001, ..SvrTrainer::paper_default() }.train(&x, &y);
        let loose = SvrTrainer { epsilon: 0.3, ..SvrTrainer::paper_default() }.train(&x, &y);
        assert!(loose.support_count() <= tight.support_count());
    }

    #[test]
    fn constant_targets_yield_constant_model() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 10];
        let model = SvrTrainer::paper_default().train(&x, &y);
        assert!((model.predict(&[3.5]) - 5.0).abs() < 1e-6);
        assert_eq!(model.support_count(), 0, "everything inside the ε-tube");
    }

    #[test]
    fn interpolates_between_points() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let model = SvrTrainer::paper_default().train(&x, &y);
        let p = model.predict(&[2.5]);
        assert!((p - 2.5).abs() < 0.4, "pred {p}");
    }

    #[test]
    fn soft_threshold_properties() {
        assert_eq!(soft_threshold(5.0, 1.0), 4.0);
        assert_eq!(soft_threshold(-5.0, 1.0), -4.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }
}
