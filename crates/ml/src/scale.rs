//! Feature standardisation (z-scoring).

use serde::{Deserialize, Serialize};

/// Per-feature z-score scaler: `(x − mean) / std`.
///
/// Distance-based learners (KNN, RBF-SVR) are scale-sensitive; all WADE
/// trainers standardise internally with statistics from the training fold
/// only (no test-set leakage).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler on the rows.
    ///
    /// # Panics
    /// Panics on empty input or ragged rows.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        // Exact constancy per column: a column of identical values must
        // stay inert (std forced to 1), and detecting it *exactly* avoids
        // any threshold. The computed mean of such a column may differ
        // from the value by rounding, leaving noise variance that a plain
        // `s > 0` check would amplify into ±1 transforms — while any
        // magnitude-relative threshold would instead squash genuine
        // ulp-scale variance (both caught by tests/ml_properties.rs).
        let mut constant = vec![true; dim];
        let mut means = vec![0.0; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged rows");
            for ((m, c), (v, first)) in means
                .iter_mut()
                .zip(constant.iter_mut())
                .zip(row.iter().zip(rows[0].iter()))
            {
                *m += v;
                *c &= v == first;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in rows {
            for ((var, v), m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
                *var += (v - m).powi(2);
            }
        }
        let stds = vars
            .into_iter()
            .zip(constant)
            .map(|(v, is_constant)| {
                let s = (v / n).sqrt();
                // `s == 0` without exact constancy means the genuine
                // variance underflowed f64 — equally inert.
                if is_constant || s == 0.0 {
                    1.0
                } else {
                    s
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Transforms one row.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a batch of rows.
    pub fn transform_batch(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_unit_variance_after_transform() {
        let rows = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        let scaler = StandardScaler::fit(&rows);
        let t = scaler.transform_batch(&rows);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[j].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_feature_maps_to_zero() {
        let rows = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&rows);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
        assert!(scaler.transform(&[6.0])[0].is_finite());
    }

    #[test]
    fn transform_is_affine() {
        let rows = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&rows);
        let a = scaler.transform(&[0.0])[0];
        let b = scaler.transform(&[10.0])[0];
        let mid = scaler.transform(&[5.0])[0];
        assert!((mid - (a + b) / 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        StandardScaler::fit(&[]);
    }
}
