//! K-nearest-neighbours regression — the paper's most accurate model.

use crate::model::{validate_training_input, Regressor, Trainer};
use crate::scale::StandardScaler;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// KNN trainer (hyper-parameter: `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnTrainer {
    k: usize,
}

impl KnnTrainer {
    /// Creates a trainer with the given neighbour count.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k }
    }

    /// The paper's configuration (k = 4 neighbours works well on ~10
    /// operating points per workload).
    pub fn paper_default() -> Self {
        Self::new(4)
    }
}

impl Trainer for KnnTrainer {
    type Model = KnnRegressor;

    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> KnnRegressor {
        validate_training_input(x, y);
        let scaler = StandardScaler::fit(x);
        KnnRegressor {
            k: self.k,
            x: scaler.transform_batch(x),
            y: y.to_vec(),
            scaler,
        }
    }
}

/// Trained KNN model: memorised (z-scored) training set with
/// inverse-distance-weighted prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    scaler: StandardScaler,
}

impl Regressor for KnnRegressor {
    fn predict(&self, features: &[f64]) -> f64 {
        let q = self.scaler.transform(features);
        // Collect (distance², sample index, target) and take the k smallest
        // under the *total* order (distance, index): the index tiebreaker
        // makes the neighbour set — and the order weights accumulate in — a
        // pure function of the training set, never of the selection
        // algorithm's internal element ordering. Duplicate distances are
        // common on gridded campaign data, so this is what keeps prediction
        // byte-identical across refactors and parallel fan-outs.
        let mut dist: Vec<(f64, usize, f64)> = self
            .x
            .iter()
            .zip(self.y.iter())
            .enumerate()
            .map(|(i, (row, &t))| {
                let d2: f64 = row.iter().zip(q.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                (d2, i, t)
            })
            .collect();
        let k = self.k.min(dist.len());
        let by_distance_then_index = |a: &(f64, usize, f64), b: &(f64, usize, f64)| {
            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
        };
        dist.select_nth_unstable_by(k - 1, by_distance_then_index);
        let neighbours = &mut dist[..k];
        neighbours.sort_unstable_by(by_distance_then_index);

        // Inverse-distance weighting; an exact hit dominates.
        let mut wsum = 0.0;
        let mut acc = 0.0;
        for &(d2, _, t) in neighbours.iter() {
            if d2 < 1e-18 {
                return t;
            }
            let w = 1.0 / d2.sqrt();
            wsum += w;
            acc += w * t;
        }
        acc / wsum
    }

    /// Query rows are independent, so the batch fans out on the shared
    /// rayon pool (order-stable merge — byte-identical to the serial loop
    /// at any thread count). Single-row batches stay inline.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.len() < 2 {
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        rows.par_iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                y.push(3.0 * i as f64 - 2.0 * j as f64);
            }
        }
        (x, y)
    }

    #[test]
    fn exact_training_point_is_reproduced() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        assert_eq!(model.predict(&[5.0, 5.0]), 5.0);
    }

    #[test]
    fn interpolation_is_close_on_smooth_targets() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        let pred = model.predict(&[4.5, 4.5]);
        assert!((pred - 4.5).abs() < 1.5, "pred {pred}");
    }

    #[test]
    fn k_larger_than_dataset_degrades_to_global_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 10.0];
        let model = KnnTrainer::new(50).train(&x, &y);
        let pred = model.predict(&[0.5]);
        assert!((pred - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_makes_axes_comparable() {
        // Feature 1 has a huge scale; without z-scoring it would drown
        // feature 0 entirely.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1_000_000.0],
            vec![2.0, 2_000_000.0],
            vec![3.0, 3_000_000.0],
        ];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let model = KnnTrainer::new(1).train(&x, &y);
        // Query close to sample 2 in *scaled* space.
        let pred = model.predict(&[2.1, 2_100_000.0]);
        assert_eq!(pred, 2.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KnnTrainer::new(0);
    }

    #[test]
    fn duplicate_distances_break_ties_on_sample_index() {
        // Four training points all equidistant from the query, but k = 2:
        // the neighbour set must be the two *lowest-index* samples, so the
        // prediction is their (equal-weight) mean — not whichever pair the
        // selection algorithm happened to leave in front.
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0], vec![0.0, -1.0]];
        let y = vec![10.0, 20.0, 70.0, 80.0];
        let model = KnnTrainer::new(2).train(&x, &y);
        let pred = model.predict(&[0.0, 0.0]);
        assert_eq!(pred, 15.0, "expected the mean of samples 0 and 1");
    }

    #[test]
    fn batch_prediction_matches_the_serial_loop() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        let queries: Vec<Vec<f64>> =
            (0..40).map(|i| vec![i as f64 * 0.31, (40 - i) as f64 * 0.27]).collect();
        let serial: Vec<f64> = queries.iter().map(|q| model.predict(q)).collect();
        assert_eq!(model.predict_batch(&queries), serial);
    }
}
