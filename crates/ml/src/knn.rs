//! K-nearest-neighbours regression — the paper's most accurate model.

use crate::model::{validate_training_input, Regressor, Trainer};
use crate::scale::StandardScaler;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// KNN trainer (hyper-parameter: `k`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnnTrainer {
    k: usize,
}

impl KnnTrainer {
    /// Creates a trainer with the given neighbour count.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self { k }
    }

    /// The paper's configuration (k = 4 neighbours works well on ~10
    /// operating points per workload).
    pub fn paper_default() -> Self {
        Self::new(4)
    }
}

impl Trainer for KnnTrainer {
    type Model = KnnRegressor;

    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> KnnRegressor {
        validate_training_input(x, y);
        let scaler = StandardScaler::fit(x);
        let x = scaler.transform_batch(x);
        let axis = widest_axis(&x);
        let order = axis_order(&x, axis);
        KnnRegressor { k: self.k, x, y: y.to_vec(), scaler, axis, order }
    }
}

/// The feature with the widest (z-scored) value range — the single-axis
/// split the pruned neighbour search scans along. Ties resolve to the
/// lowest feature index, so the axis is a pure function of the training
/// set.
fn widest_axis(x: &[Vec<f64>]) -> usize {
    let dim = x[0].len();
    let mut best = 0usize;
    let mut best_range = f64::NEG_INFINITY;
    for a in 0..dim {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for row in x {
            lo = lo.min(row[a]);
            hi = hi.max(row[a]);
        }
        let range = hi - lo;
        if range > best_range {
            best_range = range;
            best = a;
        }
    }
    best
}

/// Sample indices sorted by `(value on axis, index)` — the scan order of
/// the pruned search. The index tiebreaker keeps the order deterministic
/// on gridded data full of duplicate values.
fn axis_order(x: &[Vec<f64>], axis: usize) -> Vec<u32> {
    let mut order: Vec<u32> =
        (0..u32::try_from(x.len()).expect("training set exceeds u32 indices")).collect();
    order.sort_unstable_by(|&a, &b| {
        x[a as usize][axis].total_cmp(&x[b as usize][axis]).then(a.cmp(&b))
    });
    order
}

/// Trained KNN model: memorised (z-scored) training set with
/// inverse-distance-weighted prediction, plus the widest-axis scan order
/// that lets prediction prune candidates it can prove are too far.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    scaler: StandardScaler,
    axis: usize,
    order: Vec<u32>,
}

fn by_distance_then_index(a: &(f64, usize, f64), b: &(f64, usize, f64)) -> core::cmp::Ordering {
    a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
}

/// Inverse-distance weighting over neighbours already sorted by
/// `(distance², index)`; an exact hit dominates. Shared verbatim by the
/// pruned and exhaustive paths — bit-identical inputs give bit-identical
/// predictions.
fn weighted_prediction(neighbours: &[(f64, usize, f64)]) -> f64 {
    let mut wsum = 0.0;
    let mut acc = 0.0;
    for &(d2, _, t) in neighbours {
        if d2 < 1e-18 {
            return t;
        }
        let w = 1.0 / d2.sqrt();
        wsum += w;
        acc += w * t;
    }
    acc / wsum
}

impl KnnRegressor {
    /// Exhaustive-scan prediction — the reference path the pruned
    /// [`Regressor::predict`] is bit-identical to (`tests/` pin this).
    ///
    /// Collects (distance², sample index, target) for *every* training
    /// point and takes the k smallest under the *total* order
    /// (distance, index): the index tiebreaker makes the neighbour set —
    /// and the order weights accumulate in — a pure function of the
    /// training set, never of the selection algorithm's internal element
    /// ordering. Duplicate distances are common on gridded campaign data,
    /// so this is what keeps prediction byte-identical across refactors
    /// and parallel fan-outs.
    pub fn predict_exhaustive(&self, features: &[f64]) -> f64 {
        let q = self.scaler.transform(features);
        let mut dist: Vec<(f64, usize, f64)> = self
            .x
            .iter()
            .zip(self.y.iter())
            .enumerate()
            .map(|(i, (row, &t))| {
                let d2: f64 = row.iter().zip(q.iter()).map(|(a, b)| (a - b).powi(2)).sum();
                (d2, i, t)
            })
            .collect();
        let k = self.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, by_distance_then_index);
        let neighbours = &mut dist[..k];
        neighbours.sort_unstable_by(by_distance_then_index);
        weighted_prediction(neighbours)
    }
}

impl Regressor for KnnRegressor {
    /// Pruned neighbour search: scan candidates outward from the query's
    /// position along the widest axis, and stop a direction once its axis
    /// distance alone *strictly* exceeds the current k-th best distance
    /// (equal distances can still win on a lower index, so equality keeps
    /// scanning). Per-candidate distances accumulate feature-by-feature in
    /// the same order as the exhaustive scan — abandoning only when the
    /// partial sum strictly exceeds the k-th best — so every admitted
    /// distance is bit-identical and the selected set is exactly the k
    /// smallest under (distance², index).
    fn predict(&self, features: &[f64]) -> f64 {
        let n = self.x.len();
        let k = self.k.min(n);
        if k == n {
            // Every point is a neighbour; nothing to prune.
            return self.predict_exhaustive(features);
        }
        let q = self.scaler.transform(features);
        let qa = q[self.axis];
        let split = self.order.partition_point(|&i| self.x[i as usize][self.axis] < qa);

        // Current k best as (distance², index, target); `worst` caches the
        // maximum under the (distance², index) total order once full.
        let mut best: Vec<(f64, usize, f64)> = Vec::with_capacity(k);
        let mut worst = (f64::INFINITY, usize::MAX);
        let mut li = split; // candidates order[..li], scanned right-to-left
        let mut ri = split; // candidates order[ri..], scanned left-to-right
        loop {
            let ld = if li > 0 {
                (qa - self.x[self.order[li - 1] as usize][self.axis]).powi(2)
            } else {
                f64::INFINITY
            };
            let rd = if ri < n {
                (self.x[self.order[ri] as usize][self.axis] - qa).powi(2)
            } else {
                f64::INFINITY
            };
            // Take the nearer side next; its axis distance lower-bounds
            // everything not yet scanned, so a strict excess over the k-th
            // best ends the whole search.
            let (from_left, axis_d2) = if ld <= rd { (true, ld) } else { (false, rd) };
            if axis_d2 == f64::INFINITY || (best.len() == k && axis_d2 > worst.0) {
                break;
            }
            let cand = if from_left {
                li -= 1;
                self.order[li] as usize
            } else {
                let c = self.order[ri] as usize;
                ri += 1;
                c
            };

            // Partial-distance early abandon (strict, for the same
            // tie-on-index reason as above). Partial sums of squares are
            // monotone, so an abandoned candidate's full distance would
            // also strictly exceed the k-th best.
            let row = &self.x[cand];
            let mut d2 = 0.0;
            let mut abandoned = false;
            for (a, b) in row.iter().zip(q.iter()) {
                d2 += (a - b).powi(2);
                if best.len() == k && d2 > worst.0 {
                    abandoned = true;
                    break;
                }
            }
            if abandoned {
                continue;
            }
            if best.len() < k {
                best.push((d2, cand, self.y[cand]));
                if best.len() == k {
                    worst = current_worst(&best);
                }
            } else if d2 < worst.0 || (d2 == worst.0 && cand < worst.1) {
                let at = best
                    .iter()
                    .position(|&(d, i, _)| d == worst.0 && i == worst.1)
                    .expect("cached worst entry present");
                best[at] = (d2, cand, self.y[cand]);
                worst = current_worst(&best);
            }
        }

        best.sort_unstable_by(by_distance_then_index);
        weighted_prediction(&best)
    }

    /// Query rows are independent, so the batch fans out on the shared
    /// rayon pool (order-stable merge — byte-identical to the serial loop
    /// at any thread count). Single-row batches, and pools whose effective
    /// parallelism is 1, stay inline: the dispatch cannot buy concurrency.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.len() < 2 || rayon::effective_parallelism() == 1 {
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        rows.par_iter().map(|r| self.predict(r)).collect()
    }
}

/// The worst (maximum) entry of the current k-set under the
/// (distance², index) total order.
fn current_worst(best: &[(f64, usize, f64)]) -> (f64, usize) {
    let mut w = (f64::NEG_INFINITY, 0usize);
    for &(d2, i, _) in best {
        if d2 > w.0 || (d2 == w.0 && i > w.1) {
            w = (d2, i);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_xy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                x.push(vec![i as f64, j as f64]);
                y.push(3.0 * i as f64 - 2.0 * j as f64);
            }
        }
        (x, y)
    }

    #[test]
    fn exact_training_point_is_reproduced() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        assert_eq!(model.predict(&[5.0, 5.0]), 5.0);
    }

    #[test]
    fn interpolation_is_close_on_smooth_targets() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        let pred = model.predict(&[4.5, 4.5]);
        assert!((pred - 4.5).abs() < 1.5, "pred {pred}");
    }

    #[test]
    fn k_larger_than_dataset_degrades_to_global_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0.0, 10.0];
        let model = KnnTrainer::new(50).train(&x, &y);
        let pred = model.predict(&[0.5]);
        assert!((pred - 5.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_makes_axes_comparable() {
        // Feature 1 has a huge scale; without z-scoring it would drown
        // feature 0 entirely.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1_000_000.0],
            vec![2.0, 2_000_000.0],
            vec![3.0, 3_000_000.0],
        ];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let model = KnnTrainer::new(1).train(&x, &y);
        // Query close to sample 2 in *scaled* space.
        let pred = model.predict(&[2.1, 2_100_000.0]);
        assert_eq!(pred, 2.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KnnTrainer::new(0);
    }

    #[test]
    fn duplicate_distances_break_ties_on_sample_index() {
        // Four training points all equidistant from the query, but k = 2:
        // the neighbour set must be the two *lowest-index* samples, so the
        // prediction is their (equal-weight) mean — not whichever pair the
        // selection algorithm happened to leave in front.
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0], vec![0.0, -1.0]];
        let y = vec![10.0, 20.0, 70.0, 80.0];
        let model = KnnTrainer::new(2).train(&x, &y);
        let pred = model.predict(&[0.0, 0.0]);
        assert_eq!(pred, 15.0, "expected the mean of samples 0 and 1");
    }

    #[test]
    fn batch_prediction_matches_the_serial_loop() {
        let (x, y) = grid_xy();
        let model = KnnTrainer::new(4).train(&x, &y);
        let queries: Vec<Vec<f64>> =
            (0..40).map(|i| vec![i as f64 * 0.31, (40 - i) as f64 * 0.27]).collect();
        let serial: Vec<f64> = queries.iter().map(|q| model.predict(q)).collect();
        assert_eq!(model.predict_batch(&queries), serial);
    }

    #[test]
    fn pruned_search_is_bit_identical_to_exhaustive() {
        // Gridded data maximizes duplicate distances — the hard case for
        // any pruning scheme, since ties must still resolve on index.
        let (x, y) = grid_xy();
        for k in [1, 2, 4, 7, 99, 150] {
            let model = KnnTrainer::new(k).train(&x, &y);
            for i in 0..60 {
                let q = vec![(i % 12) as f64 * 0.9 - 0.7, (i / 5) as f64 * 0.8 + 0.3];
                assert_eq!(
                    model.predict(&q).to_bits(),
                    model.predict_exhaustive(&q).to_bits(),
                    "k={k} query {q:?}"
                );
            }
        }
    }

    #[test]
    fn pruned_search_handles_duplicate_axis_values() {
        // All points share the widest-axis value except two outliers, so
        // the outward scan sees long runs of equal axis distances.
        let x: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![if i == 3 { 9.0 } else if i == 11 { -9.0 } else { 0.0 }, i as f64])
            .collect();
        let y: Vec<f64> = (0..20).map(|i| (i * i % 13) as f64).collect();
        let model = KnnTrainer::new(5).train(&x, &y);
        for q in [[0.0, 4.2], [9.0, 3.0], [-9.0, 11.0], [2.0, 30.0]] {
            assert_eq!(model.predict(&q).to_bits(), model.predict_exhaustive(&q).to_bits());
        }
    }
}
