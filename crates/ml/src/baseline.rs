//! The workload-unaware baseline model.
//!
//! Conventional DRAM error modelling (§VI-C) assumes a *constant* error
//! rate per operating point, measured once with a data-pattern
//! micro-benchmark, regardless of the running workload. WADE reproduces it
//! as a regressor that ignores its input features entirely — the
//! comparison target that the paper beats by 2.9× (Fig. 13).

use crate::model::{validate_training_input, Regressor, Trainer};

/// Trains [`ConstantModel`]s by averaging the training targets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConstantTrainer;

impl Trainer for ConstantTrainer {
    type Model = ConstantModel;

    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> ConstantModel {
        validate_training_input(x, y);
        ConstantModel::new(y.iter().sum::<f64>() / y.len() as f64)
    }
}

/// A model that predicts the same value for every input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantModel {
    value: f64,
}

impl ConstantModel {
    /// Builds the model around a fixed value (e.g. the WER measured with
    /// the random data-pattern micro-benchmark).
    pub fn new(value: f64) -> Self {
        Self { value }
    }

    /// The constant prediction.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Regressor for ConstantModel {
    fn predict(&self, _features: &[f64]) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignores_features() {
        let m = ConstantModel::new(3.5);
        assert_eq!(m.predict(&[0.0]), 3.5);
        assert_eq!(m.predict(&[1e9, -1e9]), 3.5);
    }

    #[test]
    fn trainer_takes_the_mean() {
        let m = ConstantTrainer.train(&[vec![1.0], vec![2.0]], &[10.0, 20.0]);
        assert_eq!(m.value(), 15.0);
    }
}
