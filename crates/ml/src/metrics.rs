//! Accuracy metrics.
//!
//! The paper reports the **mean percentage error** of its estimates
//! (Figs. 11/12). For the word error rate, which spans five decades and is
//! never zero in the evaluated samples, that is the classic MAPE. For the
//! UE probability — frequently exactly 0 or 1 — we report the mean absolute
//! error in percentage points (an MPE with a unit denominator), which is
//! well-defined at zero and bounded like the paper's Fig. 12 values.

/// Mean absolute percentage error: `mean(|pred − actual| / |actual|) × 100`.
///
/// Samples with `actual == 0` are skipped (undefined relative error).
/// Returns 0 for an empty or all-zero-actual input.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mean_percentage_error(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "prediction/actual length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in pred.iter().zip(actual.iter()) {
        if *a != 0.0 {
            sum += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * sum / n as f64
    }
}

/// Mean absolute error expressed in percentage points (×100). Suited to
/// probability targets in `[0, 1]` such as `P_UE`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn mean_absolute_error_percent(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "prediction/actual length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred.iter().zip(actual.iter()).map(|(p, a)| (p - a).abs()).sum();
    100.0 * sum / pred.len() as f64
}

/// Precision and recall from raw alert counts, with the conventions field
/// evaluations use: an alerting system that never fires has precision 1
/// (it made no false claims) and a failure population of zero has recall 1
/// (nothing was missed). Keeps lead-time sweeps free of 0/0 special cases.
pub fn precision_recall(true_pos: u64, false_pos: u64, false_neg: u64) -> (f64, f64) {
    let precision = if true_pos + false_pos == 0 {
        1.0
    } else {
        true_pos as f64 / (true_pos + false_pos) as f64
    };
    let recall = if true_pos + false_neg == 0 {
        1.0
    } else {
        true_pos as f64 / (true_pos + false_neg) as f64
    };
    (precision, recall)
}

/// Root-mean-square error.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn rmse(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "prediction/actual length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let sum: f64 = pred.iter().zip(actual.iter()).map(|(p, a)| (p - a).powi(2)).sum();
    (sum / pred.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpe_of_exact_predictions_is_zero() {
        assert_eq!(mean_percentage_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mpe_matches_hand_computation() {
        // |1.1-1|/1 = 0.1, |1.8-2|/2 = 0.1 → 10 %.
        let mpe = mean_percentage_error(&[1.1, 1.8], &[1.0, 2.0]);
        assert!((mpe - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mpe_skips_zero_actuals() {
        let mpe = mean_percentage_error(&[5.0, 1.1], &[0.0, 1.0]);
        assert!((mpe - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mae_percent_handles_probabilities() {
        let mae = mean_absolute_error_percent(&[0.0, 0.9], &[0.1, 1.0]);
        assert!((mae - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rmse_penalises_outliers() {
        let a = rmse(&[0.0, 0.0], &[1.0, 1.0]);
        let b = rmse(&[0.0, 0.0], &[0.0, 2.0]);
        assert!(b > a);
    }

    #[test]
    fn precision_recall_counts_and_conventions() {
        let (p, r) = precision_recall(8, 2, 8);
        assert!((p - 0.8).abs() < 1e-12 && (r - 0.5).abs() < 1e-12);
        // No alerts → perfect precision; no failures → perfect recall.
        assert_eq!(precision_recall(0, 0, 5), (1.0, 0.0));
        assert_eq!(precision_recall(0, 3, 0), (0.0, 1.0));
        assert_eq!(precision_recall(0, 0, 0), (1.0, 1.0));
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean_percentage_error(&[], &[]), 0.0);
        assert_eq!(mean_absolute_error_percent(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
