//! # wade-ml — from-scratch supervised learning
//!
//! The paper trains three model families with scikit-learn: Support Vector
//! Machines, K-nearest neighbours and Random Decision Forests (§III-B),
//! evaluated with leave-one-workload-out cross-validation (§III-F). The
//! Rust ML ecosystem offers no stable equivalent, so this crate implements
//! the three learners from first principles:
//!
//! * [`KnnRegressor`] — z-scored features, inverse-distance-weighted
//!   k-nearest-neighbour regression (the paper's winner),
//! * [`SvrRegressor`] — ε-insensitive support vector regression with an RBF
//!   kernel, trained by kernel coordinate descent (simplified SMO),
//! * [`ForestRegressor`] — bootstrap-aggregated CART trees with per-split
//!   feature subsampling,
//!
//! plus the shared machinery: [`Dataset`] with group labels,
//! [`StandardScaler`], error metrics ([`metrics`]),
//! [`leave_one_group_out`] cross-validation, and the parallel
//! model-comparison harness ([`EvalGrid`] + [`ModelCache`] in [`eval`]).
//!
//! Training and evaluation follow the workspace determinism contract:
//! forest trees and CV folds are independent units with derived seed
//! streams that fan out on the shared rayon pool and merge in input order,
//! so every result is byte-identical at any thread count.
//!
//! ```
//! use wade_ml::{Dataset, KnnTrainer, Trainer, Regressor};
//!
//! let mut data = Dataset::new(1);
//! for i in 0..20 {
//!     let x = i as f64;
//!     data.push(vec![x], 2.0 * x + 1.0, format!("g{}", i % 4));
//! }
//! let model = KnnTrainer::new(3).train(&data.features(), &data.targets());
//! let pred = model.predict(&[10.0]);
//! assert!((pred - 21.0).abs() < 2.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod baseline;
mod cv;
mod dataset;
pub mod eval;
mod forest;
mod knn;
pub mod metrics;
mod model;
mod scale;
mod svr;
mod tree;

pub use baseline::{ConstantModel, ConstantTrainer};
pub use cv::{leave_one_group_out, GroupCvOutcome};
pub use eval::{CellOutcome, EvalGrid, ModelCache, ModelKey, SharedModel, TrainFn};
pub use dataset::{Dataset, Sample};
pub use forest::{ForestRegressor, ForestTrainer, PointerForest};
pub use knn::{KnnRegressor, KnnTrainer};
pub use model::{Regressor, Trainer};
pub use scale::StandardScaler;
pub use svr::{SvrRegressor, SvrTrainer};
pub use tree::{DecisionTree, TreeParams};
