//! Random decision forests: bagged CART trees with feature subsampling.
//!
//! Training follows the same determinism contract as the DRAM simulator's
//! parallel fan-out (`wade-dram::sim`): every tree derives its own seed
//! stream from `(forest seed, tree index)` via [`tree_seed`]'s SplitMix64
//! mix — never from a shared sequential generator — so trees are
//! independent units that fan out on the shared rayon pool and merge back
//! in index order. The trained forest is byte-identical at any thread
//! count (`tests/ml_parallel.rs` pins this).

use crate::model::{validate_training_input, Regressor, Trainer};
use crate::tree::{DecisionTree, TreeParams, ARENA_LEAF};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Forest trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestTrainer {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree growth parameters (`mtry = 0` means `√dim`, chosen at
    /// training time).
    pub params: TreeParams,
    /// RNG seed for bootstrap/feature sampling (deterministic training).
    pub seed: u64,
}

impl ForestTrainer {
    /// Creates a trainer with `trees` trees and default growth parameters.
    pub fn new(trees: usize) -> Self {
        assert!(trees > 0, "at least one tree required");
        Self { trees, params: TreeParams::default(), seed: 0x00F0_FE57 }
    }

    /// The paper-scale configuration (100 trees).
    pub fn paper_default() -> Self {
        Self::new(100)
    }
}

impl ForestTrainer {
    /// Trains the pointer-tree form of the forest — the byte-identity
    /// reference that the flat-arena [`ForestRegressor`] is re-laid from.
    /// The RNG streams here are the determinism contract; the arena step
    /// never touches them.
    pub fn train_pointer(&self, x: &[Vec<f64>], y: &[f64]) -> PointerForest {
        let dim = validate_training_input(x, y);
        let n = x.len();
        let mtry = if self.params.mtry == 0 {
            ((dim as f64).sqrt().ceil() as usize).max(1)
        } else {
            self.params.mtry
        };
        let params = TreeParams { mtry, ..self.params };

        // Per-tree derived seed streams (see the module docs): each tree's
        // bootstrap and feature subsampling come from its own generator, so
        // the trees are order-independent parallel units and the vendored
        // pool's input-order merge makes the ensemble byte-identical on 1
        // and N threads.
        let trees = (0..self.trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(tree_seed(self.seed, t as u64));
                // Bootstrap sample (with replacement).
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                DecisionTree::grow(x, y, &idx, params, &mut rng)
            })
            .collect();
        PointerForest { trees }
    }
}

impl Trainer for ForestTrainer {
    type Model = ForestRegressor;

    fn train(&self, x: &[Vec<f64>], y: &[f64]) -> ForestRegressor {
        ForestRegressor::from_pointer(&self.train_pointer(x, y))
    }
}

/// The derived seed of tree `t`: a SplitMix64-style mix of the forest seed
/// and the tree index (the `(seed, unit)` domain-separation idiom of
/// `wade-dram`'s `mix_seed`). Pure function of its inputs — reordering or
/// parallelizing tree construction cannot change any tree's stream.
fn tree_seed(seed: u64, t: u64) -> u64 {
    let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(t.rotate_left(17));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A trained forest in pointer-tree form: predictions average the trees.
///
/// This is what training produces and the reference path the flat-arena
/// [`ForestRegressor`] is checked against (`tests/` pin bit-identity of the
/// two for every row). The hot paths — `AnyModel`, serving, the stored
/// artifacts — all use the arena form; keep this one for training,
/// verification and benchmarks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PointerForest {
    trees: Vec<DecisionTree>,
}

impl PointerForest {
    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// The individual trees (introspection and arena construction).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Regressor for PointerForest {
    fn predict(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict(features)).sum();
        sum / self.trees.len() as f64
    }
}

/// A trained forest re-laid into a contiguous structure-of-arrays node
/// arena: per node a `u16` feature index (`u16::MAX` marks a leaf), an
/// `f64` threshold (leaf value for leaves) and a `u32` right-child index
/// (the left child is always the next node, preorder). Trees are
/// concatenated with their roots in `roots`, in tree-index order.
///
/// Prediction walks the arrays with no pointer chasing and predictions are
/// bit-identical to [`PointerForest`]: the same comparisons against the
/// same thresholds in the same order, and the same left-to-right summation
/// over trees. This arena — not the pointer tree — is what `AnyModel`
/// serializes, so `model` artifacts and serving snapshots carry the compact
/// form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestRegressor {
    node_features: Vec<u16>,
    node_thresholds: Vec<f64>,
    node_rights: Vec<u32>,
    roots: Vec<u32>,
}

impl ForestRegressor {
    /// Re-lays a pointer-tree forest into arena form (a pure re-layout:
    /// node values are copied verbatim, only the addressing changes).
    pub fn from_pointer(forest: &PointerForest) -> Self {
        let mut node_features = Vec::new();
        let mut node_thresholds = Vec::new();
        let mut node_rights = Vec::new();
        let roots = forest
            .trees()
            .iter()
            .map(|t| t.flatten_into(&mut node_features, &mut node_thresholds, &mut node_rights))
            .collect();
        Self { node_features, node_thresholds, node_rights, roots }
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.roots.len()
    }

    /// Total nodes across all trees (arena length).
    pub fn node_count(&self) -> usize {
        self.node_features.len()
    }
}

impl Regressor for ForestRegressor {
    fn predict(&self, features: &[f64]) -> f64 {
        let mut sum = 0.0;
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let f = self.node_features[i];
                if f == ARENA_LEAF {
                    sum += self.node_thresholds[i];
                    break;
                }
                i = if features[f as usize] <= self.node_thresholds[i] {
                    i + 1
                } else {
                    self.node_rights[i] as usize
                };
            }
        }
        sum / self.roots.len() as f64
    }

    /// Query rows are independent, so the batch fans out on the shared
    /// rayon pool (order-stable merge — byte-identical to the serial loop
    /// at any thread count). Single-row batches, and pools whose effective
    /// parallelism is 1, stay inline: the dispatch cannot buy concurrency.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.len() < 2 || rayon::effective_parallelism() == 1 {
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        rows.par_iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_fits_nonlinear_targets() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin() * 5.0).collect();
        let model = ForestTrainer::new(30).train(&x, &y);
        let mut worst: f64 = 0.0;
        for (xi, yi) in x.iter().zip(y.iter()) {
            worst = worst.max((model.predict(xi) - yi).abs());
        }
        assert!(worst < 1.5, "worst error {worst}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i * i % 7) as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let a = ForestTrainer::new(10).train(&x, &y);
        let b = ForestTrainer::new(10).train(&x, &y);
        for q in [[0.5, 3.0], [20.0, 1.0]] {
            assert_eq!(a.predict(&q), b.predict(&q));
        }
    }

    #[test]
    fn robust_to_irrelevant_features() {
        // 1 informative + 19 noise features; the forest must still find the
        // signal (this robustness is why RDF handles input set 3 best in
        // Fig. 11c).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let mut row = vec![(i % 2) as f64 * 10.0];
            for j in 1..20 {
                row.push(((i as u64 * j as u64 * 2654435761) % 100) as f64);
            }
            x.push(row);
            y.push((i % 2) as f64 * 100.0);
        }
        let model = ForestTrainer::new(60).train(&x, &y);
        let mut q0 = vec![0.0; 20];
        let mut q1 = vec![10.0; 20];
        q0[0] = 0.0;
        q1[0] = 10.0;
        assert!(model.predict(&q1) - model.predict(&q0) > 50.0);
    }

    #[test]
    fn tree_count_matches_config() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        assert_eq!(ForestTrainer::new(7).train(&x, &y).tree_count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        ForestTrainer::new(0);
    }

    #[test]
    fn arena_is_bit_identical_to_pointer_trees() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, ((i * 13) % 17) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = (0..50).map(|i| ((i * 7) % 11) as f64).collect();
        let trainer = ForestTrainer::new(20);
        let pointer = trainer.train_pointer(&x, &y);
        let arena = ForestRegressor::from_pointer(&pointer);
        assert_eq!(arena.tree_count(), pointer.tree_count());
        assert!(arena.node_count() >= arena.tree_count());
        for row in &x {
            assert_eq!(
                arena.predict(row).to_bits(),
                pointer.predict(row).to_bits(),
                "arena and pointer walks diverged on {row:?}"
            );
        }
    }

    #[test]
    fn trainer_output_is_the_arena_form() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| (i % 4) as f64).collect();
        let trainer = ForestTrainer::new(5);
        let arena = trainer.train(&x, &y);
        let reference = ForestRegressor::from_pointer(&trainer.train_pointer(&x, &y));
        let batch = arena.predict_batch(&x);
        let serial: Vec<f64> = x.iter().map(|r| reference.predict(r)).collect();
        assert_eq!(batch.len(), serial.len());
        for (a, b) in batch.iter().zip(serial.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
