//! Hsiao odd-weight-column SECDED — the code real server memory
//! controllers implement.
//!
//! Compared with the extended-Hamming construction in [`crate::Secded`],
//! a Hsiao code's parity-check matrix uses only odd-weight columns. The
//! SECDED guarantees are identical, but decoding is simpler in hardware
//! (no overall-parity bit: a single-bit error shows an odd-weight
//! syndrome, a double-bit error an even-weight one) and miscorrection
//! rates on ≥3-bit faults are lower. WADE ships both codecs so the ECC
//! layer can be compared — the simulator's CE/UE/SDC semantics hold for
//! either.

use serde::{Deserialize, Serialize};

use crate::secded::DecodeOutcome;
use crate::word::Codeword;

/// A (72,64) Hsiao SECDED codec.
///
/// ```
/// use wade_ecc::{HsiaoSecded, DecodeOutcome};
/// let codec = HsiaoSecded::new();
/// let word = codec.encode(0xFEED_F00D);
/// assert_eq!(codec.decode(word), DecodeOutcome::Clean { data: 0xFEED_F00D });
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HsiaoSecded {
    /// `columns[lane]` = 8-bit parity-check column of data lane `lane`.
    columns: Vec<u8>,
}

impl HsiaoSecded {
    /// Builds the canonical column assignment: the 64 data lanes take the
    /// first 64 odd-weight 8-bit values of weight 3 or 5 (in increasing
    /// numeric order), the 8 check lanes take the unit vectors.
    pub fn new() -> Self {
        let mut columns = Vec::with_capacity(64);
        // Weight-3 columns first (C(8,3) = 56), then weight-5 (need 8 more).
        for weight in [3u32, 5] {
            for value in 0u16..256 {
                if (value as u8).count_ones() == weight {
                    columns.push(value as u8);
                    if columns.len() == 64 {
                        return Self { columns };
                    }
                }
            }
        }
        unreachable!("56 weight-3 + 28 weight-5 columns always cover 64 lanes");
    }

    /// Encodes a 64-bit word into a 72-bit codeword (data + 8 check lanes).
    pub fn encode(&self, data: u64) -> Codeword {
        let mut check = 0u8;
        let mut remaining = data;
        while remaining != 0 {
            let lane = remaining.trailing_zeros() as usize;
            check ^= self.columns[lane];
            remaining &= remaining - 1;
        }
        Codeword::from_raw(data, check)
    }

    fn syndrome(&self, stored: Codeword) -> u8 {
        let mut syn = stored.check();
        let mut remaining = stored.data();
        while remaining != 0 {
            let lane = remaining.trailing_zeros() as usize;
            syn ^= self.columns[lane];
            remaining &= remaining - 1;
        }
        syn
    }

    /// Decodes a stored codeword: odd-weight syndromes locate single-bit
    /// errors, even non-zero syndromes are detected-uncorrectable.
    pub fn decode(&self, stored: Codeword) -> DecodeOutcome {
        let syn = self.syndrome(stored);
        if syn == 0 {
            return DecodeOutcome::Clean { data: stored.data() };
        }
        if syn.count_ones().is_multiple_of(2) {
            return DecodeOutcome::DetectedUncorrectable;
        }
        // Odd syndrome: single-bit error in the matching column…
        if syn.count_ones() == 1 {
            // …a check lane.
            let lane = 64 + syn.trailing_zeros() as u8;
            return DecodeOutcome::Corrected { data: stored.data(), lane };
        }
        match self.columns.iter().position(|&c| c == syn) {
            Some(lane) => {
                let corrected = stored.with_flipped(lane as u8);
                DecodeOutcome::Corrected { data: corrected.data(), lane: lane as u8 }
            }
            // Odd-weight syndrome matching no column: a ≥3-bit fault caught
            // red-handed (extended Hamming would miscorrect here).
            None => DecodeOutcome::DetectedUncorrectable,
        }
    }

    /// Decodes with oracle knowledge of the original data, reporting
    /// miscorrections as [`DecodeOutcome::SilentCorruption`].
    pub fn decode_with_oracle(&self, stored: Codeword, original: u64) -> DecodeOutcome {
        match self.decode(stored) {
            DecodeOutcome::Clean { data } if data != original => {
                DecodeOutcome::SilentCorruption { data }
            }
            DecodeOutcome::Corrected { data, .. } if data != original => {
                DecodeOutcome::SilentCorruption { data }
            }
            other => other,
        }
    }
}

impl Default for HsiaoSecded {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_unique_and_odd() {
        let codec = HsiaoSecded::new();
        let mut seen = std::collections::HashSet::new();
        for &c in &codec.columns {
            assert_eq!(c.count_ones() % 2, 1, "column {c:#010b} must be odd-weight");
            assert!(c.count_ones() >= 3, "data columns must not alias check lanes");
            assert!(seen.insert(c), "duplicate column {c:#010b}");
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn clean_roundtrip() {
        let codec = HsiaoSecded::new();
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn every_single_flip_corrects() {
        let codec = HsiaoSecded::new();
        let data = 0xA5A5_5A5A_F00D_BEEF;
        let word = codec.encode(data);
        for lane in 0..72 {
            match codec.decode(word.with_flipped(lane)) {
                DecodeOutcome::Corrected { data: d, lane: l } => {
                    assert_eq!(d, data, "lane {lane}");
                    assert_eq!(l, lane);
                }
                other => panic!("lane {lane}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_flip_detects() {
        let codec = HsiaoSecded::new();
        let word = codec.encode(0xDEAD_BEEF);
        for a in 0..72u8 {
            for b in (a + 1)..72 {
                assert_eq!(
                    codec.decode(word.with_flipped(a).with_flipped(b)),
                    DecodeOutcome::DetectedUncorrectable,
                    "({a},{b})"
                );
            }
        }
    }

    #[test]
    fn hsiao_miscorrects_fewer_triples_than_hamming() {
        let hsiao = HsiaoSecded::new();
        let hamming = crate::Secded::new();
        let data = 0x1111_2222_3333_4444;
        let hw = hsiao.encode(data);
        let xw = hamming.encode(data);
        let mut hsiao_sdc = 0u64;
        let mut hamming_sdc = 0u64;
        for a in 0..72u8 {
            for b in (a + 1)..72 {
                for c in (b + 1)..72 {
                    if matches!(
                        hsiao.decode_with_oracle(
                            hw.with_flipped(a).with_flipped(b).with_flipped(c),
                            data
                        ),
                        DecodeOutcome::SilentCorruption { .. }
                    ) {
                        hsiao_sdc += 1;
                    }
                    if matches!(
                        hamming.decode_with_oracle(
                            xw.with_flipped(a).with_flipped(b).with_flipped(c),
                            data
                        ),
                        DecodeOutcome::SilentCorruption { .. }
                    ) {
                        hamming_sdc += 1;
                    }
                }
            }
        }
        assert!(
            hsiao_sdc < hamming_sdc,
            "hsiao {hsiao_sdc} SDCs vs hamming {hamming_sdc}"
        );
    }
}
