//! Extended-Hamming layout for the (72,64) SECDED code.
//!
//! We use the classical construction: code positions `1..=71` carry the
//! Hamming(71,64)-shortened code, with check bits at the seven power-of-two
//! positions and data bits at the remaining 64 positions; position 0 carries
//! the overall parity bit that upgrades single-error-correction to SECDED.

/// Number of data bits protected per codeword.
pub const DATA_BITS: usize = 64;

/// Total stored bits per codeword (data + check).
pub const CODE_BITS: usize = 72;

/// Number of Hamming check bits (excluding the overall parity bit).
const HAMMING_CHECKS: usize = 7;

/// Static mapping between storage lanes (how [`crate::Codeword`] stores
/// bits) and Hamming code positions (what the syndrome arithmetic uses).
///
/// The layout is deterministic and identical for every [`crate::Secded`]
/// instance, which mirrors real memory controllers where the H-matrix is
/// fixed in silicon.
#[derive(Debug, Clone)]
pub struct HammingLayout {
    /// `data_pos[i]` = Hamming position (1..=71, non-power-of-two) of data lane `i`.
    data_pos: [u8; DATA_BITS],
    /// `pos_kind[p]` for positions 0..72: what lives at Hamming position `p`.
    pos_to_lane: [u8; CODE_BITS],
}

impl HammingLayout {
    /// Builds the canonical layout.
    pub fn new() -> Self {
        let mut data_pos = [0u8; DATA_BITS];
        let mut pos_to_lane = [0u8; CODE_BITS];
        // Check lanes: lane 64 = overall parity at position 0,
        // lanes 65..=71 = Hamming checks at positions 1,2,4,...,64.
        pos_to_lane[0] = 64;
        for (k, lane) in (0..HAMMING_CHECKS).map(|k| (k, 65 + k as u8)) {
            pos_to_lane[1 << k] = lane;
        }
        let mut lane = 0usize;
        // `pos` is a Hamming code position, not a plain index: it drives
        // the power-of-two test and two tables at once.
        #[allow(clippy::needless_range_loop)]
        for pos in 1..CODE_BITS {
            if (pos & (pos - 1)) != 0 {
                // Non-power-of-two: data position.
                data_pos[lane] = pos as u8;
                pos_to_lane[pos] = lane as u8;
                lane += 1;
            }
        }
        debug_assert_eq!(lane, DATA_BITS);
        Self { data_pos, pos_to_lane }
    }

    /// Hamming position (1..=71) of data lane `lane` (`0..64`).
    pub fn data_position(&self, lane: usize) -> u8 {
        self.data_pos[lane]
    }

    /// Storage lane (`0..72`) living at Hamming position `pos` (`0..72`).
    pub fn lane_at_position(&self, pos: usize) -> u8 {
        self.pos_to_lane[pos]
    }

    /// Whether Hamming position `pos` holds a check bit (position 0 or a
    /// power of two).
    pub fn is_check_position(pos: usize) -> bool {
        pos == 0 || (pos & (pos - 1)) == 0
    }

    /// Computes the 7-bit Hamming syndrome contribution of the data lanes.
    ///
    /// Each set data bit at position `p` XORs `p` into the syndrome.
    pub fn data_syndrome(&self, data: u64) -> u8 {
        let mut syn = 0u8;
        let mut remaining = data;
        while remaining != 0 {
            let lane = remaining.trailing_zeros() as usize;
            syn ^= self.data_pos[lane];
            remaining &= remaining - 1;
        }
        syn
    }

    /// Number of Hamming check bits (excluding overall parity).
    pub fn check_count() -> usize {
        HAMMING_CHECKS
    }
}

impl Default for HammingLayout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_positions_are_non_powers_in_range() {
        let layout = HammingLayout::new();
        for lane in 0..DATA_BITS {
            let p = layout.data_position(lane) as usize;
            assert!((3..CODE_BITS).contains(&p));
            assert!(!HammingLayout::is_check_position(p), "lane {lane} at check pos {p}");
        }
    }

    #[test]
    fn data_positions_are_unique() {
        let layout = HammingLayout::new();
        let mut seen = [false; CODE_BITS];
        for lane in 0..DATA_BITS {
            let p = layout.data_position(lane) as usize;
            assert!(!seen[p], "duplicate position {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn position_lane_mapping_is_inverse() {
        let layout = HammingLayout::new();
        for lane in 0..DATA_BITS {
            let p = layout.data_position(lane) as usize;
            assert_eq!(layout.lane_at_position(p) as usize, lane);
        }
        assert_eq!(layout.lane_at_position(0), 64);
        for k in 0..7 {
            assert_eq!(layout.lane_at_position(1 << k), 65 + k as u8);
        }
    }

    #[test]
    fn syndrome_of_single_bit_is_its_position() {
        let layout = HammingLayout::new();
        for lane in 0..DATA_BITS {
            let syn = layout.data_syndrome(1u64 << lane);
            assert_eq!(syn, layout.data_position(lane));
        }
    }

    #[test]
    fn syndrome_is_linear() {
        let layout = HammingLayout::new();
        let a = 0x0F0F_1234_5678_90AB;
        let b = 0xFFFF_0000_1111_2222;
        assert_eq!(
            layout.data_syndrome(a) ^ layout.data_syndrome(b),
            layout.data_syndrome(a ^ b)
        );
    }
}
