//! # wade-ecc — SECDED (72,64) error-correcting code
//!
//! Server-grade DIMMs protect every 64-bit word with 8 check bits forming a
//! *single-error-correct, double-error-detect* (SECDED) code. The paper
//! (Table I) classifies DRAM errors by how this code reacts:
//!
//! | corrupted bits | outcome               | class |
//! |----------------|-----------------------|-------|
//! | 1              | corrected             | CE    |
//! | 2              | detected, uncorrected | UE    |
//! | ≥3             | may be miscorrected   | SDC   |
//!
//! This crate implements the full codec used by the WADE simulator: an
//! extended-Hamming (72,64) code with syndrome decoding, plus the error
//! classification the rest of the workspace builds on.
//!
//! ```
//! use wade_ecc::{Secded, DecodeOutcome};
//!
//! let codec = Secded::new();
//! let word = codec.encode(0xDEAD_BEEF_CAFE_F00D);
//! // Flip one stored bit: corrected, data recovered.
//! let mut stored = word;
//! stored.flip_bit(17);
//! match codec.decode(stored) {
//!     DecodeOutcome::Corrected { data, .. } => assert_eq!(data, 0xDEAD_BEEF_CAFE_F00D),
//!     other => panic!("expected correction, got {other:?}"),
//! }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod classify;
mod hamming;
mod hsiao;
mod secded;
mod word;

pub use classify::{classify_flip_count, ErrorClass};
pub use hamming::{HammingLayout, CODE_BITS, DATA_BITS};
pub use hsiao::HsiaoSecded;
pub use secded::{DecodeOutcome, Secded};
pub use word::Codeword;
