//! The 72-bit stored codeword type.

use serde::{Deserialize, Serialize};

/// A stored 72-bit ECC codeword: 64 data bits plus 8 check bits.
///
/// Bit indices `0..64` address the data lanes, `64..72` the check lanes.
/// The mapping from these *storage lanes* to Hamming code positions is owned
/// by [`crate::HammingLayout`]; `Codeword` itself is a plain container so it
/// can model raw in-DRAM corruption (bit flips happen to stored lanes, the
/// decoder later interprets them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Codeword {
    data: u64,
    check: u8,
}

impl Codeword {
    /// Creates a codeword from raw data and check lanes.
    ///
    /// No validity check is performed: arbitrary (possibly corrupt) bit
    /// patterns are representable on purpose.
    pub fn from_raw(data: u64, check: u8) -> Self {
        Self { data, check }
    }

    /// The 64 data lanes as stored (possibly corrupt).
    pub fn data(&self) -> u64 {
        self.data
    }

    /// The 8 check lanes as stored (possibly corrupt).
    pub fn check(&self) -> u8 {
        self.check
    }

    /// Returns the stored bit at lane `lane` (`0..72`).
    ///
    /// # Panics
    /// Panics if `lane >= 72`.
    pub fn bit(&self, lane: u8) -> bool {
        assert!(lane < 72, "codeword lane {lane} out of range");
        if lane < 64 {
            (self.data >> lane) & 1 == 1
        } else {
            (self.check >> (lane - 64)) & 1 == 1
        }
    }

    /// Flips the stored bit at lane `lane` (`0..72`), modelling a DRAM cell
    /// losing (or spuriously gaining) charge.
    ///
    /// # Panics
    /// Panics if `lane >= 72`.
    pub fn flip_bit(&mut self, lane: u8) {
        assert!(lane < 72, "codeword lane {lane} out of range");
        if lane < 64 {
            self.data ^= 1u64 << lane;
        } else {
            self.check ^= 1u8 << (lane - 64);
        }
    }

    /// Returns a copy with the given lane flipped.
    #[must_use]
    pub fn with_flipped(mut self, lane: u8) -> Self {
        self.flip_bit(lane);
        self
    }

    /// Number of lanes that differ from `other` (Hamming distance).
    pub fn distance(&self, other: &Codeword) -> u32 {
        (self.data ^ other.data).count_ones() + (self.check ^ other.check).count_ones()
    }
}

impl core::fmt::Display for Codeword {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:016x}+{:02x}", self.data, self.check)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_roundtrip_every_lane() {
        let base = Codeword::from_raw(0x0123_4567_89AB_CDEF, 0x5A);
        for lane in 0..72 {
            let mut w = base;
            w.flip_bit(lane);
            assert_ne!(w, base);
            assert_eq!(w.distance(&base), 1);
            w.flip_bit(lane);
            assert_eq!(w, base);
        }
    }

    #[test]
    fn bit_reads_match_flips() {
        let mut w = Codeword::default();
        for lane in (0..72).step_by(3) {
            assert!(!w.bit(lane));
            w.flip_bit(lane);
            assert!(w.bit(lane));
        }
    }

    #[test]
    fn distance_counts_both_fields() {
        let a = Codeword::from_raw(0, 0);
        let b = Codeword::from_raw(0b1011, 0b1);
        assert_eq!(a.distance(&b), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        Codeword::default().bit(72);
    }

    #[test]
    fn display_is_stable() {
        let w = Codeword::from_raw(0xDEAD, 0x3);
        assert_eq!(w.to_string(), "000000000000dead+03");
    }
}
