//! Error classification (paper Table I).

use serde::{Deserialize, Serialize};

/// DRAM error classes as seen through SECDED ECC (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ErrorClass {
    /// Single corrupted bit in a 64-bit word: corrected by ECC.
    Correctable,
    /// More than one corrupted bit: detected but uncorrectable.
    ///
    /// On the paper's X-Gene2 framework any detected UE crashes the system.
    Uncorrectable,
    /// Three or more corrupted bits that alias past SECDED: silent data
    /// corruption, invisible to hardware.
    SilentDataCorruption,
}

impl ErrorClass {
    /// Short abbreviation used throughout the paper (CE / UE / SDC).
    pub fn abbreviation(&self) -> &'static str {
        match self {
            ErrorClass::Correctable => "CE",
            ErrorClass::Uncorrectable => "UE",
            ErrorClass::SilentDataCorruption => "SDC",
        }
    }
}

impl core::fmt::Display for ErrorClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.abbreviation())
    }
}

/// Classifies a corruption by the number of flipped bits per 64-bit word,
/// following the paper's Table I. `flips == 0` returns `None`.
///
/// Note this is the *nominal* classification; whether a ≥3-bit corruption
/// actually manifests as an SDC or a detected UE depends on syndrome
/// aliasing, which [`crate::Secded::decode_with_oracle`] models exactly.
pub fn classify_flip_count(flips: u32) -> Option<ErrorClass> {
    match flips {
        0 => None,
        1 => Some(ErrorClass::Correctable),
        2 => Some(ErrorClass::Uncorrectable),
        _ => Some(ErrorClass::SilentDataCorruption),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_mapping() {
        assert_eq!(classify_flip_count(0), None);
        assert_eq!(classify_flip_count(1), Some(ErrorClass::Correctable));
        assert_eq!(classify_flip_count(2), Some(ErrorClass::Uncorrectable));
        assert_eq!(classify_flip_count(3), Some(ErrorClass::SilentDataCorruption));
        assert_eq!(classify_flip_count(9), Some(ErrorClass::SilentDataCorruption));
    }

    #[test]
    fn abbreviations() {
        assert_eq!(ErrorClass::Correctable.to_string(), "CE");
        assert_eq!(ErrorClass::Uncorrectable.to_string(), "UE");
        assert_eq!(ErrorClass::SilentDataCorruption.to_string(), "SDC");
    }

    #[test]
    fn ordering_matches_severity() {
        assert!(ErrorClass::Correctable < ErrorClass::Uncorrectable);
        assert!(ErrorClass::Uncorrectable < ErrorClass::SilentDataCorruption);
    }
}
