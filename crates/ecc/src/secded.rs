//! The SECDED codec: encode, syndrome decode and outcome reporting.

use crate::hamming::HammingLayout;
use crate::word::Codeword;
use serde::{Deserialize, Serialize};

/// Result of decoding a (possibly corrupted) stored codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// Syndrome and parity clean: the stored data is returned as-is.
    Clean {
        /// Recovered 64-bit data word.
        data: u64,
    },
    /// A single-bit error was located and corrected (a *CE* in Table I).
    Corrected {
        /// Recovered 64-bit data word after correction.
        data: u64,
        /// Storage lane (`0..72`) that was corrected.
        lane: u8,
    },
    /// A double-bit error was detected but cannot be corrected (a *UE*).
    ///
    /// Real servers raise a machine-check here; in the paper's framework a
    /// detected UE crashes the system.
    DetectedUncorrectable,
    /// The decoder "corrected" the word but produced wrong data, or saw a
    /// clean syndrome on corrupt data. Only observable with oracle knowledge
    /// of the original data; see [`Secded::decode_with_oracle`].
    SilentCorruption {
        /// The (wrong) data the decoder would hand to the CPU.
        data: u64,
    },
}

impl DecodeOutcome {
    /// The data word handed to the consumer, if the decoder produced one.
    pub fn data(&self) -> Option<u64> {
        match self {
            DecodeOutcome::Clean { data }
            | DecodeOutcome::Corrected { data, .. }
            | DecodeOutcome::SilentCorruption { data } => Some(*data),
            DecodeOutcome::DetectedUncorrectable => None,
        }
    }
}

/// SECDED (72,64) codec.
///
/// ```
/// use wade_ecc::Secded;
/// let codec = Secded::new();
/// let stored = codec.encode(42);
/// assert_eq!(codec.decode(stored).data(), Some(42));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Secded {
    layout: HammingLayout,
}

impl Secded {
    /// Creates a codec with the canonical (72,64) extended-Hamming layout.
    pub fn new() -> Self {
        Self { layout: HammingLayout::new() }
    }

    /// The code layout (exposed for analysis and tests).
    pub fn layout(&self) -> &HammingLayout {
        &self.layout
    }

    /// Encodes a 64-bit data word into a 72-bit codeword.
    pub fn encode(&self, data: u64) -> Codeword {
        let syn = self.layout.data_syndrome(data);
        // Check bit k equals the parity of data positions with bit k set,
        // i.e. bit k of the data syndrome.
        let mut check = 0u8;
        for k in 0..HammingLayout::check_count() {
            if (syn >> k) & 1 == 1 {
                check |= 1 << (k + 1); // check lanes 65.. map to check bits 1..
            }
        }
        // Overall parity (lane 64, stored in check bit 0) makes the total
        // 72-bit weight even.
        let total = data.count_ones() + (check >> 1).count_ones();
        if total % 2 == 1 {
            check |= 1;
        }
        Codeword::from_raw(data, check)
    }

    /// Computes the 7-bit syndrome and the overall parity of a stored word.
    fn syndrome(&self, stored: Codeword) -> (u8, bool) {
        let mut syn = self.layout.data_syndrome(stored.data());
        for k in 0..HammingLayout::check_count() {
            if (stored.check() >> (k + 1)) & 1 == 1 {
                syn ^= 1 << k;
            }
        }
        let parity = (stored.data().count_ones() + stored.check().count_ones()) % 2 == 1;
        (syn, parity)
    }

    /// Decodes a stored codeword as the hardware would (no oracle).
    ///
    /// Triple-bit (and wider odd-weight) corruptions can alias to a valid
    /// single-bit syndrome; hardware cannot distinguish those from genuine
    /// CEs, so this function reports them as `Corrected` with wrong data.
    /// Use [`Secded::decode_with_oracle`] when the true data is known.
    pub fn decode(&self, stored: Codeword) -> DecodeOutcome {
        let (syn, parity) = self.syndrome(stored);
        match (syn, parity) {
            (0, false) => DecodeOutcome::Clean { data: stored.data() },
            (0, true) => {
                // Error in the overall parity bit itself; data is intact.
                DecodeOutcome::Corrected { data: stored.data(), lane: 64 }
            }
            (s, true) => {
                let pos = s as usize;
                if pos >= crate::CODE_BITS {
                    // Syndrome points outside the shortened code: detected.
                    return DecodeOutcome::DetectedUncorrectable;
                }
                let lane = self.layout.lane_at_position(pos);
                let corrected = stored.with_flipped(lane);
                DecodeOutcome::Corrected { data: corrected.data(), lane }
            }
            (_, false) => DecodeOutcome::DetectedUncorrectable,
        }
    }

    /// Decodes with knowledge of the originally written data, so that
    /// miscorrections and undetected corruptions are reported as
    /// [`DecodeOutcome::SilentCorruption`] (the paper's *SDC* class).
    pub fn decode_with_oracle(&self, stored: Codeword, original: u64) -> DecodeOutcome {
        match self.decode(stored) {
            DecodeOutcome::Clean { data } if data != original => {
                DecodeOutcome::SilentCorruption { data }
            }
            DecodeOutcome::Corrected { data, .. } if data != original => {
                DecodeOutcome::SilentCorruption { data }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let codec = Secded::new();
        for data in [0u64, u64::MAX, 0xDEAD_BEEF_CAFE_F00D, 1, 1 << 63] {
            let w = codec.encode(data);
            assert_eq!(codec.decode(w), DecodeOutcome::Clean { data });
        }
    }

    #[test]
    fn every_single_flip_is_corrected() {
        let codec = Secded::new();
        let data = 0x0123_4567_89AB_CDEF;
        let w = codec.encode(data);
        for lane in 0..72 {
            let outcome = codec.decode(w.with_flipped(lane));
            match outcome {
                DecodeOutcome::Corrected { data: d, lane: l } => {
                    assert_eq!(d, data, "lane {lane} corrected to wrong data");
                    assert_eq!(l, lane, "wrong lane reported");
                }
                other => panic!("lane {lane}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        let codec = Secded::new();
        let data = 0xFEED_FACE_DEAD_BEEF;
        let w = codec.encode(data);
        for a in 0..72u8 {
            for b in (a + 1)..72 {
                let corrupted = w.with_flipped(a).with_flipped(b);
                assert_eq!(
                    codec.decode(corrupted),
                    DecodeOutcome::DetectedUncorrectable,
                    "flips ({a},{b}) not detected"
                );
            }
        }
    }

    #[test]
    fn triple_flips_are_miscorrected_or_detected() {
        let codec = Secded::new();
        let data = 0x1111_2222_3333_4444;
        let w = codec.encode(data);
        let mut sdc = 0usize;
        let mut detected = 0usize;
        for a in 0..72u8 {
            for b in (a + 1)..72 {
                for c in (b + 1)..72 {
                    let corrupted = w.with_flipped(a).with_flipped(b).with_flipped(c);
                    match codec.decode_with_oracle(corrupted, data) {
                        DecodeOutcome::SilentCorruption { .. } => sdc += 1,
                        DecodeOutcome::DetectedUncorrectable => detected += 1,
                        DecodeOutcome::Corrected { .. } | DecodeOutcome::Clean { .. } => {
                            panic!("triple flip ({a},{b},{c}) decoded as correct data")
                        }
                    }
                }
            }
        }
        // Odd-weight corruptions look like single errors to the decoder, so a
        // large fraction must miscorrect (that is exactly why SDCs exist).
        assert!(sdc > 0, "no SDCs among triple flips");
        assert!(detected > 0, "no detected UEs among triple flips");
    }

    #[test]
    fn parity_lane_error_is_corrected_without_touching_data() {
        let codec = Secded::new();
        let data = 77;
        let w = codec.encode(data).with_flipped(64);
        assert_eq!(codec.decode(w), DecodeOutcome::Corrected { data, lane: 64 });
    }

    #[test]
    fn oracle_decode_matches_plain_decode_when_honest() {
        let codec = Secded::new();
        let data = 0xABCD;
        let w = codec.encode(data);
        assert_eq!(codec.decode_with_oracle(w, data), DecodeOutcome::Clean { data });
        let one = w.with_flipped(3);
        assert!(matches!(
            codec.decode_with_oracle(one, data),
            DecodeOutcome::Corrected { .. }
        ));
    }
}
