//! Property-based tests for the SECDED codec invariants.
//!
//! Originally written against `proptest`; the offline build environment
//! cannot provide it, so the same five properties are exercised as seeded
//! randomized checks (a fixed-seed generator, several hundred cases each —
//! deterministic, so failures reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wade_ecc::{DecodeOutcome, Secded};

const CASES: usize = 512;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x5EC_DED)
}

/// Encoding then decoding any word is lossless.
#[test]
fn roundtrip_is_lossless() {
    let codec = Secded::new();
    let mut rng = rng();
    for _ in 0..CASES {
        let data: u64 = rng.gen();
        assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean { data });
    }
    // Edge patterns the uniform sampler is unlikely to hit.
    for data in [0u64, u64::MAX, 1, 1 << 63, 0xAAAA_AAAA_AAAA_AAAA] {
        assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean { data });
    }
}

/// Any single flipped lane is corrected back to the original data.
#[test]
fn single_flip_corrected() {
    let codec = Secded::new();
    let mut rng = rng();
    for _ in 0..CASES {
        let data: u64 = rng.gen();
        let lane = rng.gen_range(0..72u8);
        let stored = codec.encode(data).with_flipped(lane);
        match codec.decode(stored) {
            DecodeOutcome::Corrected { data: d, lane: l } => {
                assert_eq!(d, data);
                assert_eq!(l, lane);
            }
            other => panic!("expected correction of lane {lane}, got {other:?}"),
        }
    }
}

/// Any two distinct flipped lanes are detected, never miscorrected.
#[test]
fn double_flip_detected() {
    let codec = Secded::new();
    let mut rng = rng();
    for _ in 0..CASES {
        let data: u64 = rng.gen();
        let a = rng.gen_range(0..72u8);
        let b = rng.gen_range(0..72u8);
        if a == b {
            continue;
        }
        let stored = codec.encode(data).with_flipped(a).with_flipped(b);
        assert_eq!(
            codec.decode(stored),
            DecodeOutcome::DetectedUncorrectable,
            "lanes {a} and {b}"
        );
    }
}

/// With oracle decoding, a ≥3-bit corruption never silently passes as the
/// original data: it is either flagged (UE) or reported as SDC.
#[test]
fn triple_flip_never_passes_silently() {
    let codec = Secded::new();
    let mut rng = rng();
    for _ in 0..CASES {
        let data: u64 = rng.gen();
        // 3..=5 distinct lanes.
        let mut lanes = std::collections::BTreeSet::new();
        let target = rng.gen_range(3..=5usize);
        while lanes.len() < target {
            lanes.insert(rng.gen_range(0..72u8));
        }
        let mut stored = codec.encode(data);
        for &lane in &lanes {
            stored.flip_bit(lane);
        }
        match codec.decode_with_oracle(stored, data) {
            DecodeOutcome::DetectedUncorrectable | DecodeOutcome::SilentCorruption { .. } => {}
            // Even-weight corruptions of ≥4 lanes can cancel in the parity
            // but still show a non-zero syndrome; a clean decode to the
            // *original* data would require the flips to form a codeword,
            // which has minimum distance 4 — possible for exactly-4 flips
            // matching a codeword, so tolerate Clean only if data survived.
            DecodeOutcome::Clean { data: d } => assert_eq!(d, data, "lanes {lanes:?}"),
            DecodeOutcome::Corrected { data: d, .. } => assert_eq!(d, data, "lanes {lanes:?}"),
        }
    }
}

/// Check-bit syndromes are linear: encode(a) xor encode(b) has the check
/// bits of encode(a xor b).
#[test]
fn encoding_is_linear() {
    let codec = Secded::new();
    let mut rng = rng();
    for _ in 0..CASES {
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        let ca = codec.encode(a);
        let cb = codec.encode(b);
        let cx = codec.encode(a ^ b);
        assert_eq!(ca.check() ^ cb.check(), cx.check());
    }
}
