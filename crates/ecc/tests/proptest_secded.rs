//! Property-based tests for the SECDED codec invariants.

use proptest::prelude::*;
use wade_ecc::{DecodeOutcome, Secded};

proptest! {
    /// Encoding then decoding any word is lossless.
    #[test]
    fn roundtrip_is_lossless(data: u64) {
        let codec = Secded::new();
        prop_assert_eq!(codec.decode(codec.encode(data)), DecodeOutcome::Clean { data });
    }

    /// Any single flipped lane is corrected back to the original data.
    #[test]
    fn single_flip_corrected(data: u64, lane in 0u8..72) {
        let codec = Secded::new();
        let stored = codec.encode(data).with_flipped(lane);
        match codec.decode(stored) {
            DecodeOutcome::Corrected { data: d, lane: l } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(l, lane);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    /// Any two distinct flipped lanes are detected, never miscorrected.
    #[test]
    fn double_flip_detected(data: u64, a in 0u8..72, b in 0u8..72) {
        prop_assume!(a != b);
        let codec = Secded::new();
        let stored = codec.encode(data).with_flipped(a).with_flipped(b);
        prop_assert_eq!(codec.decode(stored), DecodeOutcome::DetectedUncorrectable);
    }

    /// With oracle decoding, a ≥3-bit corruption never silently passes as the
    /// original data: it is either flagged (UE) or reported as SDC.
    #[test]
    fn triple_flip_never_passes_silently(
        data: u64,
        lanes in proptest::collection::btree_set(0u8..72, 3..=5),
    ) {
        let codec = Secded::new();
        let mut stored = codec.encode(data);
        for &lane in &lanes {
            stored.flip_bit(lane);
        }
        match codec.decode_with_oracle(stored, data) {
            DecodeOutcome::DetectedUncorrectable
            | DecodeOutcome::SilentCorruption { .. } => {}
            // Even-weight corruptions of ≥4 lanes can cancel in the parity but
            // still show a non-zero syndrome; a clean decode to the *original*
            // data would require the flips to form a codeword, which has
            // minimum distance 4 — possible for exactly-4 flips matching a
            // codeword, so tolerate Clean only if data survived.
            DecodeOutcome::Clean { data: d } => prop_assert_eq!(d, data),
            DecodeOutcome::Corrected { data: d, .. } => prop_assert_eq!(d, data),
        }
    }

    /// Check-bit syndromes are linear: encode(a) xor encode(b) has the check
    /// bits of encode(a xor b).
    #[test]
    fn encoding_is_linear(a: u64, b: u64) {
        let codec = Secded::new();
        let ca = codec.encode(a);
        let cb = codec.encode(b);
        let cx = codec.encode(a ^ b);
        prop_assert_eq!(ca.check() ^ cb.check(), cx.check());
    }
}
