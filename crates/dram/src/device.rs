//! The simulated DRAM device (one server's worth of DIMMs).

use crate::config::ErrorPhysics;
use crate::geometry::ServerGeometry;
use crate::retention::RetentionLaw;
use crate::variation::RankVariation;
use serde::{Deserialize, Serialize};

/// One manufactured device instance: geometry + physics + the per-rank
/// variation frozen at "manufacturing time" by the seed.
///
/// Different seeds model different servers; the paper's per-DIMM models are
/// trained per rank of a fixed device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramDevice {
    seed: u64,
    geometry: ServerGeometry,
    physics: ErrorPhysics,
    variation: RankVariation,
}

impl DramDevice {
    /// Manufactures a device from a seed with the calibrated physics and
    /// X-Gene2 geometry.
    pub fn with_seed(seed: u64) -> Self {
        Self::with_parts(seed, ServerGeometry::x_gene2(), ErrorPhysics::calibrated())
    }

    /// Manufactures a device with explicit geometry and physics (used by
    /// ablations and tests).
    pub fn with_parts(seed: u64, geometry: ServerGeometry, physics: ErrorPhysics) -> Self {
        let variation = RankVariation::from_seed(seed, &physics);
        Self { seed, geometry, physics, variation }
    }

    /// The manufacturing seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The server geometry.
    pub fn geometry(&self) -> &ServerGeometry {
        &self.geometry
    }

    /// The physics constants in force.
    pub fn physics(&self) -> &ErrorPhysics {
        &self.physics
    }

    /// The frozen per-rank variation.
    pub fn variation(&self) -> &RankVariation {
        &self.variation
    }

    /// The retention sampling law implied by the physics.
    pub fn retention_law(&self) -> RetentionLaw {
        RetentionLaw::from_physics(&self.physics)
    }

    /// Order-stable fingerprint of everything that determines this device's
    /// simulated populations and runs: the manufacturing seed, the geometry
    /// and physics, and the simulator's determinism contract (segment
    /// count, PRNG, stream domains — see `sim`'s module docs, which are
    /// normative). Disk-store keys for campaign data fold this in, so a
    /// re-baselining event (which re-manufactures every device) turns
    /// persisted artifacts into misses instead of stale hits.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher as _;
        let mut hasher = crate::fx::FxHasher::default();
        hasher.write_u64(crate::sim::determinism_fingerprint());
        hasher.write_u64(self.seed);
        let parts = serde_json::to_string(&(&self.geometry, &self.physics))
            .expect("geometry/physics serialize");
        hasher.write(parts.as_bytes());
        hasher.finish()
    }

    /// Expected number of weak cells within the retention window on rank
    /// `rank_index` for a footprint of `footprint_words` interleaved words,
    /// at the given temperature and voltage.
    pub fn expected_weak_cells(
        &self,
        rank_index: usize,
        footprint_words: u64,
        temp_c: f64,
        vdd_v: f64,
    ) -> f64 {
        let words_on_rank = footprint_words as f64 / self.geometry.total_ranks() as f64;
        let bits = words_on_rank * 72.0;
        self.physics.weak_density(temp_c, vdd_v) * self.variation.factor(rank_index) * bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_are_reproducible() {
        assert_eq!(DramDevice::with_seed(9), DramDevice::with_seed(9));
        assert_ne!(
            DramDevice::with_seed(9).variation().factors(),
            DramDevice::with_seed(10).variation().factors()
        );
    }

    #[test]
    fn fingerprint_is_stable_and_separates_manufacturing_inputs() {
        let a = DramDevice::with_seed(1);
        assert_eq!(a.fingerprint(), DramDevice::with_seed(1).fingerprint());
        assert_ne!(a.fingerprint(), DramDevice::with_seed(2).fingerprint());
        // Geometry/physics enter the fingerprint too, not just the seed.
        let mut geometry = ServerGeometry::x_gene2();
        geometry.dimms += 1;
        let grown = DramDevice::with_parts(1, geometry, ErrorPhysics::calibrated());
        assert_ne!(a.fingerprint(), grown.fingerprint());
    }

    #[test]
    fn weak_cell_expectation_scales_with_footprint() {
        let d = DramDevice::with_seed(1);
        let small = d.expected_weak_cells(0, 1 << 20, 50.0, 1.428);
        let large = d.expected_weak_cells(0, 1 << 24, 50.0, 1.428);
        assert!((large / small - 16.0).abs() < 1e-9);
    }

    #[test]
    fn weak_cell_expectation_scales_with_rank_factor() {
        let d = DramDevice::with_seed(2);
        let base = 1 << 26;
        let e0 = d.expected_weak_cells(0, base, 60.0, 1.428);
        let e1 = d.expected_weak_cells(1, base, 60.0, 1.428);
        let f0 = d.variation().factor(0);
        let f1 = d.variation().factor(1);
        assert!(((e0 / e1) - (f0 / f1)).abs() < 1e-9);
    }

    #[test]
    fn hotter_is_weaker() {
        let d = DramDevice::with_seed(3);
        assert!(
            d.expected_weak_cells(0, 1 << 26, 70.0, 1.428)
                > 100.0 * d.expected_weak_cells(0, 1 << 26, 50.0, 1.428)
        );
    }
}
