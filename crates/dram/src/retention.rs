//! The retention-time tail law.

use crate::config::ErrorPhysics;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Samples retention times for weak cells.
///
/// The model: within the tracked window `[0, W]` (where
/// `W = retention_window_s`), the CDF of cell retention times follows
/// `P(retention < t) ∝ exp(alpha·t)` — the empirical consequence is the
/// paper's observation that WER grows exponentially with `TREFP`
/// (Fig. 7f). Sampling uses exact inverse-CDF transformation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionLaw {
    /// Tail slope (1/s).
    pub alpha_per_s: f64,
    /// Window upper bound (s).
    pub window_s: f64,
}

impl RetentionLaw {
    /// Builds the law from the physics constants.
    pub fn from_physics(physics: &ErrorPhysics) -> Self {
        Self { alpha_per_s: physics.alpha_per_s, window_s: physics.retention_window_s }
    }

    /// Samples one retention time in `(−∞, window_s]`, exponentially
    /// weighted toward the window edge (weakest cells are rarest).
    ///
    /// Inverse CDF: with `u ~ U(0,1)`, `r = W + ln(u)/alpha` satisfies
    /// `P(r < t) = exp(alpha·(t − W))` for `t ≤ W`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.window_s + u.ln() / self.alpha_per_s
    }

    /// Fraction of window-weak cells whose retention is below `t` seconds.
    pub fn fraction_below(&self, t: f64) -> f64 {
        if t >= self.window_s {
            1.0
        } else {
            (self.alpha_per_s * (t - self.window_s)).exp()
        }
    }

    /// Inverse of [`RetentionLaw::fraction_below`]: the retention time at
    /// population quantile `q ∈ (0, 1]` — `t = W + ln(q)/alpha`. This is
    /// what lets the simulator realize weak cells *ordered by retention*
    /// and skip the `1 − fraction_below` tail of the population outright.
    pub fn retention_at_fraction(&self, q: f64) -> f64 {
        self.window_s + q.max(f64::MIN_POSITIVE).ln() / self.alpha_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn law() -> RetentionLaw {
        RetentionLaw::from_physics(&ErrorPhysics::calibrated())
    }

    #[test]
    fn samples_stay_below_window() {
        let law = law();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(law.sample(&mut rng) <= law.window_s);
        }
    }

    #[test]
    fn empirical_cdf_matches_exponential_tail() {
        let law = law();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let t = 1.5;
        let below = (0..n).filter(|_| law.sample(&mut rng) < t).count();
        let expected = law.fraction_below(t);
        let got = below as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "empirical {got} vs analytic {expected}"
        );
    }

    #[test]
    fn fraction_below_is_monotone_and_bounded() {
        let law = law();
        let mut prev = 0.0;
        for i in 0..30 {
            let t = i as f64 * 0.1;
            let f = law.fraction_below(t);
            assert!(f >= prev);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(law.fraction_below(10.0), 1.0);
    }

    #[test]
    fn shorter_refresh_catches_exponentially_fewer_cells() {
        let law = law();
        let r1 = law.fraction_below(0.618);
        let r2 = law.fraction_below(1.173);
        let r3 = law.fraction_below(1.727);
        // Equal TREFP steps → equal multiplicative WER steps.
        let ratio_a = r2 / r1;
        let ratio_b = r3 / r2;
        assert!((ratio_a / ratio_b - 1.0).abs() < 0.05);
        assert!(ratio_a > 5.0, "growth per 0.555 s step: {ratio_a}");
    }
}
