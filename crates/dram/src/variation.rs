//! Rank-to-rank manufacturing variation (§II-D).

use crate::config::ErrorPhysics;
use crate::geometry::RANK_COUNT;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Per-rank reliability multipliers, fixed at "manufacturing time" by the
/// device seed.
///
/// The paper finds WER varying up to 188× across DIMM/rank pairs (Fig. 8)
/// and UEs concentrating on two ranks (Fig. 9b). Both are reproduced by
/// giving each rank a log-normal weak-cell density multiplier: pair-collision
/// UEs scale with the *square* of the density, so UE probability
/// concentrates on the weakest ranks automatically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankVariation {
    factors: [f64; RANK_COUNT],
}

impl RankVariation {
    /// Draws per-rank factors from `LogNormal(0, σ)`, normalised so their
    /// mean is 1 (keeping the server-average WER calibrated).
    pub fn from_seed(seed: u64, physics: &ErrorPhysics) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ RANK_SEED_SALT);
        let dist = LogNormal::new(0.0, physics.rank_sigma).expect("valid sigma");
        let mut factors = [0.0; RANK_COUNT];
        for f in &mut factors {
            *f = dist.sample(&mut rng);
        }
        let mean: f64 = factors.iter().sum::<f64>() / RANK_COUNT as f64;
        for f in &mut factors {
            *f /= mean;
        }
        Self { factors }
    }

    /// The weak-cell density multiplier of rank `index` (`0..8`).
    pub fn factor(&self, index: usize) -> f64 {
        self.factors[index]
    }

    /// All factors in rank order.
    pub fn factors(&self) -> &[f64; RANK_COUNT] {
        &self.factors
    }

    /// Max/min factor ratio — the headline "188×" spread.
    pub fn spread(&self) -> f64 {
        let max = self.factors.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.factors.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    }
}

/// Domain-separation salt so rank factors decorrelate from other uses of the
/// device seed.
const RANK_SEED_SALT: u64 = 0x5EED_0F0F_7A6B_C01D;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_deterministic_per_seed() {
        let p = ErrorPhysics::calibrated();
        assert_eq!(RankVariation::from_seed(3, &p), RankVariation::from_seed(3, &p));
        assert_ne!(RankVariation::from_seed(3, &p), RankVariation::from_seed(4, &p));
    }

    #[test]
    fn factors_average_to_one() {
        let p = ErrorPhysics::calibrated();
        let v = RankVariation::from_seed(11, &p);
        let mean: f64 = v.factors().iter().sum::<f64>() / RANK_COUNT as f64;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typical_spread_is_large() {
        let p = ErrorPhysics::calibrated();
        // Median spread across many devices should be in the paper's decade.
        let mut spreads: Vec<f64> = (0..200).map(|s| RankVariation::from_seed(s, &p).spread()).collect();
        spreads.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = spreads[spreads.len() / 2];
        assert!(median > 30.0 && median < 10_000.0, "median spread {median}");
    }

    #[test]
    fn all_factors_positive() {
        let p = ErrorPhysics::calibrated();
        for seed in 0..50 {
            for &f in RankVariation::from_seed(seed, &p).factors() {
                assert!(f > 0.0);
            }
        }
    }
}
