//! Error events produced by a characterization run.

use crate::geometry::RankId;
use serde::{Deserialize, Serialize};

/// One correctable error: a unique 64-bit word observed with a single-bit
/// corruption (the SLIMpro report of the paper's framework carries the same
/// location information).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CeEvent {
    /// Seconds into the run when the error was first observed.
    pub t_s: f64,
    /// Word index within the allocation.
    pub word: u64,
    /// Bit lane within the 72-bit stored word.
    pub lane: u8,
    /// Rank the word resides on.
    pub rank: RankId,
}

/// An uncorrectable (detected multi-bit) error. On the paper's framework
/// any detected UE crashes the system, ending the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeEvent {
    /// Seconds into the run when the UE fired.
    pub t_s: f64,
    /// Rank that produced the UE.
    pub rank: RankId,
}

/// Outcome of one simulated characterization run (one benchmark execution
/// at one operating point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Unique-word correctable errors, sorted by discovery time.
    pub ce_events: Vec<CeEvent>,
    /// The crash-inducing UE, if one fired.
    pub ue: Option<UeEvent>,
    /// Allocated footprint (64-bit words), the WER denominator (eq. 2).
    pub footprint_words: u64,
    /// Requested run duration (s); the effective duration is shorter when a
    /// UE crashed the run.
    pub duration_s: f64,
}

impl RunResult {
    /// Effective observation window (until crash or completion).
    pub fn effective_duration_s(&self) -> f64 {
        self.ue.map_or(self.duration_s, |ue| ue.t_s.min(self.duration_s))
    }

    /// The word error rate, eq. 2: unique CE words / footprint words.
    pub fn wer(&self) -> f64 {
        self.ce_events.len() as f64 / self.footprint_words as f64
    }

    /// WER observed up to time `t_s` (for convergence timelines, Figs. 2/4).
    pub fn wer_at(&self, t_s: f64) -> f64 {
        let n = self.ce_events.iter().take_while(|e| e.t_s <= t_s).count();
        n as f64 / self.footprint_words as f64
    }

    /// CE counts grouped per rank (Fig. 8). Denominator remains the full
    /// footprint, matching the paper's per-DIMM/rank WER plots.
    pub fn wer_per_rank(&self) -> [f64; crate::RANK_COUNT] {
        let mut counts = [0u64; crate::RANK_COUNT];
        for e in &self.ce_events {
            counts[e.rank.index()] += 1;
        }
        let mut wer = [0.0; crate::RANK_COUNT];
        for (w, &c) in wer.iter_mut().zip(counts.iter()) {
            *w = c as f64 / self.footprint_words as f64;
        }
        wer
    }

    /// True when the run crashed with an uncorrectable error.
    pub fn crashed(&self) -> bool {
        self.ue.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunResult {
        RunResult {
            ce_events: vec![
                CeEvent { t_s: 10.0, word: 5, lane: 3, rank: RankId::from_index(0) },
                CeEvent { t_s: 100.0, word: 9, lane: 1, rank: RankId::from_index(0) },
                CeEvent { t_s: 500.0, word: 77, lane: 70, rank: RankId::from_index(3) },
            ],
            ue: None,
            footprint_words: 1000,
            duration_s: 7200.0,
        }
    }

    #[test]
    fn wer_counts_unique_words() {
        assert!((sample().wer() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn wer_timeline_is_monotone() {
        let r = sample();
        assert_eq!(r.wer_at(0.0), 0.0);
        assert!((r.wer_at(50.0) - 0.001).abs() < 1e-12);
        assert!((r.wer_at(7200.0) - r.wer()).abs() < 1e-15);
    }

    #[test]
    fn per_rank_split() {
        let r = sample();
        let per = r.wer_per_rank();
        assert!((per[0] - 0.002).abs() < 1e-12);
        assert!((per[3] - 0.001).abs() < 1e-12);
        assert_eq!(per[1], 0.0);
        let sum: f64 = per.iter().sum();
        assert!((sum - r.wer()).abs() < 1e-12);
    }

    #[test]
    fn crash_truncates_duration() {
        let mut r = sample();
        assert!(!r.crashed());
        assert_eq!(r.effective_duration_s(), 7200.0);
        r.ue = Some(UeEvent { t_s: 3600.0, rank: RankId::from_index(2) });
        assert!(r.crashed());
        assert_eq!(r.effective_duration_s(), 3600.0);
    }
}
