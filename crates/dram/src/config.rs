//! Error-physics constants.
//!
//! Every constant of the statistical DRAM model lives here, with the
//! calibration rationale documented. Absolute values are calibrated so the
//! simulated server lands in the same WER/PUE decades as the paper's
//! device; the *relationships* (exponential slopes, workload couplings)
//! come from the mechanisms described in the paper's §II.

use serde::{Deserialize, Serialize};

/// Tunable constants of the DRAM error physics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorPhysics {
    /// Per-bit density of weak cells with retention below
    /// [`ErrorPhysics::retention_window_s`] at the reference condition
    /// (50 °C, lowered VDD). Calibrated so that an un-refreshed 8 GiB
    /// footprint at `TREFP = 2.283 s` / 50 °C shows `WER ≈ 2×10⁻⁷`
    /// (Fig. 7b's decade).
    pub lambda0_per_bit: f64,
    /// Exponential slope of the retention-time tail CDF (1/s): the number
    /// of cells with retention < t grows as `exp(alpha·t)`. Calibrated to
    /// Fig. 7f's growth of WER with `TREFP` (~5–10× per 0.55 s step).
    pub alpha_per_s: f64,
    /// Temperature acceleration (1/°C): weak-cell density scales as
    /// `exp(beta·(T−50))`. `beta = 0.33` gives ≈27× per 10 °C, matching the
    /// paper's 50→60 °C jump (Fig. 7b vs 7d) and the exponential
    /// retention-temperature law of §II-B.
    pub beta_per_c: f64,
    /// Voltage sensitivity: density scales as
    /// `exp(kappa·(VDD_nom−VDD)/VDD_nom)`. Small, because the paper found
    /// the 5 % VDD reduction alone caused almost no errors (§V).
    pub kappa_vdd: f64,
    /// Retention window (s) within which weak cells are tracked. Must
    /// exceed the largest refresh period of interest (2.283 s).
    pub retention_window_s: f64,
    /// Log-normal σ of per-rank weak-cell density multipliers. `σ = 1.9`
    /// yields max/min ratios in the 100–200× range over 8 ranks (the paper
    /// observed 188×, Fig. 8).
    pub rank_sigma: f64,
    /// Data-coupling strength: effective retention shrinks by up to this
    /// fraction at maximum data-pattern entropy (bit-line coupling grows
    /// with transition density, §II-C and the random-pattern micro).
    pub entropy_coupling: f64,
    /// Fraction of cells that are true-cells (store "1" as charge); the
    /// rest are anti-cells. Vendors mix orientations (§II-D).
    pub true_cell_fraction: f64,
    /// Expected *single-bit disturbance flips* per row activation at the
    /// 50 °C / 2.283 s reference point. Cell-to-cell interference grows
    /// with the row-activation rate — this additive error channel is what
    /// makes the memory access rate the paper's top-correlated feature.
    pub disturb_flips_per_activation: f64,
    /// TREFP slope (1/s) of the disturbance channel (a longer window lets
    /// hammering accumulate before the victim row is restored). Slightly
    /// shallower than the retention slope, which is why the worst-WER
    /// benchmark changes with TREFP/temperature (§V-A observation 2).
    pub disturb_alpha_per_s: f64,
    /// Words of OS/kernel-resident memory outside the benchmark's
    /// allocation. These pages are mostly cold (auto-refresh only) and any
    /// multi-bit word among them crashes the machine — the reason *every*
    /// benchmark crashes at the maximum refresh period at 70 °C (Fig. 9a).
    pub os_resident_words: u64,
    /// Spatial-correlation boost for *companion* weak bits: defects cluster
    /// (shared peripheral circuitry — the multi-bit faults of field studies
    /// \[71\]), so the probability that a manifesting cell's 71 word-mates
    /// contain another below-threshold cell is the independent-cell rate
    /// times this factor. A companion makes the word uncorrectable; this is
    /// what crashes *every* workload at 2.283 s / 70 °C (Fig. 9a) while
    /// leaving 50/60 °C campaigns crash-free.
    pub multi_bit_correlation: f64,
    /// Poisson rate coefficient for *uncorrectable* disturbance bursts:
    /// `λ_burst = c_ue · act_rate² · duration · temp/trefp factors`.
    /// Calibrated so `fmm(par)`-class activation rates give `PUE ≈ 0.8` at
    /// `TREFP = 1.45 s` / 70 °C (Fig. 9a).
    pub ue_burst_coeff: f64,
    /// Temperature slope (1/°C) of the UE-burst rate; strong enough that
    /// bursts effectively vanish below 70 °C (the paper saw no UEs at
    /// 50/60 °C).
    pub ue_burst_beta_per_c: f64,
    /// `TREFP` slope (1/s) of the UE-burst rate (longer windows accumulate
    /// more hammering between refreshes).
    pub ue_burst_alpha_per_s: f64,
    /// Patrol-scrub rate (1/s): background ECC sweep that eventually
    /// discovers errors in words the workload never reads.
    pub scrub_rate_hz: f64,
    /// Failure-onset rate (1/s): a weak cell's first actual decay event is
    /// stochastic (retention fluctuates around its tail value — the VRT
    /// phenomenology of \[65\]). An exponential onset with mean 1800 s makes
    /// 2-hour WER timelines converge with <3 % change over the last
    /// 10 minutes, matching §V-A / Figs. 2 and 4.
    pub onset_rate_hz: f64,
    /// Probability that a weak cell's VRT state is leaky at any instant
    /// (two-state telegraph model; §V-A, \[65\]).
    pub vrt_active_fraction: f64,
    /// VRT toggle rate (1/s).
    pub vrt_toggle_rate_hz: f64,
}

impl ErrorPhysics {
    /// The calibrated default physics (see field docs for rationale).
    pub fn calibrated() -> Self {
        Self {
            lambda0_per_bit: 1.1e-8,
            alpha_per_s: 3.5,
            beta_per_c: 0.33,
            kappa_vdd: 2.0,
            retention_window_s: 3.0,
            rank_sigma: 1.9,
            entropy_coupling: 0.30,
            true_cell_fraction: 0.5,
            disturb_flips_per_activation: 2.0e-10,
            disturb_alpha_per_s: 4.5,
            os_resident_words: 1 << 26, // 512 MiB of kernel/daemon pages
            multi_bit_correlation: 0.05,
            ue_burst_coeff: 6.0e-22,
            ue_burst_beta_per_c: 0.45,
            ue_burst_alpha_per_s: 2.2,
            scrub_rate_hz: 1.0 / 2400.0,
            onset_rate_hz: 1.0 / 1800.0,
            vrt_active_fraction: 0.85,
            vrt_toggle_rate_hz: 1.0 / 3000.0,
        }
    }

    /// Physics with the disturbance (cell-to-cell interference) terms
    /// disabled — the ablation called out in ARCHITECTURE.md §5.
    pub fn without_disturbance(mut self) -> Self {
        self.disturb_flips_per_activation = 0.0;
        self.ue_burst_coeff = 0.0;
        self
    }

    /// Expected weak-cell density per bit within the retention window at
    /// the given temperature (°C) and supply voltage (V).
    pub fn weak_density(&self, temp_c: f64, vdd_v: f64) -> f64 {
        let temp_factor = (self.beta_per_c * (temp_c - 50.0)).exp();
        let vdd_factor =
            (self.kappa_vdd * (crate::OperatingPoint::VDD_NOMINAL - vdd_v).max(0.0) / crate::OperatingPoint::VDD_NOMINAL).exp();
        self.lambda0_per_bit * temp_factor * vdd_factor
    }
}

impl Default for ErrorPhysics {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_grows_with_temperature() {
        let p = ErrorPhysics::calibrated();
        let d50 = p.weak_density(50.0, 1.428);
        let d60 = p.weak_density(60.0, 1.428);
        let d70 = p.weak_density(70.0, 1.428);
        assert!(d60 / d50 > 10.0 && d60 / d50 < 100.0, "10°C ratio {}", d60 / d50);
        assert!((d70 / d60 - d60 / d50).abs() < 1e-6, "exponential in T");
    }

    #[test]
    fn voltage_effect_is_mild() {
        let p = ErrorPhysics::calibrated();
        let nominal = p.weak_density(50.0, 1.5);
        let lowered = p.weak_density(50.0, 1.428);
        let ratio = lowered / nominal;
        assert!(ratio > 1.0 && ratio < 1.5, "5% VDD drop must be mild, got {ratio}");
    }

    #[test]
    fn disturbance_ablation_zeroes_terms() {
        let p = ErrorPhysics::calibrated().without_disturbance();
        assert_eq!(p.disturb_flips_per_activation, 0.0);
        assert_eq!(p.ue_burst_coeff, 0.0);
    }

    #[test]
    fn window_covers_max_trefp() {
        let p = ErrorPhysics::calibrated();
        assert!(p.retention_window_s > crate::OperatingPoint::TREFP_MAX);
    }
}
