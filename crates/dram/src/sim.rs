//! The error-manifestation simulation.
//!
//! One call to [`ErrorSim::run`] plays out a full characterization run (the
//! paper's 2-hour benchmark execution at one operating point). Per rank, a
//! Poisson-sampled population of weak cells is drawn from the retention
//! tail law; crucially, the population is seeded by *(device, rank,
//! temperature, voltage)* only — the same physical cells exist at every
//! refresh period, so sweeping `TREFP` thresholds a fixed population, just
//! as on real silicon. Each cell then either survives (implicitly
//! refreshed faster than it leaks, or its stored data holds it in the
//! non-leaking orientation) or manifests as a correctable error discovered
//! when the word is read or patrol-scrubbed.
//!
//! Three additional channels complete the phenomenology:
//! * an additive *disturbance* channel (row-hammer style single-bit flips
//!   proportional to the row-activation rate) — the mechanism behind the
//!   paper's top feature correlation,
//! * multi-bit *bursts* (quadratic in activation rate) and two weak bits
//!   colliding in one word — the uncorrectable errors of Fig. 9,
//! * a cold *OS-resident* region whose pair collisions crash every
//!   workload at the maximum refresh period at 70 °C.
//!
//! # Performance architecture
//!
//! The hot path is engineered around three ideas (this is the simulator's
//! contract with the campaign layer, so the details are normative):
//!
//! **Quantile-space thinning.** Weak cells are *not* enumerated one by one
//! with a full attribute tuple each (the naive Fig. 3 loop). Instead each
//! rank's population is realized as a Poisson process over the retention
//! *quantile* axis `[0, 1)`, split into [`SEGMENTS`] fixed segments. A cell
//! at quantile `q` has retention `RetentionLaw::retention_at_fraction(q)`,
//! so every cell that could ever fail at the current operating point lies
//! below `q_cap = law.fraction_below(TREFP / coupling)` — segments beyond
//! `q_cap` are skipped *without sampling anything*. Because the tail law is
//! exponential, `q_cap` is tiny at all but the longest refresh periods
//! (e.g. `≈ 5×10⁻⁴` at `TREFP = 0.618 s`), which removes essentially the
//! whole population scan that used to dominate `bench_ablation_scale`.
//! Cells inside the boundary segment are rejected with a single uniform
//! draw before any attribute work happens.
//!
//! **Derived per-cell streams (the seeding contract).** Randomness is
//! keyed, not streamed. With `mix_seed` as the domain separator:
//! * the *population* of rank `r` derives from
//!   `mix_seed(device_seed, r, env_bits(op), POP_DOMAIN)` — temperature
//!   and voltage only, never `TREFP` or the run seed;
//! * segment `s` of that rank seeds its own [`SimRng`] stream, which
//!   yields the segment's Poisson count and each cell's quantile;
//! * cell `(s, j)` derives its attribute stream from the rank population
//!   seed and `cell_key = s·2²⁴ + j`, and its *run* stream (discovery
//!   timing, VRT, companion draws) from
//!   `mix_seed(device_seed, r, op_bits(op), run_seed)` and the same
//!   `cell_key`.
//!
//! A cell's identity — its word, lane, data and retention — is therefore a
//! pure function of `(device, rank, segment, j, temp, vdd)`: independent of
//! the refresh period (populations persist across the `TREFP` sweep, a
//! property the tests assert), independent of how many threads run, and
//! independent of every other cell (which is what lets segments be skipped
//! analytically without perturbing the rest of the population).
//! [`SimRng`] is SplitMix64 — a 64-bit-state generator whose seeding is a
//! single assignment, making "one fresh stream per cell" effectively free;
//! the alias exists so the generator can be swapped in one place.
//!
//! **Order-stable parallelism.** The `(rank × segment-chunk)` grid plus one
//! auxiliary unit per rank (disturbance, OS-resident and burst channels)
//! fans out on rayon. Results are merged *serially in unit order*, so the
//! pair-collision bookkeeping (two corrupted bits in one word → UE) sees
//! events in a canonical order and a run is byte-identical on 1 thread and
//! N threads (`run_is_identical_across_thread_counts` asserts this).
//!
//! # Campaign-level caching: [`PreparedRun`]
//!
//! The population/run split above is exactly what makes campaign-level
//! caching sound: everything drawn from *population* streams is a pure
//! function of `(device, rank, segment, cell, temp, vdd)` and can be
//! realized **once** for an entire TREFP sweep and all PUE repeats, then
//! replayed with fresh run randomness only. [`ErrorSim::prepare`] freezes a
//! rank's realized cells (and the OS-resident walk) into a
//! [`PreparedRun`]; `PreparedRun::run` re-applies the per-operating-point
//! gates and plays out the `(op, run seed, cell)` streams. Both paths share
//! the same gate and manifestation code (`RunContext::sample_cell_attrs` /
//! `RunContext::manifest_cell`), so a prepared replay is **bit-for-bit
//! identical** to the direct [`ErrorSim::run`] at the same seed — the
//! `prepared` module's tests and `wade-core`'s campaign tests assert this.
//!
//! [`PreparedRun`]: crate::PreparedRun
//! [`ErrorSim::prepare`]: ErrorSim::prepare

use crate::device::DramDevice;
use crate::event::{CeEvent, RunResult, UeEvent};
use crate::fx::FxHashMap;
use crate::geometry::RankId;
use crate::op::OperatingPoint;
use crate::profile::DramUsageProfile;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, Poisson};
use rayon::prelude::*;

/// The simulator's pseudo-random generator: SplitMix64 behind an alias so
/// the choice is recorded (and swappable) in exactly one place. See the
/// module docs for why seeding cost is the selection criterion.
pub(crate) type SimRng = SmallRng;

/// Fixed number of retention-quantile segments per rank. Constant across
/// operating points by construction — segment boundaries are part of a
/// cell's identity, so changing this constant re-manufactures every
/// device's weak-cell population (a re-baselining event, like changing the
/// PRNG). Sized so the per-segment overhead (one seeding + one Poisson
/// draw) stays negligible even for near-empty populations while still
/// exposing `SEGMENTS × ranks` independent work units.
const SEGMENTS: u64 = 32;

/// Version tag of the simulator's determinism contract, folded into
/// [`crate::DramDevice::fingerprint`] (and through it into every disk-store
/// key derived from simulated data). Bump this on any **re-baselining
/// event** — changing `SEGMENTS`, the PRNG (`SimRng`), or any stream
/// domain/salt below — so persisted artifacts manufactured under the old
/// contract read as misses instead of stale hits. The constant exists
/// purely for keying; it never enters the simulation itself.
///
/// Public because multi-device consumers (the fleet sharding layer) embed
/// it verbatim in their own store keys: a shard of simulated device
/// histories is only replayable under the contract it was produced with.
pub const DETERMINISM_VERSION: u64 = 1;

/// Segments bundled into one parallel work unit.
const SEGMENTS_PER_CHUNK: u64 = 4;

const POP_DOMAIN: u64 = 0x505F_C311; // population domain (pre-existing)
const CELL_ATTR_SALT: u64 = 0xCE11_A77B_0000_0001;
const CELL_RUN_SALT: u64 = 0xCE11_4D15_0000_0001;
const DISTURB_SALT: u64 = 0xD157_0000_0000_0001;
const OS_POP_SALT: u64 = 0x05C0_1DDA_7A00_0001;
const OS_RUN_SALT: u64 = 0x05C0_1DDA_7A00_0002;
const BURST_SALT: u64 = 0xB025_7000_0000_0001;

/// Order-stable fingerprint of the population/run determinism contract:
/// the segment count plus every stream salt, folded with
/// [`DETERMINISM_VERSION`]. Changing any of them changes this value, which
/// invalidates fingerprint-keyed store entries instead of serving results
/// from a foreign contract.
pub(crate) fn determinism_fingerprint() -> u64 {
    [
        DETERMINISM_VERSION,
        SEGMENTS,
        POP_DOMAIN,
        CELL_ATTR_SALT,
        CELL_RUN_SALT,
        DISTURB_SALT,
        OS_POP_SALT,
        OS_RUN_SALT,
        BURST_SALT,
    ]
    .iter()
    .fold(0xcbf2_9ce4_8422_2325, |h: u64, &v| {
        (h ^ v).wrapping_mul(0x100_0000_01b3).rotate_left(17)
    })
}

/// Simulator for characterization runs against one [`DramDevice`].
#[derive(Debug, Clone)]
pub struct ErrorSim<'d> {
    device: &'d DramDevice,
}

/// One candidate error event produced by a parallel unit, in canonical
/// (segment, cell) order.
pub(crate) struct Candidate {
    pub(crate) t_s: f64,
    pub(crate) word: u64,
    pub(crate) lane: u8,
    /// A spatially-correlated companion bit accompanied the flip: the word
    /// is uncorrectable immediately.
    pub(crate) companion: bool,
}

/// Output of one rank's auxiliary unit (disturbance + OS + burst channels).
pub(crate) struct AuxOutcome {
    disturb: Vec<Candidate>,
    /// UE candidate times from OS pair collisions, OS companions and
    /// disturbance bursts.
    ue_times: Vec<f64>,
}

pub(crate) enum UnitOutcome {
    Pop(Vec<Candidate>),
    Aux(AuxOutcome),
}

/// One realized OS-resident weak cell (already past the data gate), frozen
/// by `PreparedRun`: its retention quantile and its word within the rank's
/// kernel pages.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OsCell {
    pub(crate) q: f64,
    pub(crate) word: u64,
}

/// Where an aux unit's OS-resident cells come from: walked fresh from the
/// population stream (direct path) or replayed from a frozen realization.
pub(crate) enum OsSource<'p> {
    /// Walk the population stream up to this operating point's cap.
    Walk,
    /// Replay a frozen walk (realized at the prepared envelope's cap); the
    /// prefix below the current cap is byte-identical to a fresh walk.
    Prepared(&'p [OsCell]),
}

impl<'d> ErrorSim<'d> {
    /// Creates a simulator bound to a device.
    pub fn new(device: &'d DramDevice) -> Self {
        Self { device }
    }

    /// Simulates one benchmark execution of `duration_s` seconds under
    /// operating point `op` with the DRAM usage described by `profile`.
    ///
    /// `run_seed` captures run-to-run variation (VRT states, discovery
    /// order); re-running with the same seed reproduces the result exactly,
    /// regardless of the rayon pool width (see the module docs).
    ///
    /// # Panics
    /// Panics if the profile or operating point fail validation.
    pub fn run(
        &self,
        profile: &DramUsageProfile,
        op: OperatingPoint,
        duration_s: f64,
        run_seed: u64,
    ) -> RunResult {
        profile.validate().expect("invalid DRAM usage profile");
        op.validate().expect("invalid operating point");
        let ranks = self.device.geometry().total_ranks();
        let ctx = RunContext::new(self.device, profile, op, duration_s, run_seed);

        // One work unit per (rank, segment chunk) plus one auxiliary unit
        // per rank; merged strictly in this order below.
        let chunks_per_rank = RunContext::chunks_per_rank();
        let units: Vec<(usize, usize)> = (0..ranks)
            .flat_map(|r| (0..=chunks_per_rank).map(move |c| (r, c)))
            .collect();
        let outcomes: Vec<UnitOutcome> = units
            .into_par_iter()
            .map(|(rank, chunk)| {
                if chunk < chunks_per_rank {
                    UnitOutcome::Pop(ctx.population_chunk(rank, chunk as u64))
                } else {
                    UnitOutcome::Aux(ctx.aux_channels(rank, OsSource::Walk))
                }
            })
            .collect();
        finalize_outcomes(outcomes, ranks, chunks_per_rank, profile.footprint_words, duration_s)
    }

    /// Freezes the weak-cell population shared by `ops` into a
    /// [`crate::PreparedRun`], so that every TREFP set-point and every
    /// repeat in the group replays the same realization instead of
    /// re-sampling it (see the module docs, *Campaign-level caching*).
    ///
    /// All `ops` must share one (temperature, voltage) pair — those are the
    /// population key — and the prepared envelope covers the longest
    /// refresh period among them.
    ///
    /// # Panics
    /// Panics if `ops` is empty, mixes temperatures or voltages, or fails
    /// validation, or if `profile` fails validation.
    pub fn prepare(
        &self,
        profile: &DramUsageProfile,
        ops: &[OperatingPoint],
    ) -> crate::PreparedRun<'d> {
        crate::PreparedRun::realize(self.device, profile, ops)
    }
}

/// Serial, order-stable merge shared by [`ErrorSim::run`] and the
/// [`crate::PreparedRun`] replay: per rank, `pop_units_per_rank` population
/// units in canonical (segment, cell) order, then the rank's aux unit,
/// share one pair-collision map; a second corrupted bit in an already
/// manifested word upgrades to a UE.
pub(crate) fn finalize_outcomes(
    outcomes: Vec<UnitOutcome>,
    ranks: usize,
    pop_units_per_rank: usize,
    footprint_words: u64,
    duration_s: f64,
) -> RunResult {
    let mut ce_events: Vec<CeEvent> = Vec::new();
    let mut earliest_ue: Option<UeEvent> = None;
    let mut cursor = 0usize;
    for rank_index in 0..ranks {
        let rank = RankId::from_index(rank_index);
        let mut manifested: FxHashMap<u64, f64> = FxHashMap::default();
        for _ in 0..pop_units_per_rank {
            let UnitOutcome::Pop(candidates) = &outcomes[cursor] else {
                unreachable!("population unit expected");
            };
            cursor += 1;
            merge_candidates(candidates, rank, &mut ce_events, &mut manifested, &mut earliest_ue);
        }
        let UnitOutcome::Aux(aux) = &outcomes[cursor] else {
            unreachable!("aux unit expected");
        };
        cursor += 1;
        merge_candidates(&aux.disturb, rank, &mut ce_events, &mut manifested, &mut earliest_ue);
        for &t in &aux.ue_times {
            if earliest_ue.is_none_or(|ue| t < ue.t_s) {
                earliest_ue = Some(UeEvent { t_s: t, rank });
            }
        }
    }

    // A UE crashes the system: drop CEs that would have been discovered
    // after the crash.
    if let Some(ue) = earliest_ue {
        ce_events.retain(|e| e.t_s <= ue.t_s);
    }
    // Discovery times are continuous, so ties are measure-zero; the
    // unstable sort is deterministic regardless (same input order in,
    // same output order out). Times are non-negative, so the IEEE bit
    // pattern is an order-preserving integer key.
    ce_events.sort_unstable_by_key(|e| e.t_s.to_bits());

    RunResult { ce_events, ue: earliest_ue, footprint_words, duration_s }
}

/// Applies a unit's candidates to the rank's merge state in order.
fn merge_candidates(
    candidates: &[Candidate],
    rank: RankId,
    ce_events: &mut Vec<CeEvent>,
    manifested: &mut FxHashMap<u64, f64>,
    earliest_ue: &mut Option<UeEvent>,
) {
    for cand in candidates {
        if cand.companion {
            if earliest_ue.is_none_or(|ue| cand.t_s < ue.t_s) {
                *earliest_ue = Some(UeEvent { t_s: cand.t_s, rank });
            }
            continue;
        }
        record_ce(
            ce_events,
            manifested,
            earliest_ue,
            CeEvent { t_s: cand.t_s, word: cand.word, lane: cand.lane, rank },
        );
    }
}

/// Immutable per-run context shared by all parallel units (and, with run
/// randomness left untouched, by `PreparedRun` realization).
pub(crate) struct RunContext<'a> {
    device: &'a DramDevice,
    profile: &'a DramUsageProfile,
    op: OperatingPoint,
    duration_s: f64,
    run_seed: u64,
    ranks: usize,
    region_words: u64,
    coupling: f64,
    temp_factor: f64,
    companion_scale: f64,
    /// Thinning cap for the benchmark-footprint population.
    q_cap: f64,
    /// Per reuse-quantile effective refresh period `min(TREFP, t_reuse_i)`,
    /// with index [`REUSE_BUCKETS`] for never-reused cells. The reuse
    /// distribution is a 16-point quantile table, so these — and the
    /// companion-probability weights below — have at most 17 distinct
    /// values, precomputed here instead of per cell.
    t_eff_by_bucket: [f64; REUSE_BUCKETS + 1],
    /// `fraction_below(t_eff / coupling)` per reuse bucket (the companion
    /// weight that used to cost one `exp()` per manifesting cell).
    companion_fraction_by_bucket: [f64; REUSE_BUCKETS + 1],
    /// Word-level read rate (reads + patrol scrub) per spatial region,
    /// precomputed so the per-cell lookup is one index instead of a 128-bit
    /// division and two floating-point divisions.
    read_rate_by_region: Vec<f64>,
}

/// Number of quantile points in `ReuseQuantiles`.
const REUSE_BUCKETS: usize = 16;

/// The refresh-period-independent attributes of one realized weak cell that
/// passed the population-side gates, drawn from its private attribute
/// stream (see `RunContext::sample_cell_attrs`).
pub(crate) struct CellAttrs {
    /// Reuse bucket (`REUSE_BUCKETS` = never reused).
    pub(crate) bucket: usize,
    /// 64-bit word index within the footprint, on the cell's rank.
    pub(crate) word: u64,
    /// Bit lane within the 72-bit ECC word.
    pub(crate) lane: u8,
}

/// A gated candidate cell handed to `RunContext::manifest_cell`: the
/// attributes plus the word's read rate and the cell's run-stream identity.
pub(crate) struct GatedCell {
    pub(crate) bucket: usize,
    pub(crate) word: u64,
    pub(crate) lane: u8,
    /// Word-level read rate of the cell's region (reads + patrol scrub).
    pub(crate) read_rate: f64,
    /// `(segment << 24) | index` — keys the cell's derived run stream.
    pub(crate) cell_key: u64,
}

impl<'a> RunContext<'a> {
    /// Number of (rank, segment-chunk) population work units per rank.
    pub(crate) fn chunks_per_rank() -> usize {
        (SEGMENTS / SEGMENTS_PER_CHUNK) as usize
    }

    pub(crate) fn new(
        device: &'a DramDevice,
        profile: &'a DramUsageProfile,
        op: OperatingPoint,
        duration_s: f64,
        run_seed: u64,
    ) -> Self {
        let physics = device.physics();
        let law = device.retention_law();
        let coupling =
            1.0 - physics.entropy_coupling * (profile.entropy_bits / 32.0).clamp(0.0, 1.0);
        let mut t_eff_by_bucket = [op.trefp_s; REUSE_BUCKETS + 1];
        let mut companion_fraction_by_bucket = [0.0; REUSE_BUCKETS + 1];
        for bucket in 0..=REUSE_BUCKETS {
            // Bucket REUSE_BUCKETS is the never-reused case (auto-refresh
            // only): t_eff stays at TREFP.
            if bucket < REUSE_BUCKETS {
                let t_reuse = profile.reuse.sample_at((bucket as f64 + 0.5) / REUSE_BUCKETS as f64)
                    / profile.dram_filter.max(0.05);
                t_eff_by_bucket[bucket] = op.trefp_s.min(t_reuse);
            }
            companion_fraction_by_bucket[bucket] =
                law.fraction_below(t_eff_by_bucket[bucket] / coupling.max(1e-9));
        }
        let region_words = (profile.footprint_words / 64).max(1);
        let read_rate_by_region: Vec<f64> = (0..64)
            .map(|region| {
                let share = profile.region_shares.get(region).copied().unwrap_or(0.0);
                profile.dram_read_rate_hz * share / region_words as f64 + physics.scrub_rate_hz
            })
            .collect();
        Self {
            device,
            profile,
            op,
            duration_s,
            run_seed,
            ranks: device.geometry().total_ranks(),
            region_words,
            coupling,
            temp_factor: (physics.beta_per_c * (op.temp_c - 50.0)).exp(),
            // Companion-bit probability per manifesting cell and per unit of
            // (per-bit weak density × threshold fraction): 71 word-mates
            // times the spatial-correlation boost.
            companion_scale: 71.0 * physics.multi_bit_correlation,
            q_cap: law.fraction_below(op.trefp_s / coupling.max(1e-9)),
            t_eff_by_bucket,
            companion_fraction_by_bucket,
            read_rate_by_region,
        }
    }

    /// Population seed of a rank: temperature/voltage only, so the same
    /// physical cells exist at every refresh period (see module docs).
    fn pop_seed(&self, rank_index: usize) -> u64 {
        mix_seed(self.device.seed(), rank_index as u64, env_bits(self.op), POP_DOMAIN)
    }

    /// Run seed of a rank: full operating point + run seed.
    pub(crate) fn rank_run_seed(&self, rank_index: usize) -> u64 {
        mix_seed(self.device.seed(), rank_index as u64, op_bits(self.op), self.run_seed)
    }

    /// Expected Poisson intensity of a rank's benchmark-footprint weak-cell
    /// population at this context's environment.
    pub(crate) fn expected_weak_cells(&self, rank_index: usize) -> f64 {
        self.device.expected_weak_cells(
            rank_index,
            self.profile.footprint_words,
            self.op.temp_c,
            self.op.vdd_v,
        )
    }

    /// Companion-bit probability per manifesting cell per unit of bucket
    /// weight (see [`RunContext::new`]); a population-side constant.
    pub(crate) fn p_companion_unit(&self, rank_index: usize) -> f64 {
        self.device.physics().weak_density(self.op.temp_c, self.op.vdd_v)
            * self.device.variation().factor(rank_index)
            * self.companion_scale
    }

    /// The implicit-refresh gate at this operating point: the cell leaks
    /// only if its retention (shortened by data coupling) is below the
    /// effective refresh period of its reuse bucket.
    #[inline]
    pub(crate) fn passes_refresh_gate(&self, retention: f64, bucket: usize) -> bool {
        retention * self.coupling < self.t_eff_by_bucket[bucket]
    }

    /// The population-side gates re-applied to an already-realized cell at
    /// this operating point: the thinning cap and the implicit-refresh
    /// gate. (The data-dependence gate is op-independent and already
    /// applied at realization time.) Same comparisons as the direct path.
    #[inline]
    pub(crate) fn cell_is_live(&self, q: f64, retention: f64, bucket: usize) -> bool {
        q < self.q_cap && self.passes_refresh_gate(retention, bucket)
    }

    /// The word-level read rate seen by a word's region (reads plus patrol
    /// scrub). `word / region_words` stays within the 0..64 table because
    /// `region_words = max(footprint/64, 1)`.
    #[inline]
    fn word_read_rate(&self, word: u64) -> f64 {
        let region = (word / self.region_words) as usize;
        self.read_rate_by_region[region.min(63)]
    }

    /// Walks one chunk of a rank's realized weak-cell population below the
    /// thinning cap, invoking `visit(q, cell_key, retention, attr_rng)` for
    /// each candidate cell in canonical (segment, cell) order, with the
    /// cell's private attribute stream freshly seeded. This loop *is* the
    /// population side of the seeding contract, shared by the direct path
    /// and `PreparedRun` realization.
    fn for_each_realized_cell(
        &self,
        rank_index: usize,
        chunk: u64,
        expected: f64,
        mut visit: impl FnMut(f64, u64, f64, &mut SimRng),
    ) {
        let law = self.device.retention_law();
        let pop_seed = self.pop_seed(rank_index);
        let mean_per_segment = expected.min(5.0e7) / SEGMENTS as f64;
        let seg_lo = chunk * SEGMENTS_PER_CHUNK;
        for seg in seg_lo..seg_lo + SEGMENTS_PER_CHUNK {
            // Analytic thinning: the whole segment lies beyond the cap —
            // none of its cells can fail at this operating point, and
            // skipping it cannot perturb any other cell (independent
            // streams).
            if seg as f64 / SEGMENTS as f64 >= self.q_cap {
                break;
            }
            let mut seg_rng = SimRng::seed_from_u64(mix_seed(pop_seed, seg, 0, 0));
            let count = sample_poisson(mean_per_segment, &mut seg_rng);
            for j in 0..count {
                // One uniform rejects above-cap cells before any attribute
                // work. The quantile draw is cap-independent, so the
                // candidate set only ever *grows* with TREFP.
                let q = (seg as f64 + seg_rng.gen::<f64>()) / SEGMENTS as f64;
                if q >= self.q_cap {
                    continue;
                }
                let cell_key = (seg << 24) | j.min((1 << 24) - 1);
                let retention = law.retention_at_fraction(q);
                let mut attr_rng =
                    SimRng::seed_from_u64(mix_seed(pop_seed, cell_key, CELL_ATTR_SALT, 1));
                visit(q, cell_key, retention, &mut attr_rng);
            }
        }
    }

    /// Realizes one chunk of a rank's weak-cell population: all cells whose
    /// retention quantile falls inside the chunk's segments and below the
    /// thinning cap.
    fn population_chunk(&self, rank_index: usize, chunk: u64) -> Vec<Candidate> {
        let expected = self.expected_weak_cells(rank_index);
        if expected <= 0.0 || self.q_cap <= 0.0 {
            return Vec::new();
        }
        let run_seed = self.rank_run_seed(rank_index);
        let p_companion_unit = self.p_companion_unit(rank_index);

        // Roughly half the realized cells survive the data-dependence gate;
        // pre-size for the common case to avoid growth reallocations.
        let mut out = Vec::with_capacity(
            (expected.min(5.0e7) / SEGMENTS as f64 * SEGMENTS_PER_CHUNK as f64 * 0.6) as usize + 4,
        );
        self.for_each_realized_cell(rank_index, chunk, expected, |_q, cell_key, retention, rng| {
            if let Some(attrs) = self.sample_cell_attrs(rank_index, retention, rng) {
                let cell = GatedCell {
                    bucket: attrs.bucket,
                    word: attrs.word,
                    lane: attrs.lane,
                    read_rate: self.word_read_rate(attrs.word),
                    cell_key,
                };
                if let Some(cand) = self.manifest_cell(&cell, run_seed, p_companion_unit) {
                    out.push(cand);
                }
            }
        });
        out
    }

    /// Draws one candidate cell's attributes from its (private) population
    /// stream and applies the population-side gates at this context's
    /// operating point. Returns `None` when the cell cannot leak here:
    /// either its stored data holds it safe, or implicit refresh outpaces
    /// its retention.
    ///
    /// Gates are ordered cheapest-rejection-first, and the draw order is
    /// part of the seeding contract: `is_true`, `u_bit` (data gate),
    /// `u_never`, `u_reuse` (refresh gate), then — only for cells passing
    /// both — word and lane. Because the stream is private to the cell,
    /// stopping early never perturbs any other cell, which is what lets
    /// `PreparedRun` realization (whose envelope context uses the group's
    /// longest refresh period) share this function verbatim with the
    /// direct path.
    pub(crate) fn sample_cell_attrs(
        &self,
        rank_index: usize,
        retention: f64,
        attr_rng: &mut SimRng,
    ) -> Option<CellAttrs> {
        let physics = self.device.physics();
        let profile = self.profile;

        // All per-cell physical attributes come from the cell's population
        // stream so they persist across TREFP settings.
        //
        // Data-dependent vulnerability: a leak flips the bit only when the
        // stored value holds the cell in its charged state; bit-line
        // coupling shortens the effective retention with the written
        // pattern's entropy.
        let is_true_cell = attr_rng.gen_bool(physics.true_cell_fraction);
        let u_bit: f64 = attr_rng.gen();
        let stored_one = u_bit < profile.one_density.clamp(0.0, 1.0);
        if is_true_cell != stored_one {
            return None;
        }

        // Implicit refresh: accesses recharge the cells they touch (§II-C).
        // Following the paper, the refresh period incurred by the program is
        // its word-level reuse time, inflated by the cache filter (only
        // accesses that reach DRAM refresh the stored row copy). Both the
        // resulting `t_eff` and the companion weight below are bucket
        // lookups (17 distinct values per run).
        let u_never: f64 = attr_rng.gen();
        let u_reuse: f64 = attr_rng.gen();
        // Same floor mapping as `ReuseQuantiles::sample_at`, which is
        // itself a 16-point lookup — the bucket tables are an exact
        // refactoring of the old per-cell computation, not a coarsening.
        let bucket = if u_never < profile.never_reused_fraction {
            REUSE_BUCKETS
        } else {
            ((u_reuse.clamp(0.0, 0.999_999) * REUSE_BUCKETS as f64) as usize)
                .min(REUSE_BUCKETS - 1)
        };
        if !self.passes_refresh_gate(retention, bucket) {
            return None;
        }

        let word =
            sample_word_on_rank(profile.footprint_words, rank_index, self.ranks, attr_rng);
        let lane = attr_rng.gen_range(0..72u8);
        Some(CellAttrs { bucket, word, lane })
    }

    /// Plays out the run randomness of a gated candidate cell — discovery
    /// timing and the spatially-correlated companion check — from the
    /// cell's private run stream. Shared verbatim by the direct path and
    /// the `PreparedRun` replay so the two stay bit-identical. Two bad
    /// bits in one word: instant UE.
    pub(crate) fn manifest_cell(
        &self,
        cell: &GatedCell,
        rank_run_seed: u64,
        p_companion_unit: f64,
    ) -> Option<Candidate> {
        let mut run_rng =
            SimRng::seed_from_u64(mix_seed(rank_run_seed, cell.cell_key, CELL_RUN_SALT, 2));
        let t =
            discovery_time(self.device.physics(), cell.read_rate, self.duration_s, &mut run_rng)?;
        let p_companion =
            (p_companion_unit * self.companion_fraction_by_bucket[cell.bucket]).clamp(0.0, 1.0);
        let companion = run_rng.gen_bool(p_companion);
        Some(Candidate { t_s: t, word: cell.word, lane: cell.lane, companion })
    }

    /// Realizes one chunk of a rank's population into frozen
    /// `PreparedCell`s: the `PreparedRun` analogue of `population_chunk`.
    /// Cells that can never manifest anywhere in the prepared envelope —
    /// data-gated, or refresh-gated even at the group's longest refresh
    /// period (`t_eff` grows with TREFP, so failing at the envelope means
    /// failing at every set-point below it) — are dropped here and never
    /// revisited by replays.
    pub(crate) fn prepare_chunk(
        &self,
        rank_index: usize,
        chunk: u64,
    ) -> Vec<crate::prepared::PreparedCell> {
        let expected = self.expected_weak_cells(rank_index);
        if expected <= 0.0 || self.q_cap <= 0.0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(
            (expected.min(5.0e7) / SEGMENTS as f64 * SEGMENTS_PER_CHUNK as f64 * 0.3) as usize + 4,
        );
        self.for_each_realized_cell(rank_index, chunk, expected, |q, cell_key, retention, rng| {
            if let Some(attrs) = self.sample_cell_attrs(rank_index, retention, rng) {
                out.push(crate::prepared::PreparedCell {
                    q,
                    retention,
                    word: attrs.word,
                    cell_key,
                    read_rate: self.word_read_rate(attrs.word),
                    lane: attrs.lane,
                    bucket: attrs.bucket as u8,
                });
            }
        });
        out
    }

    /// The three rank-level channels that are cheap after thinning:
    /// disturbance flips, the OS-resident region and disturbance bursts.
    ///
    /// The disturbance and burst channels are pure run randomness and are
    /// always played out fresh; the OS-resident *population* is either
    /// walked from its stream (`OsSource::Walk`, the direct path) or
    /// replayed from a frozen realization (`OsSource::Prepared`). Both
    /// sources feed the identical run-randomness consumer, so outputs are
    /// bit-identical.
    pub(crate) fn aux_channels(&self, rank_index: usize, os: OsSource<'_>) -> AuxOutcome {
        let physics = self.device.physics();
        let law = self.device.retention_law();
        let profile = self.profile;
        let op = self.op;
        let factor = self.device.variation().factor(rank_index);
        let run_seed = self.rank_run_seed(rank_index);
        let mut disturb = Vec::new();
        let mut ue_times = Vec::new();

        // Disturbance channel: single-bit flips from cell-to-cell
        // interference, proportional to the row-activation rate (the
        // paper's dominant workload effect). Victims are spread over the
        // rows the workload activates.
        let mut rng_disturb = SimRng::seed_from_u64(mix_seed(run_seed, DISTURB_SALT, 0, 3));
        let act_per_rank = profile.row_activation_rate_hz / self.ranks as f64;
        let disturb_mean = physics.disturb_flips_per_activation
            * act_per_rank
            * self.duration_s
            * self.temp_factor
            * (physics.disturb_alpha_per_s * (op.trefp_s - 2.283)).exp()
            * factor;
        let disturb_flips = sample_poisson(disturb_mean, &mut rng_disturb);
        for _ in 0..disturb_flips {
            let word = sample_word_on_rank(
                profile.footprint_words,
                rank_index,
                self.ranks,
                &mut rng_disturb,
            );
            let lane = rng_disturb.gen_range(0..72u8);
            let read_rate_word = self.word_read_rate(word);
            if let Some(t) =
                discovery_time(physics, read_rate_word, self.duration_s, &mut rng_disturb)
            {
                disturb.push(Candidate { t_s: t, word, lane, companion: false });
            }
        }

        // OS-resident cold pages: outside the benchmark's footprint and
        // almost never re-read, so they rely purely on auto-refresh. A pair
        // collision here is a kernel-memory UE — instant crash.
        let q_cap_os = law.fraction_below(op.trefp_s);
        match os {
            OsSource::Walk => {
                self.os_run_draws(rank_index, self.os_walk(rank_index), &mut ue_times);
            }
            OsSource::Prepared(cells) => {
                // The frozen walk was realized at the envelope's cap; its
                // prefix below this op's cap is exactly what a fresh walk
                // would yield (gaps accumulate monotonically).
                let prefix = cells.iter().take_while(|c| c.q < q_cap_os).copied();
                self.os_run_draws(rank_index, prefix, &mut ue_times);
            }
        }

        // Disturbance bursts: clustered multi-bit flips from sustained
        // hammering; quadratic in the activation rate so that parallel
        // memory-intensive workloads dominate at shorter TREFP (Fig. 9a).
        let mut rng_burst = SimRng::seed_from_u64(mix_seed(run_seed, BURST_SALT, 0, 6));
        let burst_rate = physics.ue_burst_coeff
            * profile.row_activation_rate_hz.powi(2)
            * self.duration_s
            * (physics.ue_burst_beta_per_c * (op.temp_c - 70.0)).exp()
            * (physics.ue_burst_alpha_per_s * (op.trefp_s - 1.45)).exp()
            * ue_rank_share(self.device, rank_index);
        let bursts = sample_poisson(burst_rate, &mut rng_burst);
        if bursts > 0 {
            ue_times.push(rng_burst.gen_range(0.0..self.duration_s));
        }

        AuxOutcome { disturb, ue_times }
    }

    /// Walks the OS-resident population of a rank: a Poisson process over
    /// retention-quantile space up to `fraction_below(TREFP)`, yielding the
    /// data-gate-passing cells in increasing-quantile order. Pure
    /// population randomness (the `OS_POP_SALT` stream) — candidate cells
    /// have retention below TREFP by construction and leak iff the stored
    /// bit holds them charged (kernel pages: mixed data).
    pub(crate) fn os_walk(&self, rank_index: usize) -> impl Iterator<Item = OsCell> + '_ {
        let physics = self.device.physics();
        let law = self.device.retention_law();
        let factor = self.device.variation().factor(rank_index);
        let os_words_rank = physics.os_resident_words / self.ranks as u64;
        let os_expected =
            physics.weak_density(self.op.temp_c, self.op.vdd_v) * factor * os_words_rank as f64 * 72.0;
        let q_cap_os = law.fraction_below(self.op.trefp_s);
        let rate = os_expected.min(5.0e7);
        let mut rng_os_pop =
            SimRng::seed_from_u64(mix_seed(self.pop_seed(rank_index), OS_POP_SALT, 0, 4));
        let mut q = 0.0f64;
        let active = os_expected > 0.0 && q_cap_os > 0.0;
        let true_cell_fraction = physics.true_cell_fraction;
        core::iter::from_fn(move || {
            if !active {
                return None;
            }
            loop {
                q += sample_exp(rate, &mut rng_os_pop);
                if q >= q_cap_os {
                    return None;
                }
                let word = rng_os_pop.gen_range(0..os_words_rank.max(1));
                let is_true_cell = rng_os_pop.gen_bool(true_cell_fraction);
                let stored_one = rng_os_pop.gen_bool(0.5);
                if is_true_cell == stored_one {
                    return Some(OsCell { q, word });
                }
            }
        })
    }

    /// Plays the run randomness of the OS-resident channel over an
    /// in-order stream of realized cells: discovery by patrol scrub, the
    /// companion upgrade, and the pair-collision map. One sequential
    /// `OS_RUN_SALT` stream per rank, consumed only for cells the walk
    /// yielded — which is what makes the prepared prefix replay exact.
    fn os_run_draws(
        &self,
        rank_index: usize,
        cells: impl Iterator<Item = OsCell>,
        ue_times: &mut Vec<f64>,
    ) {
        let physics = self.device.physics();
        let law = self.device.retention_law();
        let factor = self.device.variation().factor(rank_index);
        let q_cap_os = law.fraction_below(self.op.trefp_s);
        let mut rng_os_run =
            SimRng::seed_from_u64(mix_seed(self.rank_run_seed(rank_index), OS_RUN_SALT, 0, 5));
        let mut os_manifested: FxHashMap<u64, f64> = FxHashMap::default();
        let p_companion_os = (physics.weak_density(self.op.temp_c, self.op.vdd_v)
            * factor
            * q_cap_os
            * self.companion_scale)
            .clamp(0.0, 1.0);
        for cell in cells {
            if let Some(t) =
                discovery_time(physics, physics.scrub_rate_hz, self.duration_s, &mut rng_os_run)
            {
                if rng_os_run.gen_bool(p_companion_os) {
                    ue_times.push(t);
                    continue;
                }
                if let Some(first) = os_manifested.insert(cell.word, t) {
                    ue_times.push(first.max(t));
                }
            }
        }
    }
}

/// Adds a CE, upgrading to a UE when a second corrupted bit lands in an
/// already-manifested word.
fn record_ce(
    ce_events: &mut Vec<CeEvent>,
    manifested: &mut FxHashMap<u64, f64>,
    earliest_ue: &mut Option<UeEvent>,
    event: CeEvent,
) {
    match manifested.insert(event.word, event.t_s) {
        Some(first_time) => {
            let t_ue = first_time.max(event.t_s);
            if earliest_ue.is_none_or(|ue| t_ue < ue.t_s) {
                *earliest_ue = Some(UeEvent { t_s: t_ue, rank: event.rank });
            }
        }
        None => ce_events.push(event),
    }
}

/// Discovery delay: stochastic failure onset plus the next read/scrub.
/// Cells starting in the benign VRT state wait for a toggle first.
fn discovery_time<R: RngCore>(
    physics: &crate::config::ErrorPhysics,
    read_rate_hz: f64,
    duration_s: f64,
    rng: &mut R,
) -> Option<f64> {
    let mut t = sample_exp(physics.onset_rate_hz, rng) + sample_exp(read_rate_hz, rng);
    if !rng.gen_bool(physics.vrt_active_fraction) {
        t += sample_exp(physics.vrt_toggle_rate_hz, rng);
    }
    (t <= duration_s).then_some(t)
}

/// The share of burst-UE intensity attributed to a rank: proportional to the
/// *square* of its weak-cell factor, concentrating UEs on the weakest ranks
/// as in Fig. 9b.
fn ue_rank_share(device: &DramDevice, rank_index: usize) -> f64 {
    let factors = device.variation().factors();
    let sum_sq: f64 = factors.iter().map(|f| f * f).sum();
    factors[rank_index].powi(2) / sum_sq
}

/// Samples a uniformly-random 64-bit word index that interleaves onto the
/// given rank (words interleave by 64-byte line round-robin).
///
/// Lines (8 words) rotate across ranks; line `l` lives on rank
/// `l mod ranks`. When the footprint is too small to place any line on the
/// requested rank (fewer than `8 × ranks` words), the word is drawn
/// uniformly from the footprint instead — a documented small-footprint
/// approximation that keeps the sampler total. A zero-word footprint is
/// rejected by `DramUsageProfile::validate`, but the sampler still guards
/// it rather than underflowing.
fn sample_word_on_rank<R: RngCore>(
    footprint_words: u64,
    rank_index: usize,
    ranks: usize,
    rng: &mut R,
) -> u64 {
    if footprint_words == 0 {
        return 0;
    }
    let lines = footprint_words.div_ceil(8);
    let rank = rank_index as u64;
    let stride = ranks as u64;
    // Number of lines landing on this rank: l = i·stride + rank < lines.
    let lines_on_rank = if lines > rank { (lines - rank).div_ceil(stride) } else { 0 };
    if lines_on_rank == 0 {
        return rng.gen_range(0..footprint_words);
    }
    let line = rng.gen_range(0..lines_on_rank) * stride + rank;
    let base = line * 8;
    // The footprint's final line may be partial.
    let width = 8u64.min(footprint_words - base);
    base + rng.gen_range(0..width)
}

fn sample_poisson<R: RngCore>(mean: f64, rng: &mut R) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    // Guard enormous means (far beyond the modelled regime).
    let mean = mean.min(5.0e7);
    Poisson::new(mean).map(|d| d.sample(rng) as u64).unwrap_or(0)
}

fn sample_exp<R: RngCore>(rate_hz: f64, rng: &mut R) -> f64 {
    if rate_hz <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_hz
}

/// Environment bits for the *population* seed: temperature and voltage only
/// (the same cells exist at every refresh period).
fn env_bits(op: OperatingPoint) -> u64 {
    let v = (op.vdd_v * 1e6) as u64;
    let c = (op.temp_c * 1e3) as u64;
    v.rotate_left(21) ^ c.rotate_left(42)
}

/// Folds the full operating point into seed material for run randomness.
fn op_bits(op: OperatingPoint) -> u64 {
    let t = (op.trefp_s * 1e6) as u64;
    t ^ env_bits(op)
}

/// SplitMix64-style seed mixing for statistically independent streams.
fn mix_seed(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(34))
        .wrapping_add(d.rotate_left(51));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorPhysics;

    const GIB_WORDS: u64 = 1 << 27; // 1 GiB of 64-bit words

    fn device() -> DramDevice {
        DramDevice::with_seed(39)
    }

    fn profile() -> DramUsageProfile {
        DramUsageProfile::uniform_synthetic(GIB_WORDS)
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 50.0);
        let a = sim.run(&profile(), op, 7200.0, 5);
        let b = sim.run(&profile(), op, 7200.0, 5);
        assert_eq!(a, b);
        let c = sim.run(&profile(), op, 7200.0, 6);
        assert_ne!(a, c, "different run seeds should differ (VRT/discovery)");
    }

    #[test]
    fn run_is_identical_across_thread_counts() {
        // The parallel fan-out must be invisible: byte-identical results on
        // a 1-thread and an N-thread rayon pool.
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 70.0);
        let p = profile();
        let one = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let many = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let serial = one.install(|| sim.run(&p, op, 7200.0, 11));
        let parallel = many.install(|| sim.run(&p, op, 7200.0, 11));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn populations_persist_across_trefp() {
        // The same weak cells must fail at 1.727 s and 2.283 s: the shorter
        // threshold's error words are a subset of the longer's.
        let d = device();
        let sim = ErrorSim::new(&d);
        let p = profile();
        let a = sim.run(&p, OperatingPoint::relaxed(1.727, 60.0), 7200.0, 1);
        let b = sim.run(&p, OperatingPoint::relaxed(2.283, 60.0), 7200.0, 1);
        let words_b: std::collections::HashSet<u64> =
            b.ce_events.iter().map(|e| e.word).collect();
        let retained = a
            .ce_events
            .iter()
            .filter(|e| words_b.contains(&e.word))
            .count();
        // Discovery truncation and the disturbance channel add noise, but
        // the bulk of the shorter-TREFP errors must reappear.
        assert!(
            retained as f64 >= 0.6 * a.ce_events.len() as f64,
            "only {retained}/{} persisted",
            a.ce_events.len()
        );
    }

    #[test]
    fn wer_grows_exponentially_with_trefp() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let p = DramUsageProfile::uniform_synthetic(1 << 30);
        let mut prev = 0.0;
        for &t in &OperatingPoint::WER_TREFP_SWEEP {
            let r = sim.run(&p, OperatingPoint::relaxed(t, 60.0), 7200.0, 1);
            let wer = r.wer();
            assert!(wer > prev, "WER must grow with TREFP: {wer} after {prev}");
            if prev > 0.0 {
                assert!(wer / prev > 2.0, "growth should be strong: {}", wer / prev);
            }
            prev = wer;
        }
    }

    #[test]
    fn hotter_means_more_errors() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op50 = OperatingPoint::relaxed(2.283, 50.0);
        let op60 = OperatingPoint::relaxed(2.283, 60.0);
        let w50 = sim.run(&profile(), op50, 7200.0, 1).wer();
        let w60 = sim.run(&profile(), op60, 7200.0, 1).wer();
        assert!(w60 > 5.0 * w50, "60°C {w60} vs 50°C {w50}");
    }

    #[test]
    fn nominal_refresh_is_clean() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let r = sim.run(&profile(), OperatingPoint::nominal(), 7200.0, 1);
        assert_eq!(r.ce_events.len(), 0, "64 ms refresh must not leak");
        assert!(!r.crashed());
    }

    #[test]
    fn fast_reuse_suppresses_errors() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let slow = profile(); // 5 s reuse > TREFP: no protection
        let mut fast = profile();
        fast.reuse = crate::ReuseQuantiles::constant(0.05);
        fast.never_reused_fraction = 0.0;
        fast.dram_filter = 1.0;
        let w_slow = sim.run(&slow, op, 7200.0, 1).wer();
        let w_fast = sim.run(&fast, op, 7200.0, 1).wer();
        assert!(
            w_fast < w_slow / 3.0,
            "implicit refresh should suppress errors: fast {w_fast} slow {w_slow}"
        );
    }

    #[test]
    fn high_activation_rate_disturbs() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut calm = profile();
        calm.row_activation_rate_hz = 1.0e4;
        let mut hot = calm.clone();
        hot.row_activation_rate_hz = 2.0e7;
        let w_calm = sim.run(&calm, op, 7200.0, 2).wer();
        let w_hot = sim.run(&hot, op, 7200.0, 2).wer();
        assert!(w_hot > w_calm, "disturbance must raise WER: {w_hot} vs {w_calm}");
    }

    #[test]
    fn disturbance_ablation_removes_the_effect() {
        let physics = ErrorPhysics::calibrated().without_disturbance();
        let d = DramDevice::with_parts(39, crate::ServerGeometry::x_gene2(), physics);
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut calm = profile();
        calm.row_activation_rate_hz = 1.0e4;
        let mut hot = calm.clone();
        hot.row_activation_rate_hz = 2.0e7;
        let w_calm = sim.run(&calm, op, 7200.0, 2).wer();
        let w_hot = sim.run(&hot, op, 7200.0, 2).wer();
        let ratio = w_hot / w_calm.max(1e-300);
        assert!(
            (0.8..1.25).contains(&ratio),
            "ablated physics must not react to activation rate: ratio {ratio}"
        );
    }

    #[test]
    fn max_trefp_at_70c_crashes() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 70.0);
        let crashes = (0..5)
            .filter(|&s| sim.run(&profile(), op, 7200.0, s).crashed())
            .count();
        assert!(crashes >= 4, "max TREFP at 70 °C should almost always crash: {crashes}/5");
    }

    #[test]
    fn cool_runs_rarely_crash() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(1.450, 50.0);
        let crashes = (0..5)
            .filter(|&s| sim.run(&profile(), op, 7200.0, s).crashed())
            .count();
        assert_eq!(crashes, 0, "50 °C runs must not crash");
    }

    #[test]
    fn rank_variation_shows_up_in_results() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let per_rank = sim.run(&profile(), op, 7200.0, 3).wer_per_rank();
        let max = per_rank.iter().cloned().fold(f64::MIN, f64::max);
        let min_nonzero = per_rank.iter().cloned().filter(|&w| w > 0.0).fold(f64::MAX, f64::min);
        assert!(max / min_nonzero > 5.0, "rank spread: {}", max / min_nonzero);
    }

    #[test]
    fn timeline_converges_within_two_hours() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let r = sim.run(&profile(), op, 7200.0, 4);
        let w_110 = r.wer_at(6600.0);
        let w_120 = r.wer_at(7200.0);
        assert!(w_120 > 0.0);
        let change = (w_120 - w_110) / w_120;
        assert!(change < 0.10, "last-10-minute change {change} too large");
        assert!(r.wer_at(1800.0) < 0.8 * w_120);
    }

    #[test]
    fn zero_entropy_data_is_safer_than_random() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut plain = profile();
        plain.entropy_bits = 0.0;
        let mut random = profile();
        random.entropy_bits = 32.0;
        let w_plain = sim.run(&plain, op, 7200.0, 9).wer();
        let w_random = sim.run(&random, op, 7200.0, 9).wer();
        assert!(w_random > w_plain, "coupling: random {w_random} vs plain {w_plain}");
    }

    // ---- sample_word_on_rank ------------------------------------------------

    fn rank_of(word: u64, ranks: u64) -> u64 {
        (word / 8) % ranks
    }

    #[test]
    fn sampled_words_land_on_the_requested_rank() {
        let mut rng = SimRng::seed_from_u64(1);
        for &footprint in &[1u64 << 27, 1 << 20, 4096, 512, 64] {
            for rank in 0..8usize {
                for _ in 0..200 {
                    let w = sample_word_on_rank(footprint, rank, 8, &mut rng);
                    assert!(w < footprint, "word {w} outside footprint {footprint}");
                    assert_eq!(
                        rank_of(w, 8),
                        rank as u64,
                        "word {w} of footprint {footprint} not on rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_footprints_stay_in_bounds_without_panicking() {
        // Footprints smaller than 8 × ranks cannot place a line on every
        // rank; the sampler must fall back to in-footprint words (the old
        // clamp placed them on the wrong rank *and* underflowed at zero).
        let mut rng = SimRng::seed_from_u64(2);
        for &footprint in &[1u64, 3, 7, 8, 9, 15] {
            for rank in 0..8usize {
                for _ in 0..50 {
                    let w = sample_word_on_rank(footprint, rank, 8, &mut rng);
                    assert!(w < footprint, "word {w} outside footprint {footprint}");
                }
            }
        }
        assert_eq!(sample_word_on_rank(0, 3, 8, &mut rng), 0, "zero footprint guard");
    }

    #[test]
    fn partial_final_line_is_respected() {
        // 1000 words = 125 lines exactly; 1001 words adds a 1-word line on
        // rank 125 % 8 == 5. Words of that line must stay below 1001.
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..2000 {
            let w = sample_word_on_rank(1001, 5, 8, &mut rng);
            assert!(w < 1001);
            assert_eq!(rank_of(w, 8), 5);
        }
    }
}
