//! The error-manifestation simulation.
//!
//! One call to [`ErrorSim::run`] plays out a full characterization run (the
//! paper's 2-hour benchmark execution at one operating point). Per rank, a
//! Poisson-sampled population of weak cells is drawn from the retention
//! tail law; crucially, the population is seeded by *(device, rank,
//! temperature, voltage)* only — the same physical cells exist at every
//! refresh period, so sweeping `TREFP` thresholds a fixed population, just
//! as on real silicon. Each cell then either survives (implicitly
//! refreshed faster than it leaks, or its stored data holds it in the
//! non-leaking orientation) or manifests as a correctable error discovered
//! when the word is read or patrol-scrubbed.
//!
//! Three additional channels complete the phenomenology:
//! * an additive *disturbance* channel (row-hammer style single-bit flips
//!   proportional to the row-activation rate) — the mechanism behind the
//!   paper's top feature correlation,
//! * multi-bit *bursts* (quadratic in activation rate) and two weak bits
//!   colliding in one word — the uncorrectable errors of Fig. 9,
//! * a cold *OS-resident* region whose pair collisions crash every
//!   workload at the maximum refresh period at 70 °C.

use crate::device::DramDevice;
use crate::event::{CeEvent, RunResult, UeEvent};
use crate::geometry::RankId;
use crate::op::OperatingPoint;
use crate::profile::DramUsageProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Poisson};
use std::collections::HashMap;

/// Simulator for characterization runs against one [`DramDevice`].
#[derive(Debug, Clone)]
pub struct ErrorSim<'d> {
    device: &'d DramDevice,
}

impl<'d> ErrorSim<'d> {
    /// Creates a simulator bound to a device.
    pub fn new(device: &'d DramDevice) -> Self {
        Self { device }
    }

    /// Simulates one benchmark execution of `duration_s` seconds under
    /// operating point `op` with the DRAM usage described by `profile`.
    ///
    /// `run_seed` captures run-to-run variation (VRT states, discovery
    /// order); re-running with the same seed reproduces the result exactly.
    ///
    /// # Panics
    /// Panics if the profile or operating point fail validation.
    pub fn run(
        &self,
        profile: &DramUsageProfile,
        op: OperatingPoint,
        duration_s: f64,
        run_seed: u64,
    ) -> RunResult {
        profile.validate().expect("invalid DRAM usage profile");
        op.validate().expect("invalid operating point");
        let physics = self.device.physics();
        let law = self.device.retention_law();
        let geometry = self.device.geometry();
        let ranks = geometry.total_ranks();

        let mut ce_events: Vec<CeEvent> = Vec::new();
        let mut earliest_ue: Option<UeEvent> = None;

        let region_words = (profile.footprint_words / 64).max(1);
        let coupling =
            1.0 - physics.entropy_coupling * (profile.entropy_bits / 32.0).clamp(0.0, 1.0);
        let temp_factor = (physics.beta_per_c * (op.temp_c - 50.0)).exp();
        // Companion-bit probability per manifesting cell and per unit of
        // (per-bit weak density × threshold fraction): 71 word-mates times
        // the spatial-correlation boost.
        let companion_scale = 71.0 * physics.multi_bit_correlation;

        for rank_index in 0..ranks {
            // Population randomness: fixed by (device, rank, temp, vdd).
            let mut rng_pop = StdRng::seed_from_u64(mix_seed(
                self.device.seed(),
                rank_index as u64,
                env_bits(op),
                0x505F_C311, // population domain
            ));
            // Run randomness: discovery order, VRT states, burst arrivals.
            let mut rng_run = StdRng::seed_from_u64(mix_seed(
                self.device.seed(),
                rank_index as u64,
                op_bits(op),
                run_seed,
            ));
            let rank = RankId::from_index(rank_index);
            let expected = self.device.expected_weak_cells(
                rank_index,
                profile.footprint_words,
                op.temp_c,
                op.vdd_v,
            );
            let population = sample_poisson(expected, &mut rng_pop);

            // word → discovery time of already-manifested cells, for
            // multi-bit (pair) UE detection.
            let mut manifested: HashMap<u64, f64> = HashMap::new();

            for _ in 0..population {
                // All per-cell physical attributes come from the population
                // stream so they persist across TREFP settings.
                let retention = law.sample(&mut rng_pop);
                let word =
                    sample_word_on_rank(profile.footprint_words, rank_index, ranks, &mut rng_pop);
                let lane = rng_pop.gen_range(0..72u8);
                let u_never: f64 = rng_pop.gen();
                let u_reuse: f64 = rng_pop.gen();
                let is_true_cell = rng_pop.gen_bool(physics.true_cell_fraction);
                let u_bit: f64 = rng_pop.gen();

                // Implicit refresh: accesses recharge the cells they touch
                // (§II-C). Following the paper, the refresh period incurred
                // by the program is its word-level reuse time, inflated by
                // the cache filter (only accesses that reach DRAM refresh
                // the stored row copy).
                let t_reuse = if u_never < profile.never_reused_fraction {
                    f64::INFINITY
                } else {
                    profile.reuse.sample_at(u_reuse) / profile.dram_filter.max(0.05)
                };
                let t_eff = op.trefp_s.min(t_reuse);

                // Data-dependent vulnerability: a leak flips the bit only
                // when the stored value holds the cell in its charged
                // state; bit-line coupling shortens the effective retention
                // with the written pattern's entropy.
                let stored_one = u_bit < profile.one_density.clamp(0.0, 1.0);
                let vulnerable = is_true_cell == stored_one;
                let retention_eff = retention * coupling;

                if !(vulnerable && retention_eff < t_eff) {
                    continue;
                }

                let region = ((word as u128 * 64) / profile.footprint_words as u128) as usize;
                let share = profile.region_shares.get(region).copied().unwrap_or(0.0);
                let read_rate_word = profile.dram_read_rate_hz * share / region_words as f64
                    + physics.scrub_rate_hz;
                if let Some(t) = discovery_time(physics, read_rate_word, duration_s, &mut rng_run) {
                    // Spatially-correlated companion bit: the same gating
                    // (threshold, coupling) applied to a clustered
                    // neighbour. Two bad bits in one word: instant UE.
                    let p_companion = (physics.weak_density(op.temp_c, op.vdd_v)
                        * self.device.variation().factor(rank_index)
                        * law.fraction_below(t_eff / coupling.max(1e-9))
                        * companion_scale)
                        .clamp(0.0, 1.0);
                    if rng_run.gen_bool(p_companion) {
                        if earliest_ue.map_or(true, |ue| t < ue.t_s) {
                            earliest_ue = Some(UeEvent { t_s: t, rank });
                        }
                        continue;
                    }
                    record_ce(
                        &mut ce_events,
                        &mut manifested,
                        &mut earliest_ue,
                        CeEvent { t_s: t, word, lane, rank },
                    );
                }
            }

            // Disturbance channel: single-bit flips from cell-to-cell
            // interference, proportional to the row-activation rate (the
            // paper's dominant workload effect). Victims are spread over
            // the rows the workload activates.
            let act_per_rank = profile.row_activation_rate_hz / ranks as f64;
            let disturb_mean = physics.disturb_flips_per_activation
                * act_per_rank
                * duration_s
                * temp_factor
                * (physics.disturb_alpha_per_s * (op.trefp_s - 2.283)).exp()
                * self.device.variation().factor(rank_index);
            let disturb_flips = sample_poisson(disturb_mean, &mut rng_run);
            for _ in 0..disturb_flips {
                let word =
                    sample_word_on_rank(profile.footprint_words, rank_index, ranks, &mut rng_run);
                let lane = rng_run.gen_range(0..72u8);
                let region = ((word as u128 * 64) / profile.footprint_words as u128) as usize;
                let share = profile.region_shares.get(region).copied().unwrap_or(0.0);
                let read_rate_word = profile.dram_read_rate_hz * share / region_words as f64
                    + physics.scrub_rate_hz;
                if let Some(t) = discovery_time(physics, read_rate_word, duration_s, &mut rng_run) {
                    record_ce(
                        &mut ce_events,
                        &mut manifested,
                        &mut earliest_ue,
                        CeEvent { t_s: t, word, lane, rank },
                    );
                }
            }

            // OS-resident cold pages: outside the benchmark's footprint and
            // almost never re-read, so they rely purely on auto-refresh. A
            // pair collision here is a kernel-memory UE — instant crash.
            let os_words_rank = physics.os_resident_words / ranks as u64;
            let os_expected = physics.weak_density(op.temp_c, op.vdd_v)
                * self.device.variation().factor(rank_index)
                * os_words_rank as f64
                * 72.0;
            let os_population = sample_poisson(os_expected, &mut rng_pop);
            let mut os_manifested: HashMap<u64, f64> = HashMap::new();
            let p_companion_os = (physics.weak_density(op.temp_c, op.vdd_v)
                * self.device.variation().factor(rank_index)
                * law.fraction_below(op.trefp_s)
                * companion_scale)
                .clamp(0.0, 1.0);
            for _ in 0..os_population {
                let retention = law.sample(&mut rng_pop);
                let word = rng_pop.gen_range(0..os_words_rank.max(1));
                let is_true_cell = rng_pop.gen_bool(physics.true_cell_fraction);
                let stored_one = rng_pop.gen_bool(0.5); // kernel pages: mixed data
                if !(is_true_cell == stored_one && retention < op.trefp_s) {
                    continue;
                }
                if let Some(t) =
                    discovery_time(physics, physics.scrub_rate_hz, duration_s, &mut rng_run)
                {
                    if rng_run.gen_bool(p_companion_os) {
                        if earliest_ue.map_or(true, |ue| t < ue.t_s) {
                            earliest_ue = Some(UeEvent { t_s: t, rank });
                        }
                        continue;
                    }
                    if let Some(first) = os_manifested.insert(word, t) {
                        let t_ue = first.max(t);
                        if earliest_ue.map_or(true, |ue| t_ue < ue.t_s) {
                            earliest_ue = Some(UeEvent { t_s: t_ue, rank });
                        }
                    }
                }
            }

            // Disturbance bursts: clustered multi-bit flips from sustained
            // hammering; quadratic in the activation rate so that parallel
            // memory-intensive workloads dominate at shorter TREFP
            // (Fig. 9a).
            let burst_rate = physics.ue_burst_coeff
                * profile.row_activation_rate_hz.powi(2)
                * duration_s
                * (physics.ue_burst_beta_per_c * (op.temp_c - 70.0)).exp()
                * (physics.ue_burst_alpha_per_s * (op.trefp_s - 1.45)).exp()
                * ue_rank_share(self.device, rank_index);
            let bursts = sample_poisson(burst_rate, &mut rng_run);
            if bursts > 0 {
                let t_burst = rng_run.gen_range(0.0..duration_s);
                if earliest_ue.map_or(true, |ue| t_burst < ue.t_s) {
                    earliest_ue = Some(UeEvent { t_s: t_burst, rank });
                }
            }
        }

        // A UE crashes the system: drop CEs that would have been discovered
        // after the crash.
        if let Some(ue) = earliest_ue {
            ce_events.retain(|e| e.t_s <= ue.t_s);
        }
        ce_events.sort_by(|a, b| a.t_s.partial_cmp(&b.t_s).unwrap());

        RunResult {
            ce_events,
            ue: earliest_ue,
            footprint_words: profile.footprint_words,
            duration_s,
        }
    }
}

/// Adds a CE, upgrading to a UE when a second corrupted bit lands in an
/// already-manifested word.
fn record_ce(
    ce_events: &mut Vec<CeEvent>,
    manifested: &mut HashMap<u64, f64>,
    earliest_ue: &mut Option<UeEvent>,
    event: CeEvent,
) {
    match manifested.insert(event.word, event.t_s) {
        Some(first_time) => {
            let t_ue = first_time.max(event.t_s);
            if earliest_ue.map_or(true, |ue| t_ue < ue.t_s) {
                *earliest_ue = Some(UeEvent { t_s: t_ue, rank: event.rank });
            }
        }
        None => ce_events.push(event),
    }
}

/// Discovery delay: stochastic failure onset plus the next read/scrub.
/// Cells starting in the benign VRT state wait for a toggle first.
fn discovery_time(
    physics: &crate::config::ErrorPhysics,
    read_rate_hz: f64,
    duration_s: f64,
    rng: &mut StdRng,
) -> Option<f64> {
    let mut t = sample_exp(physics.onset_rate_hz, rng) + sample_exp(read_rate_hz, rng);
    if !rng.gen_bool(physics.vrt_active_fraction) {
        t += sample_exp(physics.vrt_toggle_rate_hz, rng);
    }
    (t <= duration_s).then_some(t)
}

/// The share of burst-UE intensity attributed to a rank: proportional to the
/// *square* of its weak-cell factor, concentrating UEs on the weakest ranks
/// as in Fig. 9b.
fn ue_rank_share(device: &DramDevice, rank_index: usize) -> f64 {
    let factors = device.variation().factors();
    let sum_sq: f64 = factors.iter().map(|f| f * f).sum();
    factors[rank_index].powi(2) / sum_sq
}

/// Samples a uniformly-random 64-bit word index that interleaves onto the
/// given rank (words interleave by 64-byte line round-robin).
fn sample_word_on_rank(footprint_words: u64, rank_index: usize, ranks: usize, rng: &mut StdRng) -> u64 {
    let lines = (footprint_words / 8).max(1);
    let lines_per_rank = (lines / ranks as u64).max(1);
    let line_on_rank = rng.gen_range(0..lines_per_rank);
    let line = line_on_rank * ranks as u64 + rank_index as u64;
    (line * 8 + rng.gen_range(0..8)).min(footprint_words - 1)
}

fn sample_poisson(mean: f64, rng: &mut StdRng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    // rand_distr's Poisson panics for enormous means; those are far beyond
    // the modelled regime but guard anyway.
    let mean = mean.min(5.0e7);
    Poisson::new(mean).map(|d| d.sample(rng) as u64).unwrap_or(0)
}

fn sample_exp(rate_hz: f64, rng: &mut StdRng) -> f64 {
    if rate_hz <= 0.0 {
        return f64::INFINITY;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate_hz
}

/// Environment bits for the *population* seed: temperature and voltage only
/// (the same cells exist at every refresh period).
fn env_bits(op: OperatingPoint) -> u64 {
    let v = (op.vdd_v * 1e6) as u64;
    let c = (op.temp_c * 1e3) as u64;
    v.rotate_left(21) ^ c.rotate_left(42)
}

/// Folds the full operating point into seed material for run randomness.
fn op_bits(op: OperatingPoint) -> u64 {
    let t = (op.trefp_s * 1e6) as u64;
    t ^ env_bits(op)
}

/// SplitMix64-style seed mixing for statistically independent streams.
fn mix_seed(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(34))
        .wrapping_add(d.rotate_left(51));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ErrorPhysics;

    const GIB_WORDS: u64 = 1 << 27; // 1 GiB of 64-bit words

    fn device() -> DramDevice {
        DramDevice::with_seed(39)
    }

    fn profile() -> DramUsageProfile {
        DramUsageProfile::uniform_synthetic(GIB_WORDS)
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 50.0);
        let a = sim.run(&profile(), op, 7200.0, 5);
        let b = sim.run(&profile(), op, 7200.0, 5);
        assert_eq!(a, b);
        let c = sim.run(&profile(), op, 7200.0, 6);
        assert_ne!(a, c, "different run seeds should differ (VRT/discovery)");
    }

    #[test]
    fn populations_persist_across_trefp() {
        // The same weak cells must fail at 1.727 s and 2.283 s: the shorter
        // threshold's error words are a subset of the longer's.
        let d = device();
        let sim = ErrorSim::new(&d);
        let p = profile();
        let a = sim.run(&p, OperatingPoint::relaxed(1.727, 60.0), 7200.0, 1);
        let b = sim.run(&p, OperatingPoint::relaxed(2.283, 60.0), 7200.0, 1);
        let words_b: std::collections::HashSet<u64> =
            b.ce_events.iter().map(|e| e.word).collect();
        let retained = a
            .ce_events
            .iter()
            .filter(|e| words_b.contains(&e.word))
            .count();
        // Discovery truncation and the disturbance channel add noise, but
        // the bulk of the shorter-TREFP errors must reappear.
        assert!(
            retained as f64 >= 0.6 * a.ce_events.len() as f64,
            "only {retained}/{} persisted",
            a.ce_events.len()
        );
    }

    #[test]
    fn wer_grows_exponentially_with_trefp() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let p = DramUsageProfile::uniform_synthetic(1 << 30);
        let mut prev = 0.0;
        for &t in &OperatingPoint::WER_TREFP_SWEEP {
            let r = sim.run(&p, OperatingPoint::relaxed(t, 60.0), 7200.0, 1);
            let wer = r.wer();
            assert!(wer > prev, "WER must grow with TREFP: {wer} after {prev}");
            if prev > 0.0 {
                assert!(wer / prev > 2.0, "growth should be strong: {}", wer / prev);
            }
            prev = wer;
        }
    }

    #[test]
    fn hotter_means_more_errors() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op50 = OperatingPoint::relaxed(2.283, 50.0);
        let op60 = OperatingPoint::relaxed(2.283, 60.0);
        let w50 = sim.run(&profile(), op50, 7200.0, 1).wer();
        let w60 = sim.run(&profile(), op60, 7200.0, 1).wer();
        assert!(w60 > 5.0 * w50, "60°C {w60} vs 50°C {w50}");
    }

    #[test]
    fn nominal_refresh_is_clean() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let r = sim.run(&profile(), OperatingPoint::nominal(), 7200.0, 1);
        assert_eq!(r.ce_events.len(), 0, "64 ms refresh must not leak");
        assert!(!r.crashed());
    }

    #[test]
    fn fast_reuse_suppresses_errors() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let slow = profile(); // 5 s reuse > TREFP: no protection
        let mut fast = profile();
        fast.reuse = crate::ReuseQuantiles::constant(0.05);
        fast.never_reused_fraction = 0.0;
        fast.dram_filter = 1.0;
        let w_slow = sim.run(&slow, op, 7200.0, 1).wer();
        let w_fast = sim.run(&fast, op, 7200.0, 1).wer();
        assert!(
            w_fast < w_slow / 3.0,
            "implicit refresh should suppress errors: fast {w_fast} slow {w_slow}"
        );
    }

    #[test]
    fn high_activation_rate_disturbs() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut calm = profile();
        calm.row_activation_rate_hz = 1.0e4;
        let mut hot = calm.clone();
        hot.row_activation_rate_hz = 2.0e7;
        let w_calm = sim.run(&calm, op, 7200.0, 2).wer();
        let w_hot = sim.run(&hot, op, 7200.0, 2).wer();
        assert!(w_hot > w_calm, "disturbance must raise WER: {w_hot} vs {w_calm}");
    }

    #[test]
    fn disturbance_ablation_removes_the_effect() {
        let physics = ErrorPhysics::calibrated().without_disturbance();
        let d = DramDevice::with_parts(39, crate::ServerGeometry::x_gene2(), physics);
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut calm = profile();
        calm.row_activation_rate_hz = 1.0e4;
        let mut hot = calm.clone();
        hot.row_activation_rate_hz = 2.0e7;
        let w_calm = sim.run(&calm, op, 7200.0, 2).wer();
        let w_hot = sim.run(&hot, op, 7200.0, 2).wer();
        let ratio = w_hot / w_calm.max(1e-300);
        assert!(
            (0.8..1.25).contains(&ratio),
            "ablated physics must not react to activation rate: ratio {ratio}"
        );
    }

    #[test]
    fn max_trefp_at_70c_crashes() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 70.0);
        let crashes = (0..5)
            .filter(|&s| sim.run(&profile(), op, 7200.0, s).crashed())
            .count();
        assert!(crashes >= 4, "max TREFP at 70 °C should almost always crash: {crashes}/5");
    }

    #[test]
    fn cool_runs_rarely_crash() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(1.450, 50.0);
        let crashes = (0..5)
            .filter(|&s| sim.run(&profile(), op, 7200.0, s).crashed())
            .count();
        assert_eq!(crashes, 0, "50 °C runs must not crash");
    }

    #[test]
    fn rank_variation_shows_up_in_results() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let per_rank = sim.run(&profile(), op, 7200.0, 3).wer_per_rank();
        let max = per_rank.iter().cloned().fold(f64::MIN, f64::max);
        let min_nonzero = per_rank.iter().cloned().filter(|&w| w > 0.0).fold(f64::MAX, f64::min);
        assert!(max / min_nonzero > 5.0, "rank spread: {}", max / min_nonzero);
    }

    #[test]
    fn timeline_converges_within_two_hours() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let r = sim.run(&profile(), op, 7200.0, 4);
        let w_110 = r.wer_at(6600.0);
        let w_120 = r.wer_at(7200.0);
        assert!(w_120 > 0.0);
        let change = (w_120 - w_110) / w_120;
        assert!(change < 0.10, "last-10-minute change {change} too large");
        assert!(r.wer_at(1800.0) < 0.8 * w_120);
    }

    #[test]
    fn zero_entropy_data_is_safer_than_random() {
        let d = device();
        let sim = ErrorSim::new(&d);
        let op = OperatingPoint::relaxed(2.283, 60.0);
        let mut plain = profile();
        plain.entropy_bits = 0.0;
        let mut random = profile();
        random.entropy_bits = 32.0;
        let w_plain = sim.run(&plain, op, 7200.0, 9).wer();
        let w_random = sim.run(&random, op, 7200.0, 9).wer();
        assert!(w_random > w_plain, "coupling: random {w_random} vs plain {w_plain}");
    }
}
