//! # wade-dram — statistical DRAM device and error-physics simulator
//!
//! The paper characterizes 72 real DDR3 chips (4 DIMMs × 2 ranks) under
//! relaxed refresh period (`TREFP` up to 2.283 s), lowered supply voltage
//! (1.428 V) and elevated temperature (50–70 °C). This crate is the
//! synthetic stand-in for those chips: a *statistical weak-cell model* that
//! reproduces the error phenomenology the paper reports —
//!
//! * exponential growth of the word error rate with `TREFP` (Fig. 7f),
//! * roughly an order of magnitude per 10 °C (retention halves
//!   exponentially with temperature, §II-B),
//! * strong DIMM-to-DIMM / rank-to-rank variation (188×, Fig. 8),
//! * workload dependence through *implicit refresh* (accesses and row
//!   activations recharge cells; §II-C), *data patterns* (true-/anti-cell
//!   orientation and coupling) and *disturbance* (row-hammer style
//!   cell-to-cell interference growing with the access rate),
//! * variable retention time (VRT) causing run-to-run variation (§V-A),
//! * multi-bit words and disturbance bursts producing uncorrectable errors
//!   at high temperature and long refresh periods (Fig. 9).
//!
//! Scale note: simulating 8 GB × 2 h cycle-by-cycle is infeasible and
//! unnecessary — errors come from the *tail* of the retention distribution,
//! a few hundred to ~10⁶ weak cells, which we sample individually. The
//! workload couples in through a compact [`DramUsageProfile`].
//!
//! Campaigns that re-measure one population (refresh-period sweeps, PUE
//! repeats) can freeze it once with [`ErrorSim::prepare`] and replay runs
//! from the resulting [`PreparedRun`] — bit-identical to [`ErrorSim::run`]
//! at a fraction of the cost. The seeding contract that makes this sound is
//! documented (normatively) in the `sim` module source.
//!
//! ```
//! use wade_dram::{DramDevice, DramUsageProfile, ErrorSim, OperatingPoint};
//!
//! let device = DramDevice::with_seed(7);
//! let profile = DramUsageProfile::uniform_synthetic(1 << 27); // 1 GiB
//! let op = OperatingPoint { trefp_s: 2.283, vdd_v: 1.428, temp_c: 50.0 };
//! let run = ErrorSim::new(&device).run(&profile, op, 7200.0, 1);
//! assert!(run.wer() > 0.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod address;
mod config;
mod device;
mod event;
mod fx;
mod geometry;
mod op;
mod prepared;
mod profile;
mod retention;
mod sim;
mod variation;

pub use address::{AddressMap, AddressScrambler, DramCoord};
pub use config::ErrorPhysics;
pub use device::DramDevice;
pub use event::{CeEvent, RunResult, UeEvent};
pub use fx::{FxHashMap, FxHasher};
pub use geometry::{RankId, ServerGeometry, RANK_COUNT};
pub use op::OperatingPoint;
pub use profile::{DramUsageProfile, ReuseQuantiles};
pub use prepared::{LiveCellIndex, PreparedRun};
pub use retention::RetentionLaw;
pub use sim::{ErrorSim, DETERMINISM_VERSION};
pub use variation::RankVariation;
