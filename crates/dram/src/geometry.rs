//! Server memory geometry: DIMMs, ranks and chips.

use serde::{Deserialize, Serialize};

/// Total ranks on the modelled server (4 DIMMs × 2 ranks).
pub const RANK_COUNT: usize = 8;

/// Identifies one rank on the server, as the paper reports errors
/// ("DIMM2/rank0" etc. in Figs. 8 and 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RankId {
    /// DIMM slot, `0..4`.
    pub dimm: u8,
    /// Rank within the DIMM, `0..2`.
    pub rank: u8,
}

impl RankId {
    /// Flat index `0..8` (dimm-major).
    pub fn index(&self) -> usize {
        self.dimm as usize * 2 + self.rank as usize
    }

    /// Builds a rank id from a flat index.
    ///
    /// # Panics
    /// Panics if `index >= RANK_COUNT`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < RANK_COUNT, "rank index {index} out of range");
        Self { dimm: (index / 2) as u8, rank: (index % 2) as u8 }
    }

    /// Iterates over all ranks in order.
    pub fn all() -> impl Iterator<Item = RankId> {
        (0..RANK_COUNT).map(RankId::from_index)
    }
}

impl core::fmt::Display for RankId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DIMM{}/rank{}", self.dimm, self.rank)
    }
}

/// Physical organisation of the server's memory, mirroring the paper's
/// X-Gene2 setup (§IV-A): 4 Micron DDR3 8 GB DIMMs, one per MCU, each with
/// 2 ranks of 16 data + 2 ECC x8 chips.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerGeometry {
    /// DIMMs installed (one per MCU).
    pub dimms: u8,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u8,
    /// Data chips per DIMM.
    pub data_chips_per_dimm: u8,
    /// ECC chips per DIMM.
    pub ecc_chips_per_dimm: u8,
    /// Capacity per DIMM in bytes.
    pub dimm_bytes: u64,
    /// DRAM row-buffer size in bytes (8 KiB for the modelled chips).
    pub row_bytes: u64,
}

impl ServerGeometry {
    /// The paper's configuration.
    pub fn x_gene2() -> Self {
        Self {
            dimms: 4,
            ranks_per_dimm: 2,
            data_chips_per_dimm: 16,
            ecc_chips_per_dimm: 2,
            dimm_bytes: 8 << 30,
            row_bytes: 8 << 10,
        }
    }

    /// Total characterized chips (the paper's "72 chips").
    pub fn total_chips(&self) -> u32 {
        self.dimms as u32 * (self.data_chips_per_dimm + self.ecc_chips_per_dimm) as u32
    }

    /// Total ranks.
    pub fn total_ranks(&self) -> usize {
        self.dimms as usize * self.ranks_per_dimm as usize
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.dimms as u64 * self.dimm_bytes
    }

    /// Which rank a 64-bit word of an allocation lands on. Cache lines
    /// interleave across channels (one DIMM per channel) and then across
    /// ranks, so consecutive lines round-robin the 8 ranks.
    pub fn rank_of_word(&self, word_index: u64) -> RankId {
        // 8 words per 64-byte line; lines round-robin ranks.
        let line = word_index / 8;
        RankId::from_index((line % self.total_ranks() as u64) as usize)
    }

    /// Number of DRAM rows spanned by `footprint_words` 64-bit words.
    pub fn rows_for_words(&self, footprint_words: u64) -> u64 {
        (footprint_words * 8).div_ceil(self.row_bytes).max(1)
    }
}

impl Default for ServerGeometry {
    fn default() -> Self {
        Self::x_gene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_has_72_chips() {
        let g = ServerGeometry::x_gene2();
        assert_eq!(g.total_chips(), 72);
        assert_eq!(g.total_ranks(), RANK_COUNT);
        assert_eq!(g.total_bytes(), 32 << 30);
    }

    #[test]
    fn rank_ids_roundtrip() {
        for i in 0..RANK_COUNT {
            assert_eq!(RankId::from_index(i).index(), i);
        }
        assert_eq!(RankId::all().count(), RANK_COUNT);
    }

    #[test]
    fn rank_display_matches_paper_labels() {
        assert_eq!(RankId { dimm: 2, rank: 0 }.to_string(), "DIMM2/rank0");
    }

    #[test]
    fn words_interleave_across_ranks() {
        let g = ServerGeometry::x_gene2();
        // Words 0..8 share a cache line → same rank.
        assert_eq!(g.rank_of_word(0), g.rank_of_word(7));
        // Next line moves to the next rank.
        assert_eq!(g.rank_of_word(8).index(), 1);
        // Line 8 wraps back to rank 0.
        assert_eq!(g.rank_of_word(64).index(), 0);
    }

    #[test]
    fn interleave_is_uniform() {
        let g = ServerGeometry::x_gene2();
        let mut counts = [0u64; RANK_COUNT];
        for w in 0..64_000u64 {
            counts[g.rank_of_word(w).index()] += 1;
        }
        for &c in &counts {
            assert_eq!(c, 8000);
        }
    }

    #[test]
    fn rows_for_words() {
        let g = ServerGeometry::x_gene2();
        assert_eq!(g.rows_for_words(1024), 1); // 8 KiB exactly
        assert_eq!(g.rows_for_words(1025), 2);
        assert_eq!(g.rows_for_words(0), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_index_panics() {
        RankId::from_index(8);
    }
}
