//! FxHash re-export kept for API stability.
//!
//! The hasher itself moved to the vendored `rustc-hash` crate so that the
//! instrumentation layer (`wade-trace`) and the profile cache (`wade-core`)
//! can share it without depending on this crate. The simulator's
//! pair-collision maps are keyed by word indices it generated itself, so
//! HashDoS resistance (the point of SipHash, the std default) buys nothing —
//! while FxHash's two-instruction mix removes the hasher from the
//! `record_ce` profile entirely.

pub use rustc_hash::{FxHashMap, FxHasher};
